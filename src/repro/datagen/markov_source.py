"""Markov-chain stream sources.

Two sources live here:

* :class:`MarkovChainSource` — a general first-order Markov sampler over
  an explicit transition matrix.  It is the substrate both for the
  paper's synthetic corpus and for the UNM-style system-call trace
  generator (:mod:`repro.syscalls`).

* :class:`CycleJumpSource` — the paper's training-data process: a
  deterministic cycle over the whole alphabet, perturbed by a small
  amount of nondeterminism (*jumps* to a designated target symbol)
  that produces the rare sequences from which minimal foreign
  sequences are later composed (Section 5.3).

The jump discipline enforces a *refractory period*: after a jump, no
further jump occurs for a configurable number of steps (default 16,
one more than the paper's largest detector window).  This keeps every
training window's deviation structure to at most one jump, which is
what makes the minimal-foreign-sequence synthesis of
:mod:`repro.datagen.anomalies` exact: any two-jump window is foreign,
while all of its one-jump sub-windows are present and rare.  The paper
achieves the same effect with brute-force rejection; the refractory
discipline is the deterministic-by-construction equivalent (see
DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataGenerationError


class MarkovChainSource:
    """Sample categorical streams from a first-order Markov chain.

    Args:
        transition_matrix: square row-stochastic matrix; entry ``[i, j]``
            is the probability that state ``j`` follows state ``i``.
        initial_distribution: optional distribution over the starting
            state; defaults to uniform.

    Raises:
        DataGenerationError: if the matrix is not square, contains
            negative entries, or has a row that does not sum to 1.
    """

    def __init__(
        self,
        transition_matrix: np.ndarray,
        initial_distribution: np.ndarray | None = None,
    ) -> None:
        matrix = np.asarray(transition_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise DataGenerationError(
                f"transition matrix must be square, got shape {matrix.shape}"
            )
        if matrix.shape[0] == 0:
            raise DataGenerationError("transition matrix must be non-empty")
        if (matrix < 0).any():
            raise DataGenerationError("transition probabilities must be non-negative")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-9):
            bad = int(np.argmax(np.abs(row_sums - 1.0)))
            raise DataGenerationError(
                f"row {bad} of the transition matrix sums to {row_sums[bad]!r}, not 1"
            )
        if initial_distribution is None:
            initial = np.full(matrix.shape[0], 1.0 / matrix.shape[0])
        else:
            initial = np.asarray(initial_distribution, dtype=float)
            if initial.shape != (matrix.shape[0],):
                raise DataGenerationError(
                    "initial distribution must have one entry per state, got "
                    f"shape {initial.shape} for {matrix.shape[0]} states"
                )
            if (initial < 0).any() or not np.isclose(initial.sum(), 1.0, atol=1e-9):
                raise DataGenerationError(
                    "initial distribution must be a probability vector"
                )
        self._matrix = matrix
        self._initial = initial
        # Pre-compute cumulative rows for inverse-CDF sampling.
        self._cumulative = np.cumsum(matrix, axis=1)
        self._cumulative[:, -1] = 1.0

    @property
    def num_states(self) -> int:
        """Number of states (alphabet size) of the chain."""
        return self._matrix.shape[0]

    @property
    def transition_matrix(self) -> np.ndarray:
        """A copy of the transition matrix."""
        return self._matrix.copy()

    def sample(
        self, length: int, rng: np.random.Generator, initial_state: int | None = None
    ) -> np.ndarray:
        """Sample a stream of ``length`` states.

        Args:
            length: number of elements to emit; must be positive.
            rng: NumPy random generator (caller controls seeding).
            initial_state: explicit first state; drawn from the initial
                distribution when omitted.

        Returns:
            1-D ``int64`` array of state codes.
        """
        if length <= 0:
            raise DataGenerationError(f"stream length must be positive, got {length}")
        if initial_state is None:
            state = int(rng.choice(self.num_states, p=self._initial))
        else:
            if not 0 <= initial_state < self.num_states:
                raise DataGenerationError(
                    f"initial state {initial_state} out of range for "
                    f"{self.num_states} states"
                )
            state = int(initial_state)
        out = np.empty(length, dtype=np.int64)
        out[0] = state
        draws = rng.random(length - 1)
        cumulative = self._cumulative
        for i in range(1, length):
            state = int(np.searchsorted(cumulative[state], draws[i - 1], side="right"))
            if state >= self.num_states:  # guard against float round-off
                state = self.num_states - 1
            out[i] = state
        return out

    def stationary_distribution(self) -> np.ndarray:
        """Return a stationary distribution of the chain.

        Computed as the left eigenvector of the transition matrix for
        eigenvalue 1, normalized to sum to 1.
        """
        values, vectors = np.linalg.eig(self._matrix.T)
        index = int(np.argmin(np.abs(values - 1.0)))
        stationary = np.real(vectors[:, index])
        stationary = np.abs(stationary)
        return stationary / stationary.sum()


@dataclass(frozen=True)
class JumpSpec:
    """The nondeterministic deviations of a :class:`CycleJumpSource`.

    Attributes:
        target: the cycle code every jump lands on.
        sources: cycle codes from which a jump may be taken.  The
            cycle predecessor of ``target`` is excluded automatically
            (jumping from it would reproduce a cycle step).
        probability: per-step probability of taking a jump when one is
            admissible.
        refractory: minimum number of steps between two jumps.
    """

    target: int
    sources: tuple[int, ...]
    probability: float
    refractory: int

    def __post_init__(self) -> None:
        if self.probability <= 0.0 or self.probability >= 1.0:
            raise DataGenerationError(
                f"jump probability must lie in (0, 1), got {self.probability}"
            )
        if self.refractory < 1:
            raise DataGenerationError(
                f"refractory period must be >= 1, got {self.refractory}"
            )
        if not self.sources:
            raise DataGenerationError("jump spec requires at least one source state")


class CycleJumpSource:
    """The paper's training-data process: a cycle with rare jumps.

    The source walks the deterministic cycle ``0 -> 1 -> ... -> A-1 -> 0``
    (rendered as symbols ``1 2 ... A`` by the paper's alphabet).  At each
    admissible step it jumps to ``jump_target`` with a small probability,
    then resumes the cycle from the target.  Jumps are separated by at
    least ``refractory`` steps.

    With the default settings over alphabet size 8, roughly 98% of
    emitted elements belong to uninterrupted cycle runs and roughly 2%
    are within one window of a jump, matching Section 5.3's corpus
    description; each distinct jump pair ``(s, target)`` occurs with
    relative frequency well below the 0.5% rarity threshold.

    Args:
        alphabet_size: number of cycle states.
        jump_target: code every jump lands on (default 2, i.e. the
            paper-alphabet symbol ``3``).
        jump_probability: per-step jump probability (default 0.02).
        refractory: minimum distance between jumps (default 16; must
            exceed every window length the corpus will be analyzed at).

    Raises:
        DataGenerationError: on invalid configuration.
    """

    def __init__(
        self,
        alphabet_size: int = 8,
        jump_target: int = 2,
        jump_probability: float = 0.02,
        refractory: int = 16,
    ) -> None:
        if alphabet_size < 3:
            raise DataGenerationError(
                f"cycle-jump source needs an alphabet of >= 3 states, got {alphabet_size}"
            )
        if not 0 <= jump_target < alphabet_size:
            raise DataGenerationError(
                f"jump target {jump_target} out of range for alphabet {alphabet_size}"
            )
        predecessor = (jump_target - 1) % alphabet_size
        sources = tuple(
            state for state in range(alphabet_size) if state != predecessor
        )
        self._alphabet_size = alphabet_size
        self._spec = JumpSpec(
            target=jump_target,
            sources=sources,
            probability=jump_probability,
            refractory=refractory,
        )

    @property
    def alphabet_size(self) -> int:
        """Number of states in the cycle."""
        return self._alphabet_size

    @property
    def jump_spec(self) -> JumpSpec:
        """The jump configuration of this source."""
        return self._spec

    def cycle_successor(self, state: int) -> int:
        """The deterministic cycle successor of ``state``."""
        return (state + 1) % self._alphabet_size

    def sample(
        self,
        length: int,
        rng: np.random.Generator,
        initial_state: int = 0,
    ) -> np.ndarray:
        """Emit a stream of ``length`` elements.

        Args:
            length: number of elements; must be positive.
            rng: NumPy random generator.
            initial_state: starting cycle state (default 0 so streams
                open with the canonical ``1 2 3 ...`` run).

        Returns:
            1-D ``int64`` array of codes.
        """
        if length <= 0:
            raise DataGenerationError(f"stream length must be positive, got {length}")
        if not 0 <= initial_state < self._alphabet_size:
            raise DataGenerationError(
                f"initial state {initial_state} out of range for alphabet "
                f"{self._alphabet_size}"
            )
        spec = self._spec
        out = np.empty(length, dtype=np.int64)
        state = int(initial_state)
        out[0] = state
        cooldown = spec.refractory  # no jump inside the opening window
        draws = rng.random(length - 1)
        for i in range(1, length):
            can_jump = cooldown <= 0 and state in spec.sources
            if can_jump and draws[i - 1] < spec.probability:
                state = spec.target
                cooldown = spec.refractory
            else:
                state = self.cycle_successor(state)
                cooldown -= 1
            out[i] = state
        return out

    def jump_pairs(self) -> list[tuple[int, int]]:
        """All distinct (source, target) jump transitions this source can emit."""
        return [(source, self._spec.target) for source in self._spec.sources]
