"""The full evaluation corpus (Section 5.4 of the paper).

The paper's final suite contains one training stream and 8 test streams
— one per anomaly size 2..9, each holding a single minimal foreign
sequence — replicated for each detector-window length 2..15, for a
total of 112 test cases.  Because the stream content does not depend on
the detector window (only the scoring does), the suite stores one
injected stream per anomaly size, verified clean at *every* window
length in the sweep, and exposes the full (AS x DW) case grid on top.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.datagen.anomalies import AnomalySynthesizer, SynthesizedAnomaly
from repro.datagen.injection import InjectedStream, InjectionPolicy, inject_anomaly
from repro.datagen.training import TrainingData, generate_training_data
from repro.exceptions import AnomalySynthesisError, InjectionError
from repro.params import PaperParams, paper_params


@dataclass(frozen=True)
class SuiteCase:
    """One cell of the evaluation grid.

    Attributes:
        anomaly_size: the injected MFS length (``AS``).
        window_length: the detector window to analyze at (``DW``).
        injected: the test stream shared by every window length at
            this anomaly size.
    """

    anomaly_size: int
    window_length: int
    injected: InjectedStream


class EvaluationSuite:
    """Training data plus one clean injected stream per anomaly size."""

    def __init__(
        self,
        training: TrainingData,
        anomalies: dict[int, SynthesizedAnomaly],
        streams: dict[int, InjectedStream],
    ) -> None:
        if set(anomalies) != set(streams):
            raise InjectionError("anomaly sizes of anomalies and streams disagree")
        self._training = training
        self._anomalies = dict(sorted(anomalies.items()))
        self._streams = dict(sorted(streams.items()))

    @property
    def training(self) -> TrainingData:
        """The training corpus all detectors are fitted on."""
        return self._training

    @property
    def params(self) -> PaperParams:
        """The parameters the suite was built under."""
        return self._training.params

    @property
    def anomaly_sizes(self) -> tuple[int, ...]:
        """Anomaly sizes with an injected stream, ascending."""
        return tuple(self._streams)

    @property
    def window_lengths(self) -> tuple[int, ...]:
        """Detector-window lengths of the case grid."""
        return self.params.window_sizes

    def anomaly(self, anomaly_size: int) -> SynthesizedAnomaly:
        """The synthesized MFS for ``anomaly_size``."""
        try:
            return self._anomalies[anomaly_size]
        except KeyError:
            raise AnomalySynthesisError(
                f"suite has no anomaly of size {anomaly_size}"
            ) from None

    def stream(self, anomaly_size: int) -> InjectedStream:
        """The injected test stream for ``anomaly_size``."""
        try:
            return self._streams[anomaly_size]
        except KeyError:
            raise InjectionError(
                f"suite has no test stream for anomaly size {anomaly_size}"
            ) from None

    def cases(self) -> Iterator[SuiteCase]:
        """Iterate over all (anomaly size x window length) cases.

        With the paper's parameters this yields the 112 test cases
        (8 anomaly sizes x 14 window lengths), ordered by anomaly size
        then window length.
        """
        for anomaly_size, injected in self._streams.items():
            for window_length in self.window_lengths:
                yield SuiteCase(
                    anomaly_size=anomaly_size,
                    window_length=window_length,
                    injected=injected,
                )

    def case_count(self) -> int:
        """Total number of cases in the grid."""
        return len(self._streams) * len(self.window_lengths)


def build_suite(
    params: PaperParams | None = None,
    training: TrainingData | None = None,
    stream_length: int = 1000,
    max_anomaly_attempts: int = 25,
) -> EvaluationSuite:
    """Build the paper's evaluation suite.

    For each anomaly size, candidate MFSs are synthesized in
    deterministic order and injected under the clean-boundary policy;
    when an injection fails, the next candidate anomaly is drawn — the
    paper's "produce a new anomaly as a replacement" loop.

    Args:
        params: corpus parameters; defaults to the paper's full scale.
        training: pre-built training data (built from ``params`` when
            omitted).
        stream_length: length of each composed test stream.
        max_anomaly_attempts: how many candidate anomalies to try per
            size before giving up.

    Raises:
        AnomalySynthesisError: if some size admits no MFS at all.
        InjectionError: if no candidate of some size injects cleanly.
    """
    if training is None:
        training = generate_training_data(params or paper_params())
    suite_params = training.params
    synthesizer = AnomalySynthesizer(training)
    policy = InjectionPolicy(
        window_lengths=suite_params.window_sizes,
        rare_threshold=suite_params.rare_threshold,
    )
    anomalies: dict[int, SynthesizedAnomaly] = {}
    streams: dict[int, InjectedStream] = {}
    for anomaly_size in suite_params.anomaly_sizes:
        last_error: InjectionError | None = None
        candidate_count = len(synthesizer.candidates(anomaly_size))
        attempts = min(max_anomaly_attempts, candidate_count)
        if attempts == 0:
            raise AnomalySynthesisError(
                f"training corpus admits no MFS of size {anomaly_size}"
            )
        for index in range(attempts):
            anomaly = synthesizer.synthesize(anomaly_size, index=index)
            try:
                injected = inject_anomaly(
                    anomaly.sequence,
                    training,
                    policy,
                    stream_length=stream_length,
                )
            except InjectionError as error:
                last_error = error
                continue
            anomalies[anomaly_size] = anomaly
            streams[anomaly_size] = injected
            break
        else:
            raise InjectionError(
                f"no candidate MFS of size {anomaly_size} injected cleanly after "
                f"{attempts} attempts; last failure: {last_error}"
            )
    return EvaluationSuite(training=training, anomalies=anomalies, streams=streams)
