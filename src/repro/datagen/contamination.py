"""Training-data contamination: poisoning the concept of normal.

The paper's introduction lists "the inadvertent incorporation of
intrusive behavior into a detector's concept of normal behavior
(possibly causing the detector to miss the intrusion)" among the field's
standing problems.  This module makes that failure mode reproducible:
:func:`contaminate_training` splices occurrences of an anomaly into a
training stream, after which the anomaly is no longer foreign — and
every detector in the study goes blind to it by construction.

The E15 ablation bench quantifies the effect: a single contaminated
occurrence flips Stide from capable to blind; enough occurrences to
cross the rarity threshold silence the Markov detector as well.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.training import TrainingData
from repro.exceptions import DataGenerationError


def contaminate_training(
    training: TrainingData,
    anomaly: tuple[int, ...],
    occurrences: int,
    rng: np.random.Generator,
    margin: int | None = None,
) -> TrainingData:
    """Return training data with ``anomaly`` spliced in ``occurrences`` times.

    Each occurrence overwrites a slice of the stream at a random,
    non-overlapping position (keeping stream length constant, like an
    intrusion that happened during the collection of "normal" data).
    The result is a new :class:`TrainingData` sharing the original
    alphabet/source/params; it is *not* re-validated — contamination
    deliberately breaks the clean-corpus properties.

    Args:
        training: the clean corpus.
        anomaly: the sequence to incorporate (alphabet codes).
        occurrences: how many copies to splice in (>= 1).
        rng: random generator for placement.
        margin: minimum distance between splice sites and stream ends;
            defaults to one maximum detector window.

    Raises:
        DataGenerationError: if the stream is too short for the
            requested number of non-overlapping occurrences.
    """
    sequence = tuple(int(code) for code in anomaly)
    if not sequence:
        raise DataGenerationError("cannot contaminate with an empty anomaly")
    if occurrences < 1:
        raise DataGenerationError(
            f"occurrences must be >= 1, got {occurrences}"
        )
    if any(not 0 <= code < training.alphabet.size for code in sequence):
        raise DataGenerationError("anomaly codes outside the training alphabet")
    if margin is None:
        margin = training.params.max_window_size + 1
    size = len(sequence)
    stream = training.stream.copy()
    usable = len(stream) - 2 * margin - size
    if usable <= 0 or usable < occurrences * (size + margin):
        raise DataGenerationError(
            f"stream of length {len(stream)} too short for {occurrences} "
            f"non-overlapping occurrences of a size-{size} anomaly"
        )
    taken: list[tuple[int, int]] = []
    guard = 0
    while len(taken) < occurrences:
        guard += 1
        if guard > 10_000:
            raise DataGenerationError(
                "could not place all contamination sites without overlap"
            )
        position = int(rng.integers(margin, len(stream) - margin - size))
        window = (position - margin, position + size + margin)
        if any(not (window[1] <= lo or hi <= window[0]) for lo, hi in taken):
            continue
        taken.append(window)
        stream[position : position + size] = sequence
    return TrainingData(
        stream=stream,
        alphabet=training.alphabet,
        source=training.source,
        params=training.params,
    )
