"""A corpus whose minimal foreign sequences have *common* parts.

The paper attributes the Markov detector's full-map coverage to "the
use of rare sequences in composing the foreign sequence" (Section 7).
Testing that attribution requires an anomaly with the opposite
composition: a minimal foreign sequence whose proper subsequences are
*common* in training.  The main corpus cannot produce one — joins of
common cycle runs are themselves common — so this module provides a
corpus that can.

:class:`ForbiddenRunSource` emits binary streams from an order-``R``
Markov process: after ``R`` consecutive zeros the next symbol is
forced to one; otherwise symbols are drawn with a configurable zero
probability.  Consequently:

* zero-runs up to length ``R`` are frequent (common n-grams);
* the length-``R+1`` zero-run never occurs — it is a minimal foreign
  sequence *by construction* whose every proper subsequence is a
  common training sequence.

On this corpus a count-based Markov detector sees nothing maximal in
the anomaly until its window covers the whole run (every shorter span
is common, with a mid-range conditional probability), so its coverage
collapses to Stide's — the E19 ablation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataGenerationError


class ForbiddenRunSource:
    """Binary streams in which zero-runs longer than ``run_limit`` never occur.

    Args:
        run_limit: maximum permitted zero-run length ``R`` (>= 1); the
            ``R+1`` zero-run is the corpus's built-in MFS.
        zero_probability: probability of emitting 0 when not forced
            (default 0.5).
    """

    def __init__(self, run_limit: int, zero_probability: float = 0.5) -> None:
        if run_limit < 1:
            raise DataGenerationError(f"run_limit must be >= 1, got {run_limit}")
        if not 0.0 < zero_probability < 1.0:
            raise DataGenerationError(
                f"zero_probability must lie in (0, 1), got {zero_probability}"
            )
        self._run_limit = run_limit
        self._zero_probability = zero_probability

    @property
    def run_limit(self) -> int:
        """Maximum permitted zero-run length."""
        return self._run_limit

    @property
    def alphabet_size(self) -> int:
        """Binary alphabet."""
        return 2

    def forbidden_sequence(self) -> tuple[int, ...]:
        """The built-in MFS: ``run_limit + 1`` consecutive zeros."""
        return (0,) * (self._run_limit + 1)

    def sample(self, length: int, rng: np.random.Generator) -> np.ndarray:
        """One stream of ``length`` symbols honoring the run limit."""
        if length <= 0:
            raise DataGenerationError(f"stream length must be positive, got {length}")
        out = np.empty(length, dtype=np.int64)
        run = 0
        draws = rng.random(length)
        for i in range(length):
            if run >= self._run_limit:
                symbol = 1
            else:
                symbol = 0 if draws[i] < self._zero_probability else 1
            out[i] = symbol
            run = run + 1 if symbol == 0 else 0
        return out

    def verify(self, stream: np.ndarray) -> None:
        """Check a stream honors the run limit and uses all runs up to it.

        Raises:
            DataGenerationError: if a forbidden run occurs, or the
                stream is too short to exhibit every permitted run
                length (which would break the common-parts property).
        """
        runs: list[int] = []
        current = 0
        for symbol in stream:
            if symbol == 0:
                current += 1
            else:
                if current:
                    runs.append(current)
                current = 0
        if current:
            runs.append(current)
        if runs and max(runs) > self._run_limit:
            raise DataGenerationError(
                f"stream contains a zero-run of {max(runs)} > limit "
                f"{self._run_limit}"
            )
        for length in range(1, self._run_limit + 1):
            if not any(run >= length for run in runs):
                raise DataGenerationError(
                    f"stream exhibits no zero-run of length {length}; too short "
                    "for the common-parts property"
                )
