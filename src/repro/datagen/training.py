"""Training-data construction (Section 5.3 of the paper).

The paper's training stream has 1,000,000 elements over an alphabet of
8; 98% of the stream is a repetition of ``1 2 3 4 5 6 7 8`` and the
remaining 2% consists of rare sequences produced by a small amount of
nondeterminism in the generating Markov matrix.  :func:`generate_training_data`
reproduces this corpus (at any scale) via
:class:`~repro.datagen.markov_source.CycleJumpSource` and packages the
result with the derived statistics every later stage needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.datagen.markov_source import CycleJumpSource
from repro.exceptions import DataGenerationError
from repro.params import PaperParams
from repro.sequences.alphabet import Alphabet
from repro.sequences.foreign import ForeignSequenceAnalyzer


@dataclass(frozen=True)
class TrainingData:
    """The training corpus plus the apparatus derived from it.

    Attributes:
        stream: encoded training stream (codes ``0..alphabet_size-1``).
        alphabet: mapping between codes and the paper's symbols
            (``1..8`` by default).
        source: the generating process (kept so test-data builders can
            reuse the cycle structure and jump inventory).
        params: the parameters the corpus was built under.
    """

    stream: np.ndarray
    alphabet: Alphabet
    source: CycleJumpSource
    params: PaperParams

    def __post_init__(self) -> None:
        if self.stream.ndim != 1 or len(self.stream) == 0:
            raise DataGenerationError("training stream must be a non-empty 1-D array")

    @cached_property
    def analyzer(self) -> ForeignSequenceAnalyzer:
        """Foreign/rare/MFS analyzer over this training stream.

        Built lazily and cached; the analyzer in turn caches its n-gram
        tables per window length.
        """
        return ForeignSequenceAnalyzer(
            self.stream, rare_threshold=self.params.rare_threshold
        )

    @property
    def length(self) -> int:
        """Number of elements in the training stream."""
        return len(self.stream)

    def cycle_run_fraction(self) -> float:
        """Fraction of elements on uninterrupted cycle transitions.

        An element is counted as a cycle element when it is the cycle
        successor of its predecessor.  The paper reports roughly 98%
        for its corpus.
        """
        successors = (self.stream[:-1] + 1) % self.alphabet.size
        cycle_steps = int(np.count_nonzero(self.stream[1:] == successors))
        return cycle_steps / max(1, len(self.stream) - 1)

    def jump_positions(self) -> np.ndarray:
        """Indices ``i`` such that the transition into ``stream[i]`` is a jump."""
        successors = (self.stream[:-1] + 1) % self.alphabet.size
        return np.nonzero(self.stream[1:] != successors)[0] + 1

    def validate(self) -> None:
        """Check the corpus exhibits the paper's structural properties.

        Verifies that the cycle dominates the stream, that every jump
        pair the source can emit is present yet rare, and that jumps
        respect the refractory period.

        Raises:
            DataGenerationError: if any property fails; this usually
                means the stream is too short for the configured jump
                probability.
        """
        fraction = self.cycle_run_fraction()
        if fraction < 0.9:
            raise DataGenerationError(
                f"cycle fraction {fraction:.3f} is too low; corpus does not match "
                "the paper's 98%-cycle structure"
            )
        pair_store = self.analyzer.store_for(2)
        threshold = self.params.rare_threshold
        for source_state, target in self.source.jump_pairs():
            pair = (source_state, target)
            if not pair_store.contains(pair):
                raise DataGenerationError(
                    f"jump pair {pair} never occurred; stream too short to "
                    "support anomaly synthesis"
                )
            frequency = pair_store.relative_frequency(pair)
            if frequency >= threshold:
                raise DataGenerationError(
                    f"jump pair {pair} has relative frequency {frequency:.4f}, "
                    f"at or above the rarity threshold {threshold}"
                )
        positions = self.jump_positions()
        if len(positions) >= 2:
            gaps = np.diff(positions)
            refractory = self.source.jump_spec.refractory
            if int(gaps.min()) < refractory:
                raise DataGenerationError(
                    f"two jumps occurred {int(gaps.min())} steps apart, violating "
                    f"the refractory period of {refractory}"
                )


def generate_training_data(
    params: PaperParams,
    jump_probability: float = 0.02,
    refractory: int | None = None,
) -> TrainingData:
    """Generate the paper's training corpus under ``params``.

    Args:
        params: corpus parameters (length, alphabet size, seed, ...).
        jump_probability: per-step deviation probability; the default
            0.02 yields the paper's ~98%/2% split.
        refractory: minimum distance between deviations.  Defaults to
            one more than the largest detector window in ``params`` so
            no analyzed window ever contains two deviations.

    Returns:
        A validated :class:`TrainingData`.

    Raises:
        DataGenerationError: if the generated stream fails validation
            (e.g. the requested length is too short for every rare jump
            pair to appear).
    """
    if refractory is None:
        refractory = max(params.max_window_size, params.max_anomaly_size) + 1
    source = CycleJumpSource(
        alphabet_size=params.alphabet_size,
        jump_probability=jump_probability,
        refractory=refractory,
    )
    rng = np.random.default_rng(params.seed)
    stream = source.sample(params.training_length, rng, initial_state=0)
    data = TrainingData(
        stream=stream,
        alphabet=Alphabet.of_size(params.alphabet_size),
        source=source,
        params=params,
    )
    data.validate()
    return data
