"""Clean background test data (Section 5.4.1 of the paper).

The background data is composed solely of the commonly occurring
sequences of the training data — a repetition of the cycle
``1 2 3 4 5 6 7 8`` — so that any detector window sliding over it
encounters only common training sequences, and any anomalous response
in a test stream is attributable to the injected anomaly alone.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataGenerationError
from repro.sequences.ngram_store import NgramStore


def generate_background(
    alphabet_size: int, length: int, phase: int = 0
) -> np.ndarray:
    """Return a pure-cycle stream of ``length`` elements.

    Args:
        alphabet_size: number of cycle states.
        length: number of elements; must be positive.
        phase: code of the first element (the cycle can start at any
            point; injection uses this to align boundary sequences).

    Returns:
        1-D ``int64`` array walking the cycle from ``phase``.
    """
    if alphabet_size < 2:
        raise DataGenerationError(f"alphabet_size must be >= 2, got {alphabet_size}")
    if length <= 0:
        raise DataGenerationError(f"background length must be positive, got {length}")
    if not 0 <= phase < alphabet_size:
        raise DataGenerationError(
            f"phase {phase} out of range for alphabet of size {alphabet_size}"
        )
    return (np.arange(length, dtype=np.int64) + phase) % alphabet_size


def verify_background_clean(
    background: np.ndarray,
    training_store: NgramStore,
    window_lengths: tuple[int, ...],
    rare_threshold: float,
) -> None:
    """Check that the background contains only common training sequences.

    Every window of every requested length must occur in training with
    relative frequency at or above ``rare_threshold``; otherwise the
    background itself would register foreign or rare sequences and
    confound the evaluation (the paper's "clean" requirement).

    Raises:
        DataGenerationError: naming the first offending window.
    """
    for length in window_lengths:
        if len(background) < length:
            continue
        seen: set[tuple[int, ...]] = set()
        view = np.lib.stride_tricks.sliding_window_view(background, length)
        for row in view:
            window = tuple(int(code) for code in row)
            if window in seen:
                continue
            seen.add(window)
            frequency = training_store.relative_frequency(window)
            if frequency == 0.0:
                raise DataGenerationError(
                    f"background window {window} is foreign to training"
                )
            if frequency < rare_threshold:
                raise DataGenerationError(
                    f"background window {window} is rare in training "
                    f"(relative frequency {frequency:.5f} < {rare_threshold})"
                )
