"""Boundary-clean anomaly injection (Section 5.4.2, Figure 2).

Randomly dropping an anomaly into background data is undesirable: the
elements of the anomaly interact with the background inside the sliding
detector window and can create *unintended* foreign or rare sequences at
the injection boundary.  The paper requires an injection for which every
window mixing anomaly and background elements is a sequence that exists
in the training data, and for which the background itself registers
nothing anomalous; when no such injection exists the anomaly is redrawn.

Because the background is a phase of the training cycle, the search
space is the pair of cycle phases flanking the anomaly.  The injector
tries all phase pairs and verifies the full policy on the composed
stream; this is the deterministic equivalent of the paper's brute-force
effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.background import generate_background
from repro.datagen.training import TrainingData
from repro.exceptions import EvaluationError, InjectionError
from repro.sequences.ngram_store import NgramStore


@dataclass(frozen=True)
class InjectionPolicy:
    """What a clean injection must guarantee, and at which window lengths.

    Attributes:
        window_lengths: every detector-window length the stream will be
            analyzed at; the policy is enforced for each.
        rare_threshold: the corpus rarity bound (windows entirely of
            background must be common, i.e. at or above it).
        require_common_outside: windows with no anomaly overlap must be
            common training sequences (the paper's clean-background
            requirement).
        forbid_foreign_boundary: windows overlapping the anomaly
            *partially* must exist in training.  Such windows are
            allowed to be rare — they necessarily inherit the rare
            context of the anomaly's parts — but a foreign boundary
            window would hand Stide a spurious detection and is
            rejected.
    """

    window_lengths: tuple[int, ...]
    rare_threshold: float
    require_common_outside: bool = True
    forbid_foreign_boundary: bool = True

    def __post_init__(self) -> None:
        if not self.window_lengths or min(self.window_lengths) < 2:
            raise InjectionError("policy requires window lengths >= 2")
        if not 0.0 < self.rare_threshold < 1.0:
            raise InjectionError(
                f"rare_threshold must lie in (0, 1), got {self.rare_threshold}"
            )


@dataclass(frozen=True)
class InjectedStream:
    """A test stream containing exactly one injected anomaly.

    Attributes:
        stream: the composed test data.
        anomaly: the injected sequence (alphabet codes).
        position: index of the anomaly's first element in ``stream``.
        left_phase: cycle code of the element preceding the anomaly.
        right_phase: cycle code of the element following the anomaly.
    """

    stream: np.ndarray = field(repr=False)
    anomaly: tuple[int, ...]
    position: int
    left_phase: int
    right_phase: int

    def __post_init__(self) -> None:
        if self.stream.ndim != 1:
            raise InjectionError("injected stream must be one-dimensional")
        size = len(self.anomaly)
        if not 0 <= self.position <= len(self.stream) - size:
            raise InjectionError(
                f"anomaly at position {self.position} (size {size}) does not fit "
                f"in a stream of length {len(self.stream)}"
            )
        actual = tuple(int(code) for code in
                       self.stream[self.position : self.position + size])
        if actual != self.anomaly:
            raise InjectionError("stream content at position disagrees with anomaly")

    @property
    def anomaly_size(self) -> int:
        """Length of the injected anomaly (the paper's ``AS``)."""
        return len(self.anomaly)

    def incident_span(self, window_length: int) -> range:
        """Window-start indices of the incident span for ``window_length``.

        The incident span comprises every window containing at least one
        element of the anomaly (Figure 2): starts from
        ``position - window_length + 1`` through ``position + AS - 1``,
        clipped to valid window starts.

        Raises:
            EvaluationError: if the stream has no window of that length.
        """
        last_start = len(self.stream) - window_length
        if last_start < 0:
            raise EvaluationError(
                f"stream of length {len(self.stream)} has no windows of "
                f"length {window_length}"
            )
        first = max(0, self.position - window_length + 1)
        last = min(last_start, self.position + self.anomaly_size - 1)
        return range(first, last + 1)

    def window_overlap(self, start: int, window_length: int) -> int:
        """Number of anomaly elements inside the window starting at ``start``."""
        lo = max(start, self.position)
        hi = min(start + window_length, self.position + self.anomaly_size)
        return max(0, hi - lo)

    def is_boundary_window(self, start: int, window_length: int) -> bool:
        """Whether the window mixes anomaly and background elements."""
        overlap = self.window_overlap(start, window_length)
        return 0 < overlap < min(window_length, self.anomaly_size) or (
            0 < overlap == self.anomaly_size < window_length
        )


def _verify_policy(
    candidate: InjectedStream, store: NgramStore, policy: InjectionPolicy
) -> str | None:
    """Return a rejection reason, or None if the stream satisfies the policy."""
    stream = candidate.stream
    size = candidate.anomaly_size
    for window_length in policy.window_lengths:
        if len(stream) < window_length:
            return f"stream shorter than window length {window_length}"
        view = np.lib.stride_tricks.sliding_window_view(stream, window_length)
        checked: set[tuple[tuple[int, ...], bool]] = set()
        for start, row in enumerate(view):
            overlap = candidate.window_overlap(start, window_length)
            if overlap == size and window_length >= size:
                continue  # window contains the full anomaly: foreign by design
            window = tuple(int(code) for code in row)
            key = (window, overlap == 0)
            if key in checked:
                continue
            checked.add(key)
            frequency = store.relative_frequency(window)
            if overlap == 0:
                if policy.require_common_outside and frequency < policy.rare_threshold:
                    kind = "foreign" if frequency == 0.0 else "rare"
                    return (
                        f"background window {window} at start {start} is {kind} "
                        f"(length {window_length})"
                    )
            else:
                if policy.forbid_foreign_boundary and frequency == 0.0:
                    return (
                        f"boundary window {window} at start {start} is foreign "
                        f"(length {window_length})"
                    )
    return None


def inject_anomaly(
    anomaly: tuple[int, ...] | list[int],
    training: TrainingData,
    policy: InjectionPolicy,
    stream_length: int = 1000,
    position: int | None = None,
) -> InjectedStream:
    """Compose a test stream with one boundary-clean injected anomaly.

    The stream is ``background-prefix + anomaly + background-suffix``
    where the prefix and suffix are phases of the training cycle.  All
    flanking phase pairs are tried in deterministic order; the first
    composition satisfying ``policy`` at every window length wins.

    Args:
        anomaly: the sequence to inject (alphabet codes).
        training: the corpus defining foreignness/rarity.
        policy: the cleanliness requirements.
        stream_length: total length of the composed test stream.
        position: index for the anomaly's first element; defaults to the
            center of the stream.

    Raises:
        InjectionError: if the anomaly does not fit, or no phase pair
            yields a clean injection (the caller should redraw the
            anomaly, as the paper does).
    """
    sequence = tuple(int(code) for code in anomaly)
    if len(sequence) < 1:
        raise InjectionError("cannot inject an empty anomaly")
    size = len(sequence)
    max_window = max(policy.window_lengths)
    if position is None:
        position = (stream_length - size) // 2
    prefix_length = position
    suffix_length = stream_length - size - position
    if prefix_length < max_window or suffix_length < max_window:
        raise InjectionError(
            f"anomaly of size {size} at position {position} leaves less than one "
            f"max-length window ({max_window}) of background on a side"
        )
    alphabet_size = training.alphabet.size
    store = training.analyzer.store_for(*policy.window_lengths)
    failures: list[str] = []
    for left_end in range(alphabet_size):
        # Prefix is the cycle segment ending at code ``left_end``.
        left_phase = (left_end - (prefix_length - 1)) % alphabet_size
        prefix = generate_background(alphabet_size, prefix_length, phase=left_phase)
        for right_start in range(alphabet_size):
            suffix = generate_background(alphabet_size, suffix_length, phase=right_start)
            stream = np.concatenate(
                [prefix, np.asarray(sequence, dtype=np.int64), suffix]
            )
            candidate = InjectedStream(
                stream=stream,
                anomaly=sequence,
                position=position,
                left_phase=left_end,
                right_phase=right_start,
            )
            reason = _verify_policy(candidate, store, policy)
            if reason is None:
                return candidate
            failures.append(
                f"phases (end={left_end}, start={right_start}): {reason}"
            )
    raise InjectionError(
        f"no clean injection exists for anomaly {sequence}; tried "
        f"{alphabet_size * alphabet_size} phase pairs. Last failure: {failures[-1]}"
    )


def inject_randomly(
    anomaly: tuple[int, ...] | list[int],
    training: TrainingData,
    stream_length: int,
    rng: np.random.Generator,
    margin: int = 16,
) -> InjectedStream:
    """Inject without boundary checks (the ablation baseline, E12).

    Picks a uniformly random position and random flanking phases.  The
    result generally violates the clean-injection policy, producing the
    spurious boundary anomalies the paper warns about.
    """
    sequence = tuple(int(code) for code in anomaly)
    size = len(sequence)
    if stream_length < size + 2 * margin:
        raise InjectionError(
            f"stream length {stream_length} too short for anomaly of size {size} "
            f"with margin {margin}"
        )
    alphabet_size = training.alphabet.size
    position = int(rng.integers(margin, stream_length - size - margin + 1))
    prefix = generate_background(
        alphabet_size, position, phase=int(rng.integers(alphabet_size))
    )
    suffix = generate_background(
        alphabet_size,
        stream_length - size - position,
        phase=int(rng.integers(alphabet_size)),
    )
    stream = np.concatenate([prefix, np.asarray(sequence, dtype=np.int64), suffix])
    return InjectedStream(
        stream=stream,
        anomaly=sequence,
        position=position,
        left_phase=int(stream[position - 1]),
        right_phase=int(stream[position + size]),
    )
