"""Natural-style categorical data — and why the paper avoids it.

Section 4.3 explains that natural data was *not* used because it
"contains confounding elements that can undermine the fidelity of the
final results": spurious, naturally occurring foreign and rare
sequences in the background make it impossible to attribute a
detector's responses to the injected anomaly.

:class:`NaturalSource` generates such data on demand — an irreducible
first-order Markov chain with Dirichlet-distributed rows over the
paper's alphabet — so the confound is measurable rather than
anecdotal: a detector trained on one natural sample and deployed on
another fires on background alone (the E17 bench), which is exactly
the evaluation noise the synthetic corpus eliminates.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.markov_source import MarkovChainSource
from repro.exceptions import DataGenerationError


class NaturalSource:
    """Messy, natural-looking categorical streams.

    The transition matrix has Dirichlet(``concentration``) rows: small
    concentrations give skewed, motif-like behavior (closer to real
    audit data); large concentrations approach uniform noise.

    Args:
        alphabet_size: number of categorical states.
        concentration: Dirichlet concentration per row (default 0.4,
            which yields strongly non-uniform rows with long common
            motifs and thin rare tails).
        seed: seed for the matrix itself (streams are sampled with
            caller-provided generators).
    """

    def __init__(
        self,
        alphabet_size: int = 8,
        concentration: float = 0.4,
        seed: int = 0,
    ) -> None:
        if alphabet_size < 2:
            raise DataGenerationError(
                f"alphabet_size must be >= 2, got {alphabet_size}"
            )
        if concentration <= 0:
            raise DataGenerationError(
                f"concentration must be positive, got {concentration}"
            )
        rng = np.random.default_rng(seed)
        matrix = rng.dirichlet(
            np.full(alphabet_size, concentration), size=alphabet_size
        )
        # Guarantee irreducibility: blend in a small uniform component.
        matrix = 0.99 * matrix + 0.01 / alphabet_size
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
        self._chain = MarkovChainSource(matrix)
        self._alphabet_size = alphabet_size

    @property
    def alphabet_size(self) -> int:
        """Number of states."""
        return self._alphabet_size

    @property
    def transition_matrix(self) -> np.ndarray:
        """The generating matrix (copy)."""
        return self._chain.transition_matrix

    def sample(self, length: int, rng: np.random.Generator) -> np.ndarray:
        """One stream of ``length`` elements."""
        return self._chain.sample(length, rng)


def background_confound_rate(
    training_stream: np.ndarray,
    heldout_stream: np.ndarray,
    window_length: int,
) -> float:
    """Fraction of held-out windows foreign to the training stream.

    This is the paper's confound in one number: on clean synthetic
    background it is exactly 0 (every window is a common training
    sequence), while natural data shows a nonzero rate — every such
    window is an anomaly signal with no injected cause.

    Raises:
        DataGenerationError: if either stream is shorter than a window.
    """
    if (
        len(training_stream) < window_length
        or len(heldout_stream) < window_length
    ):
        raise DataGenerationError(
            "streams must contain at least one window of length "
            f"{window_length}"
        )
    train_view = np.lib.stride_tricks.sliding_window_view(
        np.asarray(training_stream), window_length
    )
    known = {tuple(int(c) for c in row) for row in train_view}
    heldout_view = np.lib.stride_tricks.sliding_window_view(
        np.asarray(heldout_stream), window_length
    )
    foreign = sum(
        1 for row in heldout_view if tuple(int(c) for c in row) not in known
    )
    return foreign / len(heldout_view)
