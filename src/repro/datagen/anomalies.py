"""Minimal-foreign-sequence synthesis (Section 5.4.2 of the paper).

The paper composes its anomalies — minimal foreign sequences of sizes
2 through 9 — by concatenating short *rare* sequences from the training
trace and verifying foreignness and minimality.  The synthesizer here
performs the equivalent construction exactly: an MFS of length ``n``
is the overlap-join of two observed ``(n-1)``-grams whose length-``n``
join never occurs, which guarantees both properties by construction
(every proper subsequence of the join lies inside one of the two
observed parts).

For sizes 3 and up the two parts are required to be rare, matching the
paper.  For size 2 the proper subsequences are single symbols, all of
which are common in the paper's corpus (the cycle visits the whole
alphabet), so the rarity requirement is vacuous and is dropped — the
paper's own size-2 anomalies necessarily have this property as well.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.training import TrainingData
from repro.exceptions import AnomalySynthesisError


@dataclass(frozen=True)
class SynthesizedAnomaly:
    """A verified minimal foreign sequence and its provenance.

    Attributes:
        sequence: the MFS, as a tuple of alphabet codes.
        size: ``len(sequence)`` (the paper's ``AS``).
        left_part: the observed ``size-1``-gram forming the prefix.
        right_part: the observed ``size-1``-gram forming the suffix.
        parts_rare: whether both parts are rare in training (true for
            every size >= 3 under the default synthesis).
        left_part_frequency: relative frequency of the prefix part.
        right_part_frequency: relative frequency of the suffix part.
    """

    sequence: tuple[int, ...]
    size: int
    left_part: tuple[int, ...]
    right_part: tuple[int, ...]
    parts_rare: bool
    left_part_frequency: float
    right_part_frequency: float

    def __post_init__(self) -> None:
        if self.size != len(self.sequence):
            raise AnomalySynthesisError(
                f"size {self.size} disagrees with sequence length {len(self.sequence)}"
            )
        if self.sequence[:-1] != self.left_part or self.sequence[1:] != self.right_part:
            raise AnomalySynthesisError(
                "left/right parts must be the (n-1)-prefix and (n-1)-suffix of the MFS"
            )


class AnomalySynthesizer:
    """Synthesize verified MFS anomalies against a training corpus.

    Args:
        training: the corpus the anomalies must be foreign to.
    """

    def __init__(self, training: TrainingData) -> None:
        self._training = training
        self._analyzer = training.analyzer

    def candidates(
        self, size: int, rare_parts_only: bool | None = None, limit: int | None = None
    ) -> list[tuple[int, ...]]:
        """Enumerate candidate MFSs of ``size`` in deterministic order.

        Args:
            size: anomaly length (>= 2).
            rare_parts_only: require both (size-1)-parts to be rare.
                Defaults to true for sizes >= 3 and false for size 2
                (see module docstring).
            limit: optional cap on the number of candidates returned.
        """
        if size < 2:
            raise AnomalySynthesisError(
                f"anomaly size must be >= 2, got {size}; a size-1 foreign "
                "sequence over the training alphabet cannot exist (Section 6)"
            )
        if rare_parts_only is None:
            rare_parts_only = size >= 3
        return self._analyzer.minimal_foreign_sequences(
            size, rare_parts_only=rare_parts_only, limit=limit
        )

    def synthesize(
        self,
        size: int,
        rare_parts_only: bool | None = None,
        index: int = 0,
    ) -> SynthesizedAnomaly:
        """Return the ``index``-th candidate MFS of ``size``, fully verified.

        The candidate enumeration is deterministic (lexicographic), so a
        fixed ``(size, index)`` always yields the same anomaly for a
        fixed training corpus — the replicability the paper's suite
        construction requires.

        Args:
            size: anomaly length (the paper's ``AS``; >= 2).
            rare_parts_only: see :meth:`candidates`.
            index: which candidate to take (0-based).

        Raises:
            AnomalySynthesisError: if no MFS with the requested
                properties exists, or ``index`` is out of range.
        """
        found = self.candidates(size, rare_parts_only=rare_parts_only)
        if not found:
            raise AnomalySynthesisError(
                f"training corpus admits no minimal foreign sequence of size {size}"
                + (" with rare parts" if (rare_parts_only or size >= 3) else "")
            )
        if not 0 <= index < len(found):
            raise AnomalySynthesisError(
                f"anomaly index {index} out of range; {len(found)} candidates of "
                f"size {size} exist"
            )
        sequence = found[index]
        # Independent exhaustive verification (tests rely on this oracle).
        self._analyzer.verify_minimal_foreign(sequence)
        left, right = sequence[:-1], sequence[1:]
        return SynthesizedAnomaly(
            sequence=sequence,
            size=size,
            left_part=left,
            right_part=right,
            parts_rare=self._analyzer.is_rare(left) and self._analyzer.is_rare(right),
            left_part_frequency=self._frequency(left),
            right_part_frequency=self._frequency(right),
        )

    def _frequency(self, part: tuple[int, ...]) -> float:
        store = self._analyzer.store_for(len(part))
        return store.relative_frequency(part)
