"""Synthetic-corpus construction (Sections 5.3-5.4 of the paper).

The paper's entire evaluation runs on synthetic categorical data built
in four stages, each owned by a module here:

1. :mod:`~repro.datagen.markov_source` — a general Markov-chain stream
   sampler plus the paper's specific *cycle-with-rare-jumps* source;
2. :mod:`~repro.datagen.training` — the training stream (1,000,000
   elements, 98% deterministic cycle, 2% rare deviations);
3. :mod:`~repro.datagen.background` — clean background test data
   containing only common training sequences;
4. :mod:`~repro.datagen.anomalies` / :mod:`~repro.datagen.injection` —
   synthesis of minimal foreign sequences from rare subsequences and
   their boundary-clean injection into background data;
5. :mod:`~repro.datagen.suite` — the full evaluation corpus: one
   training stream plus one test stream per (anomaly size, detector
   window) combination.
"""

from repro.datagen.anomalies import AnomalySynthesizer, SynthesizedAnomaly
from repro.datagen.background import generate_background
from repro.datagen.contamination import contaminate_training
from repro.datagen.injection import InjectedStream, InjectionPolicy, inject_anomaly
from repro.datagen.markov_source import CycleJumpSource, MarkovChainSource
from repro.datagen.natural import NaturalSource, background_confound_rate
from repro.datagen.suite import EvaluationSuite, build_suite
from repro.datagen.training import TrainingData, generate_training_data

__all__ = [
    "AnomalySynthesizer",
    "CycleJumpSource",
    "EvaluationSuite",
    "InjectedStream",
    "InjectionPolicy",
    "MarkovChainSource",
    "NaturalSource",
    "background_confound_rate",
    "contaminate_training",
    "SynthesizedAnomaly",
    "TrainingData",
    "build_suite",
    "generate_background",
    "generate_training_data",
    "inject_anomaly",
]
