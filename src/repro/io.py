"""Trace serialization: UNM-style text traces and NumPy archives.

The public UNM datasets ship as plain text, one event per line, one
file per process.  This module reads and writes that format (against an
explicit :class:`~repro.sequences.alphabet.Alphabet`) plus a compact
``.npz`` archive for whole labeled datasets, so corpora built here can
be exchanged with other tooling.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.exceptions import ReproError
from repro.sequences.alphabet import Alphabet
from repro.syscalls.generator import LabeledTrace, SyscallDataset


class TraceIOError(ReproError):
    """A trace file could not be read or written."""


def write_trace_text(
    path: str | Path, stream: np.ndarray, alphabet: Alphabet
) -> None:
    """Write one trace as UNM-style text: one decoded symbol per line."""
    target = Path(path)
    symbols = alphabet.decode(np.asarray(stream).tolist())
    target.write_text("".join(f"{symbol}\n" for symbol in symbols))


def read_trace_text(path: str | Path, alphabet: Alphabet) -> np.ndarray:
    """Read a UNM-style text trace back into encoded codes.

    Symbols are parsed as the literal line text; integer-symbol
    alphabets (the paper corpus) are handled by trying ``int`` first.

    Raises:
        TraceIOError: if the file is missing or a line is not in the
            alphabet.
    """
    source = Path(path)
    if not source.exists():
        raise TraceIOError(f"trace file not found: {source}")
    codes = []
    for line_number, line in enumerate(source.read_text().splitlines(), 1):
        token = line.strip()
        if not token:
            continue
        symbol: object = token
        if token.lstrip("-").isdigit():
            symbol = int(token)
        if symbol not in alphabet:
            raise TraceIOError(
                f"{source}:{line_number}: symbol {token!r} not in alphabet"
            )
        codes.append(alphabet.encode_symbol(symbol))
    return np.asarray(codes, dtype=np.int64)


def save_dataset(path: str | Path, dataset: SyscallDataset) -> None:
    """Save a labeled dataset to one ``.npz`` archive."""
    target = Path(path)
    payload: dict[str, np.ndarray] = {
        "program_name": np.asarray(dataset.program_name),
        "alphabet": np.asarray([str(s) for s in dataset.alphabet.symbols]),
    }
    for split_name, traces in (
        ("training", dataset.training),
        ("test_normal", dataset.test_normal),
        ("test_intrusions", dataset.test_intrusions),
    ):
        payload[f"{split_name}_count"] = np.asarray(len(traces))
        for index, trace in enumerate(traces):
            payload[f"{split_name}_{index}_stream"] = trace.stream
            if trace.intrusion_region is not None:
                payload[f"{split_name}_{index}_region"] = np.asarray(
                    trace.intrusion_region
                )
                payload[f"{split_name}_{index}_exploit"] = np.asarray(
                    trace.exploit_name
                )
    np.savez_compressed(target, **payload)


def load_dataset(path: str | Path) -> SyscallDataset:
    """Load a dataset written by :func:`save_dataset`.

    Raises:
        TraceIOError: if the file is missing or malformed.
    """
    source = Path(path)
    if not source.exists():
        raise TraceIOError(f"dataset archive not found: {source}")
    try:
        with np.load(source, allow_pickle=False) as archive:
            alphabet = Alphabet(str(s) for s in archive["alphabet"])
            program_name = str(archive["program_name"])
            splits: dict[str, tuple[LabeledTrace, ...]] = {}
            for split_name in ("training", "test_normal", "test_intrusions"):
                count = int(archive[f"{split_name}_count"])
                traces = []
                for index in range(count):
                    stream = archive[f"{split_name}_{index}_stream"]
                    region_key = f"{split_name}_{index}_region"
                    if region_key in archive:
                        region = tuple(
                            int(v) for v in archive[region_key]
                        )
                        exploit = str(archive[f"{split_name}_{index}_exploit"])
                    else:
                        region, exploit = None, None
                    traces.append(
                        LabeledTrace(
                            stream=stream,
                            intrusion_region=region,  # type: ignore[arg-type]
                            exploit_name=exploit,
                        )
                    )
                splits[split_name] = tuple(traces)
    except KeyError as error:
        raise TraceIOError(f"malformed dataset archive {source}: {error}") from error
    return SyscallDataset(
        program_name=program_name,
        alphabet=alphabet,
        training=splits["training"],
        test_normal=splits["test_normal"],
        test_intrusions=splits["test_intrusions"],
    )
