"""Trace serialization: UNM-style text traces, NumPy archives, checkpoints.

The public UNM datasets ship as plain text, one event per line, one
file per process.  This module reads and writes that format (against an
explicit :class:`~repro.sequences.alphabet.Alphabet`) plus a compact
``.npz`` archive for whole labeled datasets, so corpora built here can
be exchanged with other tooling.

It also owns the **sweep checkpoint format**: an append-only JSONL file
with one completed performance-map cell per line.  Floats round-trip
through ``repr`` (Python's JSON encoder), so a cell read back from a
checkpoint compares bit-identical to the cell that was written — the
property ``build_performance_map(resume_from=...)`` relies on.

Checkpoint record schema (one JSON object per line)::

    {"detector": "stide", "anomaly_size": 3, "window_length": 5,
     "outcome": {"response_class": "capable", "max_in_span": 1.0,
                 "max_outside_span": 0.25, "span_start": 96,
                 "span_stop": 103, "spurious_alarms": 0}}
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.evaluation.performance_map import Cell, CellResult
from repro.evaluation.scoring import DetectionOutcome, ResponseClass
from repro.exceptions import CheckpointError, ReproError
from repro.runtime import telemetry
from repro.sequences.alphabet import Alphabet
from repro.syscalls.generator import LabeledTrace, SyscallDataset


class TraceIOError(ReproError):
    """A trace file could not be read or written."""


def write_trace_text(
    path: str | Path, stream: np.ndarray, alphabet: Alphabet
) -> None:
    """Write one trace as UNM-style text: one decoded symbol per line."""
    target = Path(path)
    symbols = alphabet.decode(np.asarray(stream).tolist())
    target.write_text("".join(f"{symbol}\n" for symbol in symbols))


def read_trace_text(path: str | Path, alphabet: Alphabet) -> np.ndarray:
    """Read a UNM-style text trace back into encoded codes.

    Symbols are parsed as the literal line text; integer-symbol
    alphabets (the paper corpus) are handled by trying ``int`` first.

    Raises:
        TraceIOError: if the file is missing or a line is not in the
            alphabet.
    """
    source = Path(path)
    if not source.exists():
        raise TraceIOError(f"trace file not found: {source}")
    codes = []
    for line_number, line in enumerate(source.read_text().splitlines(), 1):
        token = line.strip()
        if not token:
            continue
        symbol: object = token
        if token.lstrip("-").isdigit():
            symbol = int(token)
        if symbol not in alphabet:
            raise TraceIOError(
                f"{source}:{line_number}: symbol {token!r} not in alphabet"
            )
        codes.append(alphabet.encode_symbol(symbol))
    return np.asarray(codes, dtype=np.int64)


def save_dataset(path: str | Path, dataset: SyscallDataset) -> None:
    """Save a labeled dataset to one ``.npz`` archive."""
    target = Path(path)
    payload: dict[str, np.ndarray] = {
        "program_name": np.asarray(dataset.program_name),
        "alphabet": np.asarray([str(s) for s in dataset.alphabet.symbols]),
    }
    for split_name, traces in (
        ("training", dataset.training),
        ("test_normal", dataset.test_normal),
        ("test_intrusions", dataset.test_intrusions),
    ):
        payload[f"{split_name}_count"] = np.asarray(len(traces))
        for index, trace in enumerate(traces):
            payload[f"{split_name}_{index}_stream"] = trace.stream
            if trace.intrusion_region is not None:
                payload[f"{split_name}_{index}_region"] = np.asarray(
                    trace.intrusion_region
                )
                payload[f"{split_name}_{index}_exploit"] = np.asarray(
                    trace.exploit_name
                )
    np.savez_compressed(target, **payload)


def load_dataset(path: str | Path) -> SyscallDataset:
    """Load a dataset written by :func:`save_dataset`.

    Raises:
        TraceIOError: if the file is missing or malformed.
    """
    source = Path(path)
    if not source.exists():
        raise TraceIOError(f"dataset archive not found: {source}")
    try:
        with np.load(source, allow_pickle=False) as archive:
            alphabet = Alphabet(str(s) for s in archive["alphabet"])
            program_name = str(archive["program_name"])
            splits: dict[str, tuple[LabeledTrace, ...]] = {}
            for split_name in ("training", "test_normal", "test_intrusions"):
                count = int(archive[f"{split_name}_count"])
                traces = []
                for index in range(count):
                    stream = archive[f"{split_name}_{index}_stream"]
                    region_key = f"{split_name}_{index}_region"
                    if region_key in archive:
                        region = tuple(
                            int(v) for v in archive[region_key]
                        )
                        exploit = str(archive[f"{split_name}_{index}_exploit"])
                    else:
                        region, exploit = None, None
                    traces.append(
                        LabeledTrace(
                            stream=stream,
                            intrusion_region=region,  # type: ignore[arg-type]
                            exploit_name=exploit,
                        )
                    )
                splits[split_name] = tuple(traces)
    except KeyError as error:
        raise TraceIOError(f"malformed dataset archive {source}: {error}") from error
    return SyscallDataset(
        program_name=program_name,
        alphabet=alphabet,
        training=splits["training"],
        test_normal=splits["test_normal"],
        test_intrusions=splits["test_intrusions"],
    )


# -- tolerant JSONL reading -------------------------------------------------


def read_jsonl_tolerant(
    path: str | Path,
    strict: bool = True,
    torn_tail_counter: str = "checkpoint.torn_tail",
) -> list[tuple[int, dict]]:
    """Parse a JSONL file, tolerating a torn final line.

    A process killed mid-append (SIGKILL during a checkpoint or WAL
    write) leaves at most one truncated record — and it is always the
    *last* line of the file.  That signature is recovered from, not
    raised: the torn tail is skipped, counted under
    ``torn_tail_counter`` (a telemetry warning counter), and the
    caller simply recomputes whatever the lost record carried.
    Corruption anywhere *before* the tail cannot be produced by a torn
    append and is treated per ``strict``: raised (the file is damaged,
    not merely truncated) or skipped.

    This is the shared guard under both the sweep checkpoint reader
    (:func:`checkpoint_load`) and the serving write-ahead log
    (:mod:`repro.serve.wal`).

    Args:
        path: the JSONL file; missing is a :class:`CheckpointError`.
        strict: whether mid-file garbage raises (``True``) or is
            skipped (``False``).
        torn_tail_counter: telemetry counter charged for a skipped
            torn tail.

    Returns:
        ``[(line_number, record), ...]`` for every parsed line.
    """
    source = Path(path)
    if not source.exists():
        raise CheckpointError(f"checkpoint file not found: {source}")
    numbered = [
        (line_number, text)
        for line_number, text in enumerate(
            source.read_text(encoding="utf-8").splitlines(), 1
        )
        if text.strip()
    ]
    tail_number = numbered[-1][0] if numbered else None
    records: list[tuple[int, dict]] = []
    for line_number, text in numbered:
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            if line_number == tail_number:
                telemetry.count(torn_tail_counter)
                continue
            if strict:
                raise CheckpointError(
                    f"{source}:{line_number}: {error}"
                ) from error
            continue
        if not isinstance(record, dict):
            if line_number == tail_number:
                telemetry.count(torn_tail_counter)
                continue
            if strict:
                raise CheckpointError(
                    f"{source}:{line_number}: expected a JSON object, "
                    f"got {type(record).__name__}"
                )
            continue
        records.append((line_number, record))
    return records


# -- sweep checkpoints ------------------------------------------------------


def cell_to_record(detector_name: str, result: CellResult) -> dict[str, object]:
    """One checkpoint record (a JSON-serializable dict) for one cell."""
    outcome = result.outcome
    return {
        "detector": detector_name,
        "anomaly_size": result.anomaly_size,
        "window_length": result.window_length,
        "outcome": {
            "response_class": outcome.response_class.value,
            "max_in_span": outcome.max_in_span,
            "max_outside_span": outcome.max_outside_span,
            "span_start": outcome.span_start,
            "span_stop": outcome.span_stop,
            "spurious_alarms": outcome.spurious_alarms,
        },
    }


def record_to_cell(record: dict[str, object]) -> tuple[str, CellResult]:
    """Invert :func:`cell_to_record`.

    Raises:
        CheckpointError: when the record is missing fields or holds
            values outside the schema.
    """
    try:
        outcome = record["outcome"]
        result = CellResult(
            anomaly_size=int(record["anomaly_size"]),  # type: ignore[arg-type]
            window_length=int(record["window_length"]),  # type: ignore[arg-type]
            outcome=DetectionOutcome(
                response_class=ResponseClass(outcome["response_class"]),  # type: ignore[index]
                max_in_span=float(outcome["max_in_span"]),  # type: ignore[index]
                max_outside_span=float(outcome["max_outside_span"]),  # type: ignore[index]
                span_start=int(outcome["span_start"]),  # type: ignore[index]
                span_stop=int(outcome["span_stop"]),  # type: ignore[index]
                spurious_alarms=int(outcome["spurious_alarms"]),  # type: ignore[index]
            ),
        )
        return str(record["detector"]), result
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed checkpoint record: {error}") from error


def checkpoint_append(
    path: str | Path, detector_name: str, results: "CellResult | list[CellResult]"
) -> None:
    """Append completed cells to a JSONL checkpoint file.

    Each cell becomes one line; the write is a single buffered append
    followed by a flush, so a killed run loses at most the block being
    written, never an earlier one.  The parent directory is created on
    first use.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if isinstance(results, CellResult):
        results = [results]
    lines = "".join(
        json.dumps(cell_to_record(detector_name, result), sort_keys=True) + "\n"
        for result in results
    )
    with target.open("a", encoding="utf-8") as handle:
        handle.write(lines)
        handle.flush()


def checkpoint_load(
    path: str | Path, strict: bool = True
) -> dict[str, dict[Cell, CellResult]]:
    """Read a JSONL checkpoint back into per-detector cell mappings.

    A final line truncated mid-record (SIGKILL during the append) is
    *always* tolerated, strict or not: the torn tail is skipped, the
    ``checkpoint.torn_tail`` telemetry counter is charged, and the
    lost cell is simply recomputed by the resumed sweep.  ``strict``
    only governs corruption before the tail — damage a torn append
    cannot produce.

    Args:
        path: the checkpoint file; a missing file is a
            :class:`CheckpointError` (resuming from nothing is almost
            always a caller mistake — pass the same path as
            ``checkpoint=`` to create one instead).
        strict: when ``False``, unparsable mid-file lines are skipped
            rather than raised; fully parsed duplicate cells always
            last-write-win.

    Returns:
        ``{detector_name: {(anomaly_size, window_length): CellResult}}``.
    """
    source = Path(path)
    records = read_jsonl_tolerant(source, strict=strict)
    tail_number = records[-1][0] if records else None
    cells: dict[str, dict[Cell, CellResult]] = {}
    for line_number, record in records:
        try:
            name, result = record_to_cell(record)
        except CheckpointError as error:
            if line_number == tail_number:
                # A schema-truncated (yet JSON-parsable) tail is the
                # same torn-append signature: skip and recompute.
                telemetry.count("checkpoint.torn_tail")
                continue
            if strict:
                raise CheckpointError(
                    f"{source}:{line_number}: {error}"
                ) from error
            continue
        cells.setdefault(name, {})[
            (result.anomaly_size, result.window_length)
        ] = result
    return cells
