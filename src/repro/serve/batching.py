"""Cross-tenant dynamic micro-batching for the serving hot path.

The server's score path used to run one kernel call per request: each
tenant lane handed its job to a thread and the thread slid, packed and
bisected one stream.  The kernels underneath are batch engines — one
fused pass over many streams costs barely more than one stream — so
the serving layer leaves most of the hardware idle.  This module
closes that gap with an inference-server-style micro-batcher:

* :class:`ScoreJob` — one queued score request (tenant, cell, events,
  deadline) plus the future its lane awaits;
* :class:`BatchPolicy` — the adaptive formation knobs: ``max_batch``
  jobs per flush and a ``max_wait_us`` budget measured from the oldest
  job's enqueue time.  A job that finds the queue empty is flushed
  immediately (**solo** — single-job batches bypass the wait);
* :class:`BatchScheduler` — drains jobs from every tenant lane into
  one queue, forms batches, groups each batch by
  ``(family, window, alphabet)`` and dispatches every group as one
  fused kernel call (:meth:`~repro.serve.pipeline.ScorePipeline
  .score_group`) on the worker pool;
* :class:`ScoreWorkerPool` — the execution substrate, reusing the
  runtime's process→thread→serial degradation ladder
  (:data:`~repro.runtime.resilience.DEGRADATION_CHAIN`): a broken
  process pool degrades to threads, a broken thread pool to inline
  execution, with a fail-fast probe so a doomed process pool is
  discovered at startup rather than mid-flush.  Process dispatch
  ships each group's fused stream through the shared-memory
  :class:`~repro.runtime.arena.WindowArena` when available and
  rebuilds detectors in the child from their exported fit state
  (documented bit-identical).

**Flush reasons** — every flush is tagged with why it happened, and
the counters cross-check under ``repro trace validate``:

=========  ========================================================
``solo``   one job, empty queue behind it: dispatched with zero wait
``full``   the batch reached ``max_batch``
``timeout``  the oldest job's ``max_wait_us`` budget expired
``drain``  the scheduler is shutting down and flushed what was left
=========  ========================================================

Correctness is inherited, not re-argued: per-job failures (quarantine,
validation, deadline) fail *that job's* future only; a fused kernel
failure falls back to the sequential pipeline per job; and the fused
kernels themselves are bit-identical to sequential scoring (see
``DESIGN.md`` S48 and ``tests/serve/test_batching.py``), so batching
changes *when and where* a score is computed, never its value — the
loadgen no-wrong-score invariant holds with batching on or off.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.exceptions import ScoreRefusal
from repro.runtime import telemetry
from repro.runtime.resilience import DEGRADATION_CHAIN
from repro.serve.pipeline import ScoreOutcome, ScorePipeline

__all__ = [
    "FLUSH_REASONS",
    "BatchPolicy",
    "BatchScheduler",
    "ScoreJob",
    "ScoreWorkerPool",
]

#: Why a batch left the scheduler (see module docstring).
FLUSH_REASONS = ("solo", "full", "timeout", "drain")

#: Executor kinds, best first — the runtime's degradation ladder.
_EXECUTOR_KINDS = ("process", "thread", "serial")


@dataclass(frozen=True)
class BatchPolicy:
    """Adaptive batch-formation knobs for the scheduler.

    Args:
        max_batch: most jobs per flush (1 forces single-job batches —
            the unbatched-comparison mode CI diffs against).
        max_wait_us: longest a partially filled batch may wait for
            company, in microseconds, measured from the *oldest*
            member's enqueue time.  0 disables waiting entirely.
        workers: worker-pool size for fused kernel dispatch.
        executor: starting rung of the execution ladder —
            ``process``, ``thread`` (default) or ``serial``.
    """

    max_batch: int = 32
    max_wait_us: float = 250.0
    workers: int = 4
    executor: str = "thread"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_us < 0:
            raise ValueError(
                f"max_wait_us must be >= 0, got {self.max_wait_us}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in _EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {_EXECUTOR_KINDS}, "
                f"got {self.executor!r}"
            )


class ScoreJob:
    """One queued score request and the future its lane awaits.

    Carries everything :meth:`ScorePipeline.score_group` needs to
    resolve the job *at scoring time* — tenant state is re-fetched in
    the worker, so a tenant quarantined between enqueue and flush
    refuses then, exactly like the sequential path.
    """

    __slots__ = (
        "tenant_id",
        "family",
        "window",
        "alphabet_size",
        "events",
        "key",
        "attempt",
        "deadline",
        "future",
        "enqueued_at",
    )

    def __init__(
        self,
        tenant_id: str,
        family: str,
        window: int,
        alphabet_size: int | None,
        events: object,
        key: str,
        attempt: int,
        deadline,
        future: asyncio.Future,
        enqueued_at: float,
    ) -> None:
        self.tenant_id = tenant_id
        self.family = family
        self.window = window
        self.alphabet_size = alphabet_size
        self.events = events
        self.key = key
        self.attempt = attempt
        self.deadline = deadline
        self.future = future
        self.enqueued_at = enqueued_at

    @property
    def group_key(self) -> tuple[str, int, int | None]:
        """Jobs sharing this key fuse into one kernel call."""
        return (self.family, self.window, self.alphabet_size)


def _probe() -> int:
    """Fail-fast payload for validating a fresh process pool."""
    return 42


class ScoreWorkerPool:
    """Execution substrate with the process→thread→serial ladder.

    Mirrors :data:`~repro.runtime.resilience.DEGRADATION_CHAIN`: a
    rung that breaks (a process pool that cannot fork or loses its
    children, a shut-down thread pool) degrades permanently to the
    next rung instead of failing jobs.  ``serial`` runs the callable
    inline on the scheduler task — the last-resort rung that always
    works.

    Args:
        workers: pool size for the process/thread rungs.
        kind: starting rung (``process`` | ``thread`` | ``serial``).
    """

    def __init__(self, workers: int = 4, kind: str = "thread") -> None:
        if kind not in _EXECUTOR_KINDS:
            raise ValueError(
                f"kind must be one of {_EXECUTOR_KINDS}, got {kind!r}"
            )
        self._workers = int(workers)
        self.kind = kind
        self.degradations: list[str] = []
        self._process: ProcessPoolExecutor | None = None
        self._threads: ThreadPoolExecutor | None = None
        self._arena = None
        self._shared: dict[str, object] = {}
        if self.kind == "process" and not self._start_process_pool():
            self._degrade("process pool failed its startup probe")

    def _start_process_pool(self) -> bool:
        """Build and probe a process pool; False when it cannot work."""
        try:
            pool = ProcessPoolExecutor(max_workers=self._workers)
            if pool.submit(_probe).result(timeout=30.0) != 42:
                raise RuntimeError("probe returned a wrong value")
        except BaseException:
            return False
        self._process = pool
        return True

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="serve-batch"
            )
        return self._threads

    def _degrade(self, why: str) -> None:
        nxt = DEGRADATION_CHAIN.get(self.kind)
        if nxt is None:
            return
        self.degradations.append(f"{self.kind}->{nxt}: {why}")
        telemetry.count("serve.batch.degraded")
        telemetry.event(
            "serve", "batch.degraded", rung=f"{self.kind}->{nxt}", why=why
        )
        self.kind = nxt

    async def run(self, fn):
        """Run ``fn()`` on the current rung; degrade on rung failure.

        Job-level exceptions propagate to the caller unchanged; only
        *executor-level* failures (a broken pool) consume a rung.
        """
        loop = asyncio.get_running_loop()
        while True:
            if self.kind == "process" and self._process is not None:
                try:
                    return await loop.run_in_executor(self._process, fn)
                except BrokenProcessPool as error:
                    self._process = None
                    self._degrade(f"process pool broke: {error}")
                    continue
            if self.kind == "thread" or (
                self.kind == "process" and self._process is None
            ):
                try:
                    return await loop.run_in_executor(self._thread_pool(), fn)
                except RuntimeError as error:
                    # A shut-down/broken thread pool refuses submissions.
                    if "shutdown" not in str(error).lower():
                        raise
                    self.kind = "thread"
                    self._degrade(f"thread pool unavailable: {error}")
                    continue
            return fn()

    async def run_in_thread(self, fn):
        """Run ``fn()`` on the thread rung regardless of current kind.

        Process-rung dispatch uses this for its prepare/finalize
        phases, which need in-process tenant state.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._thread_pool(), fn)

    @property
    def process_pool(self) -> ProcessPoolExecutor | None:
        """The live process pool, if the process rung is active."""
        return self._process if self.kind == "process" else None

    def publish_streams(self, streams) -> tuple[object | None, list[int]]:
        """Ship a group's streams via the shared-memory arena.

        Concatenates the streams, publishes the fused array into a
        :class:`~repro.runtime.arena.WindowArena` segment and returns
        ``(descriptor, lengths)`` for the child to re-split.  Returns
        ``(None, [])`` when shared memory is unavailable — the caller
        falls back to pickling the streams.
        """
        import numpy as np

        if self._arena is None:
            from repro.runtime.arena import WindowArena

            if not WindowArena.available():
                return None, []
            try:
                self._arena = WindowArena()
            except Exception:
                return None, []
        try:
            concat = np.concatenate(
                [np.ascontiguousarray(s) for s in streams]
            )
            descriptor = self._arena.publish(concat)
        except Exception:
            return None, []
        self._shared[descriptor.name] = concat
        return descriptor, [len(s) for s in streams]

    def release_streams(self, descriptor) -> None:
        """Release a :meth:`publish_streams` segment (no-op on None)."""
        if descriptor is None or self._arena is None:
            return
        concat = self._shared.pop(descriptor.name, None)
        if concat is not None:
            self._arena.release(concat)

    def shutdown(self) -> None:
        """Release both pools and any live arena segments."""
        if self._process is not None:
            self._process.shutdown(wait=False, cancel_futures=True)
            self._process = None
        if self._threads is not None:
            self._threads.shutdown(wait=True, cancel_futures=True)
            self._threads = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None


class BatchScheduler:
    """Drains score jobs across tenant lanes into fused kernel calls.

    One asyncio task owns the queue: it greedily drains whatever is
    ready, applies the formation policy (solo bypass / fill to
    ``max_batch`` / wait out ``max_wait_us``), tags the flush with its
    reason, splits the batch into ``(family, window, alphabet)``
    groups and dispatches each group to the worker pool **without
    awaiting it** — group execution overlaps the next batch's
    formation, which is where the throughput comes from.

    Args:
        pipeline: the scoring pipeline (owns fused group scoring).
        chaos: fault director, threaded through to per-job corruption.
        policy: formation knobs; ``None`` uses defaults.
        pool: worker pool; ``None`` builds one from the policy.
    """

    def __init__(
        self,
        pipeline: ScorePipeline,
        chaos,
        policy: BatchPolicy | None = None,
        pool: ScoreWorkerPool | None = None,
    ) -> None:
        self.policy = policy if policy is not None else BatchPolicy()
        self.pool = (
            pool
            if pool is not None
            else ScoreWorkerPool(self.policy.workers, self.policy.executor)
        )
        self._pipeline = pipeline
        self._chaos = chaos
        self._queue: asyncio.Queue[ScoreJob | None] = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self._groups: set[asyncio.Task] = set()
        self._closing = False
        self.jobs_in = 0
        self.jobs_out = 0
        self.refused = 0
        self.flushes: dict[str, int] = {r: 0 for r in FLUSH_REASONS}
        self.occupancy_sum = 0
        self.occupancy_max = 0
        self.group_count = 0

    # -- submission --------------------------------------------------------

    def _ensure_running(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="batch-scheduler"
            )

    async def submit(self, job: ScoreJob) -> ScoreOutcome:
        """Enqueue one job and await its outcome.

        Called from inside a tenant lane worker, so per-tenant order
        is preserved: the lane blocks on this future before taking its
        next job.  Raises whatever the scoring of *this* job raised.
        """
        if self._closing:
            raise ScoreRefusal(
                "batch scheduler is draining",
                status=503,
                reason="draining",
                retry_after=1.0,
            )
        self._ensure_running()
        self.jobs_in += 1
        telemetry.count("serve.batch.jobs_in")
        self._queue.put_nowait(job)
        outcome = await job.future
        assert isinstance(outcome, ScoreOutcome)
        return outcome

    # -- the drain loop ----------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        wait_budget = self.policy.max_wait_us / 1e6
        while True:
            job = await self._queue.get()
            if job is None:
                self._flush(self._drain_ready(), "drain")
                return
            batch = [job]
            closing = False
            while len(batch) < self.policy.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    closing = True
                    break
                batch.append(nxt)
            if closing:
                reason = "drain"
            elif len(batch) >= self.policy.max_batch:
                reason = "full"
            elif len(batch) == 1:
                # Solo bypass: an empty queue behind a lone job means
                # waiting could only add latency, never company.
                reason = "solo"
            elif wait_budget <= 0:
                reason = "timeout"
            else:
                reason = None
                flush_at = batch[0].enqueued_at + wait_budget
                while len(batch) < self.policy.max_batch:
                    remaining = flush_at - loop.time()
                    if remaining <= 0:
                        reason = "timeout"
                        break
                    try:
                        nxt = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        reason = "timeout"
                        break
                    if nxt is None:
                        closing = True
                        reason = "drain"
                        break
                    batch.append(nxt)
                if reason is None:
                    reason = "full"
            self._flush(batch, reason)
            if closing:
                self._flush(self._drain_ready(), "drain")
                return

    def _drain_ready(self) -> list[ScoreJob]:
        rest: list[ScoreJob] = []
        while True:
            try:
                nxt = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return rest
            if nxt is not None:
                rest.append(nxt)

    def _flush(self, batch: list[ScoreJob], reason: str) -> None:
        if not batch:
            return
        now = asyncio.get_running_loop().time()
        telemetry.count("serve.batch.flush")
        telemetry.count(f"serve.batch.flush.{reason}")
        telemetry.observe("serve.batch.occupancy", len(batch))
        for job in batch:
            telemetry.observe(
                "serve.batch.wait_us", (now - job.enqueued_at) * 1e6
            )
        self.flushes[reason] += 1
        self.occupancy_sum += len(batch)
        self.occupancy_max = max(self.occupancy_max, len(batch))
        groups: dict[tuple, list[ScoreJob]] = {}
        for job in batch:
            groups.setdefault(job.group_key, []).append(job)
        for group in groups.values():
            self.group_count += 1
            telemetry.count("serve.batch.groups")
            task = asyncio.get_running_loop().create_task(
                self._run_group(group)
            )
            self._groups.add(task)
            task.add_done_callback(self._groups.discard)

    # -- group execution ---------------------------------------------------

    async def _run_group(self, jobs: list[ScoreJob]) -> None:
        try:
            if self.pool.process_pool is not None:
                results = await self._pipeline.score_group_in_process(
                    jobs, self._chaos, self.pool
                )
            else:
                results = await self.pool.run(
                    lambda: self._pipeline.score_group(jobs, self._chaos)
                )
        except Exception as error:  # executor died past every rung
            results = [error] * len(jobs)
        for job, result in zip(jobs, results):
            if job.future.done():
                continue
            if isinstance(result, ScoreOutcome):
                self.jobs_out += 1
                telemetry.count("serve.batch.jobs_out")
                job.future.set_result(result)
            else:
                self.refused += 1
                telemetry.count("serve.batch.refused")
                if isinstance(result, BaseException):
                    job.future.set_exception(result)
                else:  # pragma: no cover - defensive
                    job.future.set_exception(
                        ScoreRefusal(
                            f"batch produced no result ({result!r})",
                            status=503,
                            reason="batch-lost",
                            retry_after=0.1,
                        )
                    )

    # -- lifecycle ---------------------------------------------------------

    async def close(self) -> None:
        """Stop admitting, flush what is queued, finish group tasks."""
        if self._closing:
            return
        self._closing = True
        if self._task is not None and not self._task.done():
            self._queue.put_nowait(None)
            await self._task
        if self._groups:
            await asyncio.gather(*tuple(self._groups), return_exceptions=True)
        self.pool.shutdown()

    def snapshot(self) -> dict:
        """Scheduler state for the stats endpoint."""
        flushes = sum(self.flushes.values())
        return {
            "max_batch": self.policy.max_batch,
            "max_wait_us": self.policy.max_wait_us,
            "executor": self.pool.kind,
            "degradations": list(self.pool.degradations),
            "jobs_in": self.jobs_in,
            "jobs_out": self.jobs_out,
            "refused": self.refused,
            "flushes": dict(self.flushes),
            "groups": self.group_count,
            "occupancy_mean": (
                round(self.occupancy_sum / flushes, 3) if flushes else 0.0
            ),
            "occupancy_max": self.occupancy_max,
        }
