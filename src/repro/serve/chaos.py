"""Chaos harness for the scoring service.

Extends the sweep harness's seeded fault machinery
(:class:`~repro.runtime.faults.FaultSchedule`) to the serving request
path.  Same contract: whether a given (request, attempt) faults — and
how — is a pure function of ``(seed, key, attempt)``, so a chaos run
is exactly reproducible and the load generator can predict which of
its requests were poisoned.

Serving fault vocabulary:

* ``latency``      — the request stalls for a bounded, seeded duration
  inside the lane worker (slow-tenant).  An async sleep: it burns the
  victim's deadline budget without blocking the event loop, so the
  bulkhead — not the fleet — absorbs the slowness.
* ``corrupt-event`` — one event code in the request payload is pushed
  *out of the tenant's alphabet* before validation.  Validation must
  catch it and refuse (422); a score leaking out instead would be a
  no-wrong-score violation.  The corruption is adversarial-but-visible
  by construction: chaos never mutates data after validation, mirroring
  the sweep harness, where corruption targets results that validation
  re-checks.
* ``store-read``   — snapshot reads fail during recovery, forcing the
  full-WAL replay path (or a loud quarantine when the log was
  compacted).
* ``worker-crash`` — the lane worker dies mid-job.  The supervisor
  must restart it and fail the in-flight request with a retryable 503.

:class:`ChaosDirector` is the single consultation point the server
calls at each stage; with no schedule attached every hook is a no-op
costing one attribute check.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.runtime import telemetry
from repro.runtime.faults import FaultSchedule

#: Every fault kind the serving chaos harness may inject.
SERVE_FAULT_KINDS: tuple[str, ...] = (
    "latency",
    "corrupt-event",
    "store-read",
    "worker-crash",
)


@dataclass(frozen=True)
class ServeFaultSchedule(FaultSchedule):
    """A seeded fault plan over serving requests.

    Inherits the deterministic ``decide``/``latency_delay`` machinery;
    only the vocabulary changes.  Keys are request-scoped
    (``"<tenant>|<op>|<request #>"``), chosen by the server so the
    load generator can reconstruct every decision offline.
    """

    ALLOWED_KINDS: ClassVar[tuple[str, ...]] = SERVE_FAULT_KINDS

    kinds: tuple[str, ...] = SERVE_FAULT_KINDS


class WorkerCrashFault(BaseException):
    """Injected lane-worker death.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: it
    models the worker being compromised, so it must sail past the
    pipeline's ordinary error handling and be caught only by the lane
    supervisor's restart logic — exactly like a real stray exception.
    """


class ChaosDirector:
    """Injects scheduled serving faults at well-defined stages.

    Args:
        schedule: the fault plan; ``None`` disables every hook.
    """

    def __init__(self, schedule: ServeFaultSchedule | None = None) -> None:
        self.schedule = schedule
        self.injected: dict[str, int] = {}

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire."""
        return self.schedule is not None and self.schedule.rate > 0.0

    def _decide(self, expected: str, key: str, attempt: int) -> bool:
        if self.schedule is None:
            return False
        kind = self.schedule.decide(key, attempt)
        if kind != expected:
            return False
        self.injected[kind] = self.injected.get(kind, 0) + 1
        telemetry.count(f"serve.chaos.{kind}")
        return True

    async def maybe_latency(self, key: str, attempt: int = 1) -> None:
        """Stall (async) when the schedule drew ``latency`` for ``key``."""
        if self._decide("latency", key, attempt):
            assert self.schedule is not None
            await asyncio.sleep(self.schedule.latency_delay(key, attempt))

    def maybe_corrupt_events(
        self, events: np.ndarray, alphabet_size: int, key: str, attempt: int = 1
    ) -> np.ndarray:
        """Poison one event code out of the alphabet, when scheduled.

        Applied *before* validation — the corrupted payload must be
        caught there, which is what the chaos suite asserts.
        """
        if not self._decide("corrupt-event", key, attempt):
            return events
        assert self.schedule is not None
        poisoned = np.asarray(events, dtype=np.int64).copy()
        index = self.schedule.latency_delay(key, attempt)  # reuse the u-draw
        position = int(index / self.schedule.latency_seconds * len(poisoned))
        position = min(position, len(poisoned) - 1)
        poisoned[position] = alphabet_size + poisoned[position]
        return poisoned

    def store_read_faulty(self, key: str, attempt: int = 1) -> bool:
        """Whether recovery should treat snapshot reads as failed."""
        return self._decide("store-read", key, attempt)

    def maybe_worker_crash(self, key: str, attempt: int = 1) -> None:
        """Kill the lane worker, when scheduled."""
        if self._decide("worker-crash", key, attempt):
            raise WorkerCrashFault(
                f"injected worker crash on {key} (attempt {attempt})"
            )
