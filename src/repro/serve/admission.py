"""Admission control: deadlines, bounded queues, per-tenant bulkheads.

Three cooperating pieces, all refusal-first (overload produces HTTP
429/503/504 advisories, never queue collapse or a wrong score):

* :class:`Deadline` — a request's wall-clock budget, checked at every
  expensive stage so a request that can no longer make its budget is
  refused (504) instead of burning a lane on a doomed computation.
* :class:`AdmissionPolicy` — the serving limits (queue depth, default
  budget, breaker thresholds) in one place, shared by server and CLI.
* :class:`TenantLane` — the bulkhead: one bounded queue plus one
  worker task per tenant, so a slow or crashing tenant consumes only
  its own lane.  A worker that dies mid-job is restarted by its
  supervisor wrapper; the in-flight job is failed with a *retryable*
  refusal — acknowledged work is never silently dropped, and no
  partial result ever leaves the lane.

Lanes are also the hand-off point into the cross-tenant micro-batcher
(:mod:`repro.serve.batching`): a lane worker's score job enqueues into
the batch scheduler and awaits its fused outcome, which preserves
per-tenant ordering (one in-flight job per lane) while letting jobs
from *different* lanes fuse into one kernel call.  The lane-queue wait
is observed as ``serve.lane.wait_us`` so admission latency and batch
formation latency stay separable in traces.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro.exceptions import ScoreRefusal
from repro.runtime import telemetry


@dataclass(frozen=True)
class Deadline:
    """A request's absolute wall-clock budget (monotonic seconds)."""

    expires_at: float
    budget: float

    @classmethod
    def after(cls, budget: float, clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``budget`` seconds from now."""
        if budget <= 0:
            raise ScoreRefusal(
                f"deadline budget must be > 0 seconds, got {budget}",
                status=422,
                reason="invalid-deadline",
            )
        return cls(expires_at=clock() + budget, budget=budget)

    def remaining(self, clock: Callable[[], float] = time.monotonic) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - clock()

    def check(self, stage: str, clock: Callable[[], float] = time.monotonic) -> None:
        """Refuse (504) when the budget is spent.

        ``stage`` names where the budget died (``queued``, ``fit``,
        ``score`` ...) so clients and traces can tell admission latency
        from compute latency.
        """
        if self.remaining(clock) <= 0:
            telemetry.count("serve.deadline.exceeded")
            raise ScoreRefusal(
                f"deadline of {self.budget:.3f}s exceeded at stage "
                f"{stage!r}",
                status=504,
                reason="deadline-exceeded",
            )


@dataclass(frozen=True)
class AdmissionPolicy:
    """Serving limits for one service instance."""

    queue_depth: int = 16
    default_budget: float = 5.0
    max_budget: float = 30.0
    breaker_failures: int = 5
    breaker_reset: float = 2.0
    retry_after_hint: float = 0.05

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if not 0 < self.default_budget <= self.max_budget:
            raise ValueError(
                "default_budget must satisfy 0 < default <= max, got "
                f"{self.default_budget} vs {self.max_budget}"
            )

    def budget_for(self, requested: float | None) -> float:
        """Clamp a client-requested budget into policy bounds."""
        if requested is None:
            return self.default_budget
        budget = float(requested)
        if budget <= 0:
            raise ScoreRefusal(
                f"requested budget must be > 0, got {budget}",
                status=422,
                reason="invalid-deadline",
            )
        return min(budget, self.max_budget)


class _Job:
    """One queued unit of work and the future its submitter awaits."""

    __slots__ = ("thunk", "deadline", "future", "enqueued_at")

    def __init__(
        self,
        thunk: Callable[[], Awaitable[object]],
        deadline: Deadline,
        future: asyncio.Future,
        enqueued_at: float,
    ) -> None:
        self.thunk = thunk
        self.deadline = deadline
        self.future = future
        self.enqueued_at = enqueued_at


class TenantLane:
    """Bounded single-worker execution lane for one tenant.

    The bulkhead: all of a tenant's requests serialise through this
    lane, so per-tenant state needs no locks and one tenant's overload
    surfaces as *its* 429s, not everyone's latency.

    Args:
        name: tenant id, for telemetry and advisories.
        queue_depth: bounded queue size; a full queue refuses (429).
        retry_after_hint: ``Retry-After`` seconds suggested on 429.
    """

    def __init__(
        self,
        name: str,
        queue_depth: int = 16,
        retry_after_hint: float = 0.05,
    ) -> None:
        self.name = name
        self._queue: asyncio.Queue[_Job | None] = asyncio.Queue(
            maxsize=queue_depth
        )
        self._retry_after = retry_after_hint
        self._supervisor: asyncio.Task | None = None
        self._draining = False
        self.restarts = 0
        self.completed = 0

    def _ensure_running(self) -> None:
        if self._supervisor is None or self._supervisor.done():
            self._supervisor = asyncio.get_running_loop().create_task(
                self._supervise(), name=f"lane-{self.name}"
            )

    async def submit(
        self, thunk: Callable[[], Awaitable[object]], deadline: Deadline
    ) -> object:
        """Run ``thunk`` on the lane worker; returns its result.

        Raises:
            ScoreRefusal: 429 when the queue is full, 503 while
                draining, or whatever refusal the job itself raised.
        """
        if self._draining:
            raise ScoreRefusal(
                f"lane {self.name!r} is draining",
                status=503,
                reason="draining",
                retry_after=1.0,
            )
        self._ensure_running()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        job = _Job(thunk, deadline, future, loop.time())
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            telemetry.count("serve.admission.rejected")
            raise ScoreRefusal(
                f"tenant {self.name!r} queue is full "
                f"({self._queue.maxsize} deep)",
                status=429,
                reason="queue-full",
                retry_after=self._retry_after,
            ) from None
        return await future

    async def _supervise(self) -> None:
        """Run the worker loop, restarting it if a job escapes it.

        A job exception that is not a :class:`ScoreRefusal` means the
        worker itself was compromised (the chaos worker-crash fault
        models exactly this): the in-flight job is failed with a
        retryable 503 and a fresh worker picks up the queue.
        """
        while True:
            try:
                await self._work()
                return  # drained and closed cleanly
            except asyncio.CancelledError:
                raise
            except BaseException:
                self.restarts += 1
                telemetry.count("serve.lane.restart")

    async def _work(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            if job.future.cancelled():
                continue
            telemetry.observe(
                "serve.lane.wait_us",
                (asyncio.get_running_loop().time() - job.enqueued_at) * 1e6,
            )
            try:
                job.deadline.check("queued")
                result = await job.thunk()
            except ScoreRefusal as refusal:
                job.future.set_exception(refusal)
            except asyncio.CancelledError:
                job.future.cancel()
                raise
            except BaseException as error:
                # Worker compromised: fail the job retryably, then let
                # the supervisor restart the worker.
                job.future.set_exception(
                    ScoreRefusal(
                        f"lane worker for {self.name!r} crashed: "
                        f"{type(error).__name__}: {error}",
                        status=503,
                        reason="worker-crash",
                        retry_after=self._retry_after,
                    )
                )
                raise
            else:
                self.completed += 1
                job.future.set_result(result)

    async def drain(self) -> None:
        """Stop admitting, finish queued jobs, stop the worker."""
        if self._draining:
            return
        self._draining = True
        if self._supervisor is None or self._supervisor.done():
            return
        await self._queue.put(None)
        await self._supervisor

    def snapshot(self) -> dict:
        """State for the stats endpoint."""
        return {
            "queued": self._queue.qsize(),
            "depth": self._queue.maxsize,
            "completed": self.completed,
            "restarts": self.restarts,
            "draining": self._draining,
        }
