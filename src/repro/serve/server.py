"""Asyncio multi-tenant scoring server (stdlib only, no frameworks).

A deliberately small HTTP/1.1 server over ``asyncio`` streams — the
repository takes no web-framework dependency for the same reason it
takes no others: the serving layer must be auditable end to end.

Request path for tenant operations::

    HTTP parse → route → breaker.admit → lane.submit   (429 when full)
      lane worker: deadline check → chaos hooks →
        train: validate → WAL append → snapshot            (executor)
        score: hand off to the batch scheduler → fused
               kernel call on the worker pool               (batcher)

NumPy work runs off the event loop — train jobs on a thread-pool
executor, score jobs through the cross-tenant micro-batcher
(:mod:`repro.serve.batching`), which fuses queued jobs from many
lanes into one kernel call per (family, window, alphabet) group.
Per-tenant order is still serial because each lane awaits its job's
batched outcome before taking the next.

Connections are **keep-alive** by default (HTTP/1.1): a client may
pipeline any number of requests over one connection; the server
closes on ``Connection: close``, on any error status, or after
``keepalive_timeout`` idle seconds.  Reuses are counted in telemetry
(``serve.http.keepalive_reuse``).

Endpoints::

    GET  /healthz                      liveness (always 200)
    GET  /readyz                       readiness (503 until recovered,
                                       and again after /drain)
    POST /drain                        stop admitting, finish queues
    GET  /v1/stats                     lanes, breakers, chaos, recovery
    GET  /v1/tenants/<id>              tenant metadata + state digest
    POST /v1/tenants/<id>/train        append training events
    POST /v1/tenants/<id>/score        score a test stream

Every refusal is an explicit JSON advisory ``{"error", "reason",
"retry_after"}`` with the matching HTTP status (422 invalid input, 429
queue full, 503 breaker/drain/crash, 504 deadline), so a client can
always distinguish "retry later" from "your request is wrong" — and
no response body ever carries a score the pipeline did not compute.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict

from repro.exceptions import ScoreRefusal
from repro.runtime import telemetry
from repro.runtime.shardstore import ShardedStore
from repro.serve.admission import AdmissionPolicy, Deadline, TenantLane
from repro.serve.batching import BatchPolicy, BatchScheduler, ScoreJob
from repro.serve.breaker import CircuitBreaker
from repro.serve.chaos import ChaosDirector
from repro.serve.pipeline import ScorePipeline
from repro.serve.tenants import RecoveryReport, TenantStateStore

#: Largest request body accepted, in bytes (arrays of ~1e6 events).
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Refusal reasons that indicate the *tenant's pipeline* is unhealthy
#: (they advance its circuit breaker); admission refusals do not.
_BREAKER_REASONS = frozenset({"ladder-exhausted", "worker-crash"})


class ScoringServer:
    """One service instance: tenants, lanes, breakers, HTTP front end.

    Args:
        root: state directory (WALs, manifests, snapshot store).
        host: bind address.
        port: bind port (0 picks a free one; see :attr:`port`).
        policy: admission limits; defaults to :class:`AdmissionPolicy`.
        chaos: fault director; ``None`` serves faithfully.
        retries: per-request full-ladder retry budget
            (``--retries`` semantics).
        snapshot_every: tenant snapshot cadence (0 disables).
        fsync: fsync WAL appends (power-loss durability).
        executor_workers: train-job thread-pool size.
        models: optional tiered fleet model store (hot LRU → mmap
            shards → cold); enables delta-fits on ingest.
        delta_verify_every: delta-fit verify cadence (0 disables).
        batching: micro-batcher knobs (``--batch-max``,
            ``--batch-wait-us``, ``--score-workers``); defaults to
            :class:`~repro.serve.batching.BatchPolicy`.
        keepalive_timeout: idle seconds before a kept-alive
            connection is closed.
    """

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: AdmissionPolicy | None = None,
        chaos: ChaosDirector | None = None,
        retries: int = 1,
        snapshot_every: int = 8,
        fsync: bool = False,
        executor_workers: int = 4,
        models: ShardedStore | None = None,
        delta_verify_every: int = 0,
        batching: BatchPolicy | None = None,
        keepalive_timeout: float = 30.0,
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.chaos = chaos if chaos is not None else ChaosDirector()
        self.tenants = TenantStateStore(
            root,
            snapshot_every=snapshot_every,
            fsync=fsync,
            models=models,
            delta_verify_every=delta_verify_every,
        )
        self.pipeline = ScorePipeline(self.tenants, retries=retries)
        self.batcher = BatchScheduler(
            self.pipeline,
            self.chaos,
            policy=batching if batching is not None else BatchPolicy(),
        )
        self.recovery: RecoveryReport | None = None
        self._host = host
        self._port = port
        self._server: asyncio.Server | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="serve-score"
        )
        self._lanes: dict[str, TenantLane] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._connections: set[asyncio.StreamWriter] = set()
        self._keepalive_timeout = float(keepalive_timeout)
        self._draining = False
        self.requests = 0
        self.refusals: dict[int, int] = {}
        self.keepalive_reuses = 0

    # -- lifecycle --------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    @property
    def ready(self) -> bool:
        """Whether the server admits traffic."""
        return (
            self._server is not None
            and self.recovery is not None
            and not self._draining
        )

    async def start(self) -> None:
        """Recover persisted tenants, then bind and listen."""
        with telemetry.span("serve", "recover"):
            self.recovery = self.tenants.recover_all(
                store_faulty=self.chaos.store_read_faulty("recover")
            )
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def drain(self) -> dict:
        """Stop admitting, let every lane finish its queue."""
        self._draining = True
        for lane in self._lanes.values():
            await lane.drain()
        telemetry.count("serve.drained")
        return {
            "drained": True,
            "lanes": {
                name: lane.snapshot() for name, lane in self._lanes.items()
            },
        }

    async def stop(self) -> None:
        """Drain, close the listener and connections, release pools."""
        if not self._draining:
            await self.drain()
        await self.batcher.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in tuple(self._connections):
            try:
                writer.close()
            except Exception:
                pass
        self._executor.shutdown(wait=True, cancel_futures=True)

    async def serve_forever(self) -> None:
        """Block until cancelled (used by ``repro serve``)."""
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- per-tenant plumbing ----------------------------------------------

    def _lane(self, tenant_id: str) -> TenantLane:
        lane = self._lanes.get(tenant_id)
        if lane is None:
            lane = TenantLane(
                tenant_id,
                queue_depth=self.policy.queue_depth,
                retry_after_hint=self.policy.retry_after_hint,
            )
            self._lanes[tenant_id] = lane
        return lane

    def _breaker(self, tenant_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(tenant_id)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.policy.breaker_failures,
                reset_timeout=self.policy.breaker_reset,
                name=tenant_id,
            )
            self._breakers[tenant_id] = breaker
        return breaker

    # -- request handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection, keeping it alive across requests.

        The loop ends when the client closes, sends ``Connection:
        close``, idles past the keep-alive timeout, or triggers any
        error status (a connection whose framing may be corrupt is
        never reused).
        """
        self._connections.add(writer)
        served = 0
        try:
            while True:
                close_after = True
                try:
                    request = await self._read_request(
                        reader, idle_timeout=(
                            self._keepalive_timeout if served else None
                        )
                    )
                    if request is None:  # clean EOF / idle timeout
                        break
                    method, path, body, want_close = request
                    if served:
                        self.keepalive_reuses += 1
                        telemetry.count("serve.http.keepalive_reuse")
                    try:
                        status, payload = await self._respond(
                            method, path, body
                        )
                        close_after = want_close
                    except ScoreRefusal as refusal:
                        status, payload = self._refusal_payload(refusal)
                except ScoreRefusal as refusal:  # malformed framing
                    status, payload = self._refusal_payload(refusal)
                except Exception as error:  # never leak a hang
                    status = 500
                    payload = {"error": f"{type(error).__name__}: {error}"}
                    telemetry.count("serve.http.error")
                if status >= 400:
                    self.refusals[status] = self.refusals.get(status, 0) + 1
                    close_after = True
                served += 1
                body_bytes = json.dumps(payload).encode("utf-8")
                headers = [
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                    "Content-Type: application/json",
                    f"Content-Length: {len(body_bytes)}",
                    "Connection: "
                    + ("close" if close_after else "keep-alive"),
                ]
                retry_after = payload.get("retry_after")
                if retry_after:
                    headers.append(f"Retry-After: {retry_after}")
                writer.write(
                    ("\r\n".join(headers) + "\r\n\r\n").encode("ascii")
                    + body_bytes
                )
                await writer.drain()
                if close_after:
                    break
        except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    @staticmethod
    def _refusal_payload(refusal: ScoreRefusal) -> tuple[int, dict]:
        payload: dict = {
            "error": str(refusal),
            "reason": refusal.reason,
            "retryable": refusal.retryable,
        }
        if refusal.retry_after is not None:
            payload["retry_after"] = refusal.retry_after
        return refusal.status, payload

    async def _respond(
        self, method: str, path: str, body: dict
    ) -> tuple[int, dict]:
        self.requests += 1
        telemetry.count("serve.http.request")

        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok"}
        if path == "/readyz" and method == "GET":
            if self.ready:
                return 200, {"ready": True}
            return 503, {"ready": False, "reason": "draining" if self._draining else "recovering"}
        if path == "/drain" and method == "POST":
            return 200, await self.drain()
        if path == "/v1/stats" and method == "GET":
            return 200, self._stats()

        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "tenants":
            if len(parts) == 3 and method == "GET":
                return self._tenant_info(parts[2])
            if len(parts) == 4 and method == "POST":
                tenant_id, op = parts[2], parts[3]
                if op in ("train", "score"):
                    return await self._tenant_op(tenant_id, op, body)
        return 404, {"error": f"no route for {method} {path}"}

    async def _read_request(
        self,
        reader: asyncio.StreamReader,
        idle_timeout: float | None = None,
    ) -> tuple[str, str, dict, bool] | None:
        """Parse one request; ``None`` on clean EOF or idle timeout.

        Returns ``(method, path, body, want_close)`` where
        ``want_close`` reflects the client's ``Connection`` header.
        """
        try:
            if idle_timeout is not None:
                try:
                    request_line = await asyncio.wait_for(
                        reader.readline(), idle_timeout
                    )
                except asyncio.TimeoutError:
                    return None
            else:
                request_line = await reader.readline()
            if not request_line:
                return None
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                raise ScoreRefusal(
                    "malformed request line", status=400, reason="bad-request"
                )
            method, path = parts[0].upper(), parts[1]
            content_length = 0
            want_close = False
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                header = name.strip().lower()
                if header == "content-length":
                    content_length = int(value.strip())
                elif header == "connection":
                    want_close = "close" in value.strip().lower()
            if content_length > MAX_BODY_BYTES:
                raise ScoreRefusal(
                    f"body of {content_length} bytes exceeds "
                    f"{MAX_BODY_BYTES}",
                    status=413,
                    reason="payload-too-large",
                )
            raw = (
                await reader.readexactly(content_length)
                if content_length
                else b""
            )
        except (asyncio.IncompleteReadError, ValueError) as error:
            raise ScoreRefusal(
                f"malformed request: {error}", status=400, reason="bad-request"
            ) from None
        if not raw:
            return method, path, {}, want_close
        try:
            body = json.loads(raw)
        except ValueError as error:
            raise ScoreRefusal(
                f"body is not valid JSON: {error}",
                status=400,
                reason="bad-request",
            ) from None
        if not isinstance(body, dict):
            raise ScoreRefusal(
                "body must be a JSON object", status=400, reason="bad-request"
            )
        return method, path, body, want_close

    # -- tenant endpoints -------------------------------------------------

    def _tenant_info(self, tenant_id: str) -> tuple[int, dict]:
        state = self.tenants.get(tenant_id)
        return 200, {
            "tenant": state.tenant_id,
            "alphabet_size": state.alphabet_size,
            "seq": state.seq,
            "events": state.event_count,
            "digest": state.digest(),
        }

    async def _tenant_op(
        self, tenant_id: str, op: str, body: dict
    ) -> tuple[int, dict]:
        if self._draining:
            raise ScoreRefusal(
                "server is draining", status=503, reason="draining",
                retry_after=1.0,
            )
        breaker = self._breaker(tenant_id)
        breaker.admit()
        request_id = str(body.get("request_id", f"{op}-{self.requests}"))
        attempt = int(body.get("attempt", 1))
        key = f"{tenant_id}|{op}|{request_id}"
        budget = self.policy.budget_for(body.get("budget"))
        deadline = Deadline.after(budget)
        lane = self._lane(tenant_id)

        async def job() -> dict:
            await self.chaos.maybe_latency(key, attempt)
            self.chaos.maybe_worker_crash(key, attempt)
            if op == "train":
                work = self._train_job(tenant_id, body, key, attempt, deadline)
                return await asyncio.get_running_loop().run_in_executor(
                    self._executor, work
                )
            return await self._score_via_batcher(
                tenant_id, body, key, attempt, deadline
            )

        try:
            result = await lane.submit(job, deadline)
        except ScoreRefusal as refusal:
            if refusal.reason in _BREAKER_REASONS:
                breaker.record_failure()
            raise
        breaker.record_success()
        assert isinstance(result, dict)
        return 200, result

    def _train_job(
        self,
        tenant_id: str,
        body: dict,
        key: str,
        attempt: int,
        deadline: Deadline,
    ):
        def work() -> dict:
            deadline.check("train")
            state = self.tenants.open(tenant_id, body.get("alphabet_size"))
            events = self.chaos.maybe_corrupt_events(
                self.tenants.validate_events(
                    body.get("events"), state.alphabet_size
                ),
                state.alphabet_size,
                key,
                attempt,
            )
            # Re-validate: a chaos-poisoned payload must be *caught*,
            # never journaled — this pair of calls is the invariant.
            events = self.tenants.validate_events(events, state.alphabet_size)
            seq = self.tenants.ingest(state, events)
            return {
                "tenant": tenant_id,
                "seq": seq,
                "events": state.event_count,
                "digest": state.digest(),
            }

        return work

    async def _score_via_batcher(
        self,
        tenant_id: str,
        body: dict,
        key: str,
        attempt: int,
        deadline: Deadline,
    ) -> dict:
        """Hand one score request to the micro-batch scheduler.

        Runs inside the tenant's lane worker, so awaiting the batched
        outcome keeps per-tenant ordering intact.  Validation that
        does not need tenant state happens here, on the event loop;
        everything stateful resolves in the batch worker.
        """
        family = str(body.get("family", "stide"))
        try:
            window = int(body.get("window", 0))
        except (TypeError, ValueError):
            raise ScoreRefusal(
                f"window must be an integer, got {body.get('window')!r}",
                status=422,
                reason="invalid-window",
            ) from None
        if window < 1:
            raise ScoreRefusal(
                f"window must be >= 1, got {window}",
                status=422,
                reason="invalid-window",
            )
        loop = asyncio.get_running_loop()
        job = ScoreJob(
            tenant_id=tenant_id,
            family=family,
            window=window,
            alphabet_size=self.tenants.peek_alphabet(tenant_id),
            events=body.get("events"),
            key=key,
            attempt=attempt,
            deadline=deadline,
            future=loop.create_future(),
            enqueued_at=loop.time(),
        )
        outcome = await self.batcher.submit(job)
        return {
            "tenant": tenant_id,
            "family": outcome.family,
            "window": outcome.window,
            "tier": outcome.tier,
            "attempts": outcome.attempts,
            "elapsed": round(outcome.elapsed, 6),
            "scores": list(outcome.scores),
        }

    # -- stats ------------------------------------------------------------

    def _stats(self) -> dict:
        return {
            "ready": self.ready,
            "requests": self.requests,
            "refusals": {str(k): v for k, v in sorted(self.refusals.items())},
            "tenants": {
                tid: {
                    "seq": state.seq,
                    "events": state.event_count,
                    "quarantined": state.quarantined,
                }
                for tid, state in sorted(self.tenants.tenants.items())
            },
            "lanes": {
                name: lane.snapshot()
                for name, lane in sorted(self._lanes.items())
            },
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            },
            "chaos": dict(self.chaos.injected),
            "recovery": asdict(self.recovery) if self.recovery else None,
            "memory": self.tenants.memory_stats(),
            "batch": self.batcher.snapshot(),
            "http": {
                "keepalive_reuses": self.keepalive_reuses,
                "open_connections": len(self._connections),
            },
        }
