"""Fault-hardened online scoring service for the detector registry.

The serving layer of the repository: a zero-dependency asyncio HTTP
server that exposes the paper's detector families as a multi-tenant
scoring API, engineered around one invariant — **no wrong score,
ever**.  Every failure mode (overload, slow tenants, crashed workers,
poisoned payloads, torn state after a kill) resolves to an explicit
refusal or a bit-identical recovery, never a silently degraded score.

Modules:

* :mod:`repro.serve.wal` — per-tenant write-ahead log + snapshots
* :mod:`repro.serve.tenants` — tenant state store and recovery
* :mod:`repro.serve.breaker` — three-state circuit breaker
* :mod:`repro.serve.admission` — deadlines, bounded queues, bulkheads
* :mod:`repro.serve.pipeline` — kernel-tier degradation ladder
* :mod:`repro.serve.batching` — cross-tenant micro-batch scheduler
* :mod:`repro.serve.chaos` — seeded serving fault injection
* :mod:`repro.serve.server` — the asyncio HTTP front end
* :mod:`repro.serve.loadgen` — load generator / exactness verifier
"""

from repro.serve.admission import AdmissionPolicy, Deadline, TenantLane
from repro.serve.batching import (
    BatchPolicy,
    BatchScheduler,
    ScoreJob,
    ScoreWorkerPool,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.chaos import SERVE_FAULT_KINDS, ChaosDirector, ServeFaultSchedule
from repro.serve.loadgen import LoadGenerator, LoadPlan, LoadReport, run_load
from repro.serve.pipeline import ScoreOutcome, ScorePipeline
from repro.serve.server import ScoringServer
from repro.serve.tenants import (
    RecoveryReport,
    TenantState,
    TenantStateStore,
)
from repro.serve.wal import RecoveredState, TenantJournal, snapshot_key

__all__ = [
    "SERVE_FAULT_KINDS",
    "AdmissionPolicy",
    "BatchPolicy",
    "BatchScheduler",
    "ChaosDirector",
    "CircuitBreaker",
    "Deadline",
    "LoadGenerator",
    "LoadPlan",
    "LoadReport",
    "RecoveredState",
    "RecoveryReport",
    "ScoreJob",
    "ScoreOutcome",
    "ScorePipeline",
    "ScoreWorkerPool",
    "ScoringServer",
    "ServeFaultSchedule",
    "TenantJournal",
    "TenantLane",
    "TenantState",
    "TenantStateStore",
    "run_load",
    "snapshot_key",
]
