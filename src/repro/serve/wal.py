"""Crash-safe tenant persistence: write-ahead log + snapshots.

Every mutation of a tenant's normal database is appended to a JSONL
write-ahead log *before* it is acknowledged, and the accumulated
training stream is periodically snapshotted into the content-addressed
:class:`~repro.runtime.store.ArtifactStore`.  Recovery after a
crash-kill is therefore mechanical and bit-exact:

1. read the manifest (written atomically, so it is never torn);
2. load the newest snapshot the manifest points at (or start empty);
3. replay the WAL records with ``seq`` beyond the snapshot.

**WAL format.**  One JSON object per line::

    {"seq": 4, "events": [3, 1, 4, 1, 5]}

``seq`` starts at 1 and is strictly contiguous; a gap means the log
was damaged by something other than a torn append and the tenant is
quarantined (:class:`~repro.exceptions.TenantRecoveryError`) instead
of being served from guessable state.  A *final* line truncated
mid-record — the only damage a SIGKILL during an append can produce —
is tolerated: the tail is skipped and counted under the
``serve.wal.torn_tail`` telemetry counter, exactly the guard the sweep
checkpoint reader uses (:func:`repro.io.read_jsonl_tolerant`).  The
lost record was never acknowledged, so dropping it is correct.

**Segments.**  The active log rotates once it reaches
``segment_bytes``: the file is atomically renamed to
``wal-<last seq>.jsonl`` (the embedded sequence number orders the
segments) and appends continue into a fresh active file.  Rotated
segments are immutable, so any parse failure inside one — torn tail
included — is damage, not a crash artifact, and quarantines the
tenant.  :meth:`TenantJournal.prune_segments` unlinks segments whose
records are *fully* covered by a verified snapshot; a partially
covered segment is left in place (its already-snapshotted records are
filtered by sequence at recovery), so a crash between prune and
rewrite can never lose acknowledged state — and a gap created by
losing a middle segment still trips the contiguity check.

**Snapshots.**  A snapshot is the tenant's exact ``int64`` event
array, stored under a content-addressed key (tenant id, sequence
number, stream digest, schema version).  The manifest records the key
and the sequence it covers.  Snapshots are an optimization — the WAL
is retained in full by default, so a missing or corrupt snapshot
(store eviction, injected store-read fault) degrades to a full-log
replay, never to wrong state.  Only :meth:`TenantJournal.compact`
trades that redundancy away, and recovery refuses loudly when the
trade went bad.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import TenantRecoveryError
from repro.io import read_jsonl_tolerant
from repro.runtime import telemetry
from repro.runtime.store import ArtifactStore, stream_digest

#: Bump when the WAL line or manifest layout changes; old state
#: becomes unreadable-by-schema rather than misread.
WAL_SCHEMA_VERSION = 1

#: Telemetry counter charged when a torn WAL tail is skipped.
TORN_TAIL_COUNTER = "serve.wal.torn_tail"

#: Default active-log size that triggers a segment rotation.
DEFAULT_SEGMENT_BYTES = 1 << 20

#: Rotated segment file names embed the last sequence they contain.
_SEGMENT_RE = re.compile(r"wal-(\d+)\.jsonl")


def _segment_last_seq(path: Path) -> int | None:
    """The last sequence number embedded in a segment file name."""
    match = _SEGMENT_RE.fullmatch(path.name)
    return int(match.group(1)) if match else None


def snapshot_key(tenant_id: str, seq: int, digest: str) -> str:
    """Content address of one tenant snapshot in the artifact store."""
    recipe = (
        f"repro-serve-snapshot/{WAL_SCHEMA_VERSION}\n"
        f"tenant={tenant_id}\n"
        f"seq={seq}\n"
        f"stream={digest}\n"
    )
    return hashlib.sha256(recipe.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RecoveredState:
    """What :meth:`TenantJournal.recover` reconstructed.

    Attributes:
        events: the tenant's full training stream, bit-identical to
            the acknowledged pre-crash state.
        seq: the sequence number of the last applied record.
        alphabet_size: the tenant's declared alphabet.
        from_snapshot: whether a snapshot seeded the replay (``False``
            means a full-log replay, e.g. after a store-read failure).
        replayed_records: WAL records applied on top of the seed.
    """

    events: np.ndarray
    seq: int
    alphabet_size: int
    from_snapshot: bool
    replayed_records: int


class TenantJournal:
    """WAL + manifest for one tenant directory.

    Layout::

        <directory>/wal.jsonl             active append-only log
        <directory>/wal-<last seq>.jsonl  immutable rotated segments
        <directory>/manifest.json         atomically-replaced metadata

    Args:
        directory: the tenant's state directory; created on first use.
        fsync: whether appends fsync before acknowledging.  ``False``
            (the default) still survives process SIGKILL — the bytes
            are in the page cache — and only trades away power-loss
            durability for an order of magnitude in append latency.
        segment_bytes: active-log size that triggers a rotation
            (0 disables rotation; the log grows as one file).
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: bool = False,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        self._directory = Path(directory)
        self._fsync = fsync
        self._segment_bytes = int(segment_bytes)

    @property
    def directory(self) -> Path:
        """The tenant state directory."""
        return self._directory

    @property
    def wal_path(self) -> Path:
        """The write-ahead log file."""
        return self._directory / "wal.jsonl"

    @property
    def manifest_path(self) -> Path:
        """The manifest file."""
        return self._directory / "manifest.json"

    def segment_paths(self) -> list[Path]:
        """Rotated WAL segments, oldest first (by embedded last seq)."""
        if not self._directory.is_dir():
            return []
        found = []
        for path in self._directory.glob("wal-*.jsonl"):
            last_seq = _segment_last_seq(path)
            if last_seq is not None:
                found.append((last_seq, path))
        found.sort()
        return [path for _seq, path in found]

    # -- manifest ---------------------------------------------------------

    def read_manifest(self) -> dict | None:
        """The manifest, or ``None`` for a brand-new tenant.

        Raises:
            TenantRecoveryError: on an unreadable or wrong-schema
                manifest — it is written atomically, so damage here is
                not a crash artifact.
        """
        path = self.manifest_path
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise TenantRecoveryError(
                f"unreadable tenant manifest {path}: {error}"
            ) from error
        if manifest.get("schema") != WAL_SCHEMA_VERSION:
            raise TenantRecoveryError(
                f"tenant manifest {path} has schema "
                f"{manifest.get('schema')!r}, expected {WAL_SCHEMA_VERSION}"
            )
        return manifest

    def write_manifest(
        self,
        alphabet_size: int,
        snapshot_seq: int = 0,
        snapshot: str | None = None,
    ) -> None:
        """Atomically replace the manifest (temp file + ``os.replace``)."""
        manifest = {
            "schema": WAL_SCHEMA_VERSION,
            "alphabet_size": int(alphabet_size),
            "snapshot_seq": int(snapshot_seq),
            "snapshot": snapshot,
        }
        self._directory.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_name(
            f".manifest.{os.getpid()}.tmp"
        )
        tmp.write_text(
            json.dumps(manifest, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.manifest_path)

    # -- appends ----------------------------------------------------------

    def append(self, seq: int, events: np.ndarray) -> None:
        """Append one acknowledged ingest as a WAL record.

        One buffered write plus a flush: a kill mid-append tears at
        most this record, and a torn record is one that was never
        acknowledged.
        """
        self._directory.mkdir(parents=True, exist_ok=True)
        line = (
            json.dumps(
                {"seq": int(seq), "events": np.asarray(events).tolist()},
                sort_keys=True,
            )
            + "\n"
        )
        with self.wal_path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
            size = handle.tell()
        telemetry.count("serve.wal.append")
        if self._segment_bytes and size >= self._segment_bytes:
            os.replace(
                self.wal_path,
                self._directory / f"wal-{int(seq):012d}.jsonl",
            )
            telemetry.count("serve.wal.rotate")

    # -- recovery ---------------------------------------------------------

    @staticmethod
    def _parse_records(
        path: Path, lines: list[tuple[int, dict]]
    ) -> list[tuple[int, np.ndarray]]:
        """Decode ``(line number, json object)`` pairs into WAL records."""
        records: list[tuple[int, np.ndarray]] = []
        for line_number, record in lines:
            try:
                seq = int(record["seq"])
                events = np.asarray(record["events"], dtype=np.int64)
            except (KeyError, TypeError, ValueError) as error:
                raise TenantRecoveryError(
                    f"{path}:{line_number}: malformed WAL record: {error}"
                ) from error
            records.append((seq, events))
        return records

    def _segment_records(self) -> list[tuple[int, np.ndarray]]:
        """Records from every rotated segment, oldest segment first.

        Rotated segments are immutable — an append can only tear the
        *active* file — so any damage here, torn tail included, is
        unexplainable by a crash and quarantines the tenant.
        """
        records: list[tuple[int, np.ndarray]] = []
        for segment in self.segment_paths():
            try:
                text = segment.read_text(encoding="utf-8")
                lines = [
                    (number, json.loads(line))
                    for number, line in enumerate(text.splitlines(), start=1)
                    if line.strip()
                ]
            except (OSError, ValueError) as error:
                raise TenantRecoveryError(
                    f"rotated WAL segment {segment} is damaged: {error}"
                ) from error
            records.extend(self._parse_records(segment, lines))
        return records

    def _active_records(self) -> list[tuple[int, np.ndarray]]:
        """Records from the active log (torn final line tolerated)."""
        if not self.wal_path.exists():
            return []
        try:
            lines = read_jsonl_tolerant(
                self.wal_path, strict=True, torn_tail_counter=TORN_TAIL_COUNTER
            )
        except Exception as error:
            raise TenantRecoveryError(
                f"write-ahead log {self.wal_path} is damaged beyond a "
                f"torn tail: {error}"
            ) from error
        return self._parse_records(self.wal_path, lines)

    def read_records(self) -> list[tuple[int, np.ndarray]]:
        """Every intact WAL record as ``(seq, events)``, in file order.

        Rotated segments are read first (strictly — see
        :meth:`_segment_records`), then the active log, whose torn
        final line is the one crash artifact tolerated and counted.

        Raises:
            TenantRecoveryError: on mid-file damage, a malformed
                record body, or any damage inside a rotated segment.
        """
        return self._segment_records() + self._active_records()

    def recover(
        self, store: ArtifactStore | None, store_faulty: bool = False
    ) -> RecoveredState | None:
        """Reconstruct the tenant's state from disk, bit-exactly.

        Args:
            store: the snapshot store (``None`` disables snapshots).
            store_faulty: chaos hook — treat the snapshot read as
                failed, exercising the full-log fallback.

        Returns:
            ``None`` for a directory with neither manifest nor WAL
            (a tenant that never existed).

        Raises:
            TenantRecoveryError: when the surviving state cannot be
                reconstructed faithfully (damaged log, sequence gap,
                or a compacted log whose snapshot is gone).
        """
        manifest = self.read_manifest()
        if manifest is None:
            if self.wal_path.exists() or self.segment_paths():
                raise TenantRecoveryError(
                    f"write-ahead log {self.wal_path} exists without a "
                    "manifest"
                )
            return None
        alphabet_size = int(manifest["alphabet_size"])
        records = self.read_records()

        seed = np.empty(0, dtype=np.int64)
        seed_seq = 0
        from_snapshot = False
        key = manifest.get("snapshot")
        if key is not None and store is not None and not store_faulty:
            held = store.get(str(key), kind="snapshot")
            if held is not None and "events" in held:
                seed = np.asarray(held["events"], dtype=np.int64)
                seed_seq = int(manifest["snapshot_seq"])
                from_snapshot = True
                telemetry.count("serve.snapshot.hit")
        if key is not None and not from_snapshot:
            telemetry.count("serve.snapshot.miss")
            # Fall back to a full-log replay; only legal when the log
            # still reaches back to seq 1.
            first_seq = records[0][0] if records else None
            if first_seq != 1 and int(manifest["snapshot_seq"]) > 0:
                raise TenantRecoveryError(
                    f"snapshot {key} is unreadable and the write-ahead "
                    f"log was compacted past seq 1 (starts at "
                    f"{first_seq}); refusing to serve guessed state"
                )

        tail = [(seq, events) for seq, events in records if seq > seed_seq]
        expected = seed_seq
        chunks = [seed]
        for seq, events in tail:
            expected += 1
            if seq != expected:
                raise TenantRecoveryError(
                    f"write-ahead log {self.wal_path} has a sequence "
                    f"gap: expected {expected}, found {seq}"
                )
            chunks.append(events)
        events = np.concatenate(chunks) if len(chunks) > 1 else seed
        return RecoveredState(
            events=events,
            seq=expected,
            alphabet_size=alphabet_size,
            from_snapshot=from_snapshot,
            replayed_records=len(tail),
        )

    # -- snapshots --------------------------------------------------------

    def snapshot(
        self,
        tenant_id: str,
        seq: int,
        events: np.ndarray,
        alphabet_size: int,
        store: ArtifactStore | None,
    ) -> str | None:
        """Persist a snapshot and point the manifest at it.

        A failed store put is invisible (the store swallows it and the
        next recovery replays the full log); the manifest is only
        advanced when the entry is readable.

        Returns:
            The snapshot key, or ``None`` when no store is attached.
        """
        if store is None:
            return None
        data = np.ascontiguousarray(np.asarray(events, dtype=np.int64))
        key = snapshot_key(tenant_id, seq, stream_digest(data))
        with telemetry.span("serve", "snapshot", tenant=tenant_id, seq=seq):
            store.put(key, {"events": data})
            if store.get(key, kind="snapshot") is None:
                return None  # put failed; keep the previous manifest
            self.write_manifest(
                alphabet_size, snapshot_seq=seq, snapshot=key
            )
        telemetry.count("serve.snapshot.put")
        return key

    def prune_segments(self, upto_seq: int) -> int:
        """Unlink rotated segments fully covered by a verified snapshot.

        A segment whose embedded last sequence exceeds ``upto_seq``
        still holds acknowledged records the snapshot does not cover,
        so it is left in place — its covered prefix is filtered by
        sequence at recovery.  Returns the number of segments removed.
        """
        pruned = 0
        for segment in self.segment_paths():
            last_seq = _segment_last_seq(segment)
            if last_seq is None or last_seq > upto_seq:
                continue
            try:
                segment.unlink()
            except OSError:
                continue
            pruned += 1
        if pruned:
            telemetry.count("serve.wal.prune", pruned)
        return pruned

    def compact(self, upto_seq: int) -> int:
        """Drop WAL records covered by a snapshot; returns lines kept.

        Fully covered rotated segments are pruned, and the *active*
        log is atomically rewritten (temp file + replace) keeping only
        records past ``upto_seq``; the return value counts the lines
        kept in the active log.  Only call with ``upto_seq`` of a
        *verified* snapshot: after compaction, losing that snapshot
        makes the tenant unrecoverable by design (and recovery will
        say so rather than guess).
        """
        self.prune_segments(upto_seq)
        records = self._active_records()
        kept = [(seq, events) for seq, events in records if seq > upto_seq]
        tmp = self.wal_path.with_name(f".wal.{os.getpid()}.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for seq, events in kept:
                handle.write(
                    json.dumps(
                        {"seq": seq, "events": events.tolist()},
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.wal_path)
        telemetry.count("serve.wal.compact")
        return len(kept)
