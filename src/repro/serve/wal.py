"""Crash-safe tenant persistence: write-ahead log + snapshots.

Every mutation of a tenant's normal database is appended to a JSONL
write-ahead log *before* it is acknowledged, and the accumulated
training stream is periodically snapshotted into the content-addressed
:class:`~repro.runtime.store.ArtifactStore`.  Recovery after a
crash-kill is therefore mechanical and bit-exact:

1. read the manifest (written atomically, so it is never torn);
2. load the newest snapshot the manifest points at (or start empty);
3. replay the WAL records with ``seq`` beyond the snapshot.

**WAL format.**  One JSON object per line::

    {"seq": 4, "events": [3, 1, 4, 1, 5]}

``seq`` starts at 1 and is strictly contiguous; a gap means the log
was damaged by something other than a torn append and the tenant is
quarantined (:class:`~repro.exceptions.TenantRecoveryError`) instead
of being served from guessable state.  A *final* line truncated
mid-record — the only damage a SIGKILL during an append can produce —
is tolerated: the tail is skipped and counted under the
``serve.wal.torn_tail`` telemetry counter, exactly the guard the sweep
checkpoint reader uses (:func:`repro.io.read_jsonl_tolerant`).  The
lost record was never acknowledged, so dropping it is correct.

**Snapshots.**  A snapshot is the tenant's exact ``int64`` event
array, stored under a content-addressed key (tenant id, sequence
number, stream digest, schema version).  The manifest records the key
and the sequence it covers.  Snapshots are an optimization — the WAL
is retained in full by default, so a missing or corrupt snapshot
(store eviction, injected store-read fault) degrades to a full-log
replay, never to wrong state.  Only :meth:`TenantJournal.compact`
trades that redundancy away, and recovery refuses loudly when the
trade went bad.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import TenantRecoveryError
from repro.io import read_jsonl_tolerant
from repro.runtime import telemetry
from repro.runtime.store import ArtifactStore, stream_digest

#: Bump when the WAL line or manifest layout changes; old state
#: becomes unreadable-by-schema rather than misread.
WAL_SCHEMA_VERSION = 1

#: Telemetry counter charged when a torn WAL tail is skipped.
TORN_TAIL_COUNTER = "serve.wal.torn_tail"


def snapshot_key(tenant_id: str, seq: int, digest: str) -> str:
    """Content address of one tenant snapshot in the artifact store."""
    recipe = (
        f"repro-serve-snapshot/{WAL_SCHEMA_VERSION}\n"
        f"tenant={tenant_id}\n"
        f"seq={seq}\n"
        f"stream={digest}\n"
    )
    return hashlib.sha256(recipe.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RecoveredState:
    """What :meth:`TenantJournal.recover` reconstructed.

    Attributes:
        events: the tenant's full training stream, bit-identical to
            the acknowledged pre-crash state.
        seq: the sequence number of the last applied record.
        alphabet_size: the tenant's declared alphabet.
        from_snapshot: whether a snapshot seeded the replay (``False``
            means a full-log replay, e.g. after a store-read failure).
        replayed_records: WAL records applied on top of the seed.
    """

    events: np.ndarray
    seq: int
    alphabet_size: int
    from_snapshot: bool
    replayed_records: int


class TenantJournal:
    """WAL + manifest for one tenant directory.

    Layout::

        <directory>/wal.jsonl      append-only event log
        <directory>/manifest.json  atomically-replaced metadata

    Args:
        directory: the tenant's state directory; created on first use.
        fsync: whether appends fsync before acknowledging.  ``False``
            (the default) still survives process SIGKILL — the bytes
            are in the page cache — and only trades away power-loss
            durability for an order of magnitude in append latency.
    """

    def __init__(self, directory: str | Path, fsync: bool = False) -> None:
        self._directory = Path(directory)
        self._fsync = fsync

    @property
    def directory(self) -> Path:
        """The tenant state directory."""
        return self._directory

    @property
    def wal_path(self) -> Path:
        """The write-ahead log file."""
        return self._directory / "wal.jsonl"

    @property
    def manifest_path(self) -> Path:
        """The manifest file."""
        return self._directory / "manifest.json"

    # -- manifest ---------------------------------------------------------

    def read_manifest(self) -> dict | None:
        """The manifest, or ``None`` for a brand-new tenant.

        Raises:
            TenantRecoveryError: on an unreadable or wrong-schema
                manifest — it is written atomically, so damage here is
                not a crash artifact.
        """
        path = self.manifest_path
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise TenantRecoveryError(
                f"unreadable tenant manifest {path}: {error}"
            ) from error
        if manifest.get("schema") != WAL_SCHEMA_VERSION:
            raise TenantRecoveryError(
                f"tenant manifest {path} has schema "
                f"{manifest.get('schema')!r}, expected {WAL_SCHEMA_VERSION}"
            )
        return manifest

    def write_manifest(
        self,
        alphabet_size: int,
        snapshot_seq: int = 0,
        snapshot: str | None = None,
    ) -> None:
        """Atomically replace the manifest (temp file + ``os.replace``)."""
        manifest = {
            "schema": WAL_SCHEMA_VERSION,
            "alphabet_size": int(alphabet_size),
            "snapshot_seq": int(snapshot_seq),
            "snapshot": snapshot,
        }
        self._directory.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_name(
            f".manifest.{os.getpid()}.tmp"
        )
        tmp.write_text(
            json.dumps(manifest, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.manifest_path)

    # -- appends ----------------------------------------------------------

    def append(self, seq: int, events: np.ndarray) -> None:
        """Append one acknowledged ingest as a WAL record.

        One buffered write plus a flush: a kill mid-append tears at
        most this record, and a torn record is one that was never
        acknowledged.
        """
        self._directory.mkdir(parents=True, exist_ok=True)
        line = (
            json.dumps(
                {"seq": int(seq), "events": np.asarray(events).tolist()},
                sort_keys=True,
            )
            + "\n"
        )
        with self.wal_path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        telemetry.count("serve.wal.append")

    # -- recovery ---------------------------------------------------------

    def read_records(self) -> list[tuple[int, np.ndarray]]:
        """Every intact WAL record as ``(seq, events)``, in file order.

        Raises:
            TenantRecoveryError: on mid-file damage or a malformed
                record body (the torn-tail case is tolerated by the
                shared guard and merely counted).
        """
        if not self.wal_path.exists():
            return []
        try:
            lines = read_jsonl_tolerant(
                self.wal_path, strict=True, torn_tail_counter=TORN_TAIL_COUNTER
            )
        except Exception as error:
            raise TenantRecoveryError(
                f"write-ahead log {self.wal_path} is damaged beyond a "
                f"torn tail: {error}"
            ) from error
        records: list[tuple[int, np.ndarray]] = []
        for line_number, record in lines:
            try:
                seq = int(record["seq"])
                events = np.asarray(record["events"], dtype=np.int64)
            except (KeyError, TypeError, ValueError) as error:
                raise TenantRecoveryError(
                    f"{self.wal_path}:{line_number}: malformed WAL "
                    f"record: {error}"
                ) from error
            records.append((seq, events))
        return records

    def recover(
        self, store: ArtifactStore | None, store_faulty: bool = False
    ) -> RecoveredState | None:
        """Reconstruct the tenant's state from disk, bit-exactly.

        Args:
            store: the snapshot store (``None`` disables snapshots).
            store_faulty: chaos hook — treat the snapshot read as
                failed, exercising the full-log fallback.

        Returns:
            ``None`` for a directory with neither manifest nor WAL
            (a tenant that never existed).

        Raises:
            TenantRecoveryError: when the surviving state cannot be
                reconstructed faithfully (damaged log, sequence gap,
                or a compacted log whose snapshot is gone).
        """
        manifest = self.read_manifest()
        if manifest is None:
            if self.wal_path.exists():
                raise TenantRecoveryError(
                    f"write-ahead log {self.wal_path} exists without a "
                    "manifest"
                )
            return None
        alphabet_size = int(manifest["alphabet_size"])
        records = self.read_records()

        seed = np.empty(0, dtype=np.int64)
        seed_seq = 0
        from_snapshot = False
        key = manifest.get("snapshot")
        if key is not None and store is not None and not store_faulty:
            held = store.get(str(key), kind="snapshot")
            if held is not None and "events" in held:
                seed = np.asarray(held["events"], dtype=np.int64)
                seed_seq = int(manifest["snapshot_seq"])
                from_snapshot = True
                telemetry.count("serve.snapshot.hit")
        if key is not None and not from_snapshot:
            telemetry.count("serve.snapshot.miss")
            # Fall back to a full-log replay; only legal when the log
            # still reaches back to seq 1.
            first_seq = records[0][0] if records else None
            if first_seq != 1 and int(manifest["snapshot_seq"]) > 0:
                raise TenantRecoveryError(
                    f"snapshot {key} is unreadable and the write-ahead "
                    f"log was compacted past seq 1 (starts at "
                    f"{first_seq}); refusing to serve guessed state"
                )

        tail = [(seq, events) for seq, events in records if seq > seed_seq]
        expected = seed_seq
        chunks = [seed]
        for seq, events in tail:
            expected += 1
            if seq != expected:
                raise TenantRecoveryError(
                    f"write-ahead log {self.wal_path} has a sequence "
                    f"gap: expected {expected}, found {seq}"
                )
            chunks.append(events)
        events = np.concatenate(chunks) if len(chunks) > 1 else seed
        return RecoveredState(
            events=events,
            seq=expected,
            alphabet_size=alphabet_size,
            from_snapshot=from_snapshot,
            replayed_records=len(tail),
        )

    # -- snapshots --------------------------------------------------------

    def snapshot(
        self,
        tenant_id: str,
        seq: int,
        events: np.ndarray,
        alphabet_size: int,
        store: ArtifactStore | None,
    ) -> str | None:
        """Persist a snapshot and point the manifest at it.

        A failed store put is invisible (the store swallows it and the
        next recovery replays the full log); the manifest is only
        advanced when the entry is readable.

        Returns:
            The snapshot key, or ``None`` when no store is attached.
        """
        if store is None:
            return None
        data = np.ascontiguousarray(np.asarray(events, dtype=np.int64))
        key = snapshot_key(tenant_id, seq, stream_digest(data))
        with telemetry.span("serve", "snapshot", tenant=tenant_id, seq=seq):
            store.put(key, {"events": data})
            if store.get(key, kind="snapshot") is None:
                return None  # put failed; keep the previous manifest
            self.write_manifest(
                alphabet_size, snapshot_seq=seq, snapshot=key
            )
        telemetry.count("serve.snapshot.put")
        return key

    def compact(self, upto_seq: int) -> int:
        """Drop WAL records covered by a snapshot; returns lines kept.

        Atomic (temp file + replace).  Only call with ``upto_seq`` of
        a *verified* snapshot: after compaction, losing that snapshot
        makes the tenant unrecoverable by design (and recovery will
        say so rather than guess).
        """
        records = self.read_records()
        kept = [(seq, events) for seq, events in records if seq > upto_seq]
        tmp = self.wal_path.with_name(f".wal.{os.getpid()}.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for seq, events in kept:
                handle.write(
                    json.dumps(
                        {"seq": seq, "events": events.tolist()},
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.wal_path)
        telemetry.count("serve.wal.compact")
        return len(kept)
