"""Three-state circuit breaker for per-tenant failure isolation.

Classic closed → open → half-open machine, deliberately small:

* **closed** — traffic flows; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker.
* **open** — traffic is refused instantly (HTTP 503 with a
  ``Retry-After`` derived from the remaining cool-down) so a tenant
  whose requests keep failing cannot monopolise lane workers.
* **half-open** — after ``reset_timeout`` seconds one *probe* request
  is admitted; success closes the breaker, failure re-opens it and
  restarts the cool-down.

The clock is injectable so the state machine is unit-testable without
sleeping, and chaos runs can compress time.  Refusals the *breaker*
causes never count as failures — only genuine scoring errors advance
the machine — so an open breaker cannot keep itself open.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.exceptions import ScoreRefusal
from repro.runtime import telemetry

#: The three breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-tenant circuit breaker with an injectable clock.

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        reset_timeout: seconds the breaker stays open before probing.
        clock: monotonic time source (defaults to :func:`time.monotonic`).
        name: label used in telemetry and refusal advisories.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 2.0,
        clock: Callable[[], float] | None = None,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be > 0, got {reset_timeout}"
            )
        self._threshold = int(failure_threshold)
        self._reset_timeout = float(reset_timeout)
        self._clock = clock if clock is not None else time.monotonic
        self._name = name
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open on read."""
        if self._state == OPEN and self._remaining() <= 0:
            self._state = HALF_OPEN
            self._probing = False
        return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures seen in the closed state."""
        return self._failures

    def _remaining(self) -> float:
        return self._reset_timeout - (self._clock() - self._opened_at)

    def admit(self) -> None:
        """Gate one request; raises :class:`ScoreRefusal` when open.

        In the half-open state exactly one caller is admitted as the
        probe; concurrent requests are refused until the probe reports
        via :meth:`record_success` / :meth:`record_failure`.
        """
        state = self.state
        if state == CLOSED:
            return
        if state == HALF_OPEN and not self._probing:
            self._probing = True
            telemetry.count("serve.breaker.probe")
            return
        retry_after = max(self._remaining(), 0.0) if state == OPEN else (
            self._reset_timeout
        )
        telemetry.count("serve.breaker.refused")
        raise ScoreRefusal(
            f"circuit breaker {self._name or 'tenant'!s} is {state}",
            status=503,
            reason="breaker-open",
            retry_after=round(retry_after, 3),
        )

    def record_success(self) -> None:
        """An admitted request succeeded; closes from half-open."""
        if self.state == HALF_OPEN:
            telemetry.count("serve.breaker.closed")
        self._state = CLOSED
        self._failures = 0
        self._probing = False

    def record_failure(self) -> None:
        """An admitted request failed; may trip or re-open the breaker."""
        state = self.state
        if state == HALF_OPEN:
            self._trip()
            return
        self._failures += 1
        if self._failures >= self._threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._failures = 0
        self._probing = False
        self._opened_at = self._clock()
        telemetry.count("serve.breaker.opened")

    def snapshot(self) -> dict:
        """State for the stats endpoint."""
        return {
            "state": self.state,
            "failures": self._failures,
            "retry_after": (
                round(max(self._remaining(), 0.0), 3)
                if self._state == OPEN
                else 0.0
            ),
        }
