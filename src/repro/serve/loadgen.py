"""Load generator and no-wrong-score verifier for the scoring service.

One tool, two jobs:

* **load** — drive N concurrent tenants through realistic traffic
  (seeded training chunks, then scoring requests across detector
  families and window lengths), measuring per-request latency and
  aggregate throughput;
* **verification** — every byte the server returns is checked against
  a locally computed reference.  Training acknowledgements must echo
  the exact content digest of the events the client accumulated;
  every 200-scored stream must match ``create_detector(...).fit(...)
  .score_stream(...)`` **bit-exactly**.  Any divergence is recorded as
  a *violation* — under chaos, refusals are expected and fine, but a
  single wrong score fails the run.

The generator is fully seeded (streams, request ids, ordering within
a tenant), so a chaos run is reproducible end to end: the server's
fault schedule keys off the client-supplied ``request_id``, and
retries carry an explicit ``attempt`` number, mirroring the sweep
harness's (key, attempt) fault addressing.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field

import numpy as np

from repro.detectors.registry import create_detector
from repro.runtime.store import stream_digest

#: (family, window) cells a default load plan scores.
DEFAULT_CELLS: tuple[tuple[str, int], ...] = (
    ("stide", 4),
    ("t-stide", 6),
    ("markov", 2),
)


@dataclass(frozen=True)
class LoadPlan:
    """A seeded description of the traffic to generate."""

    tenants: int = 3
    train_chunks: int = 6
    chunk_events: int = 200
    scores_per_tenant: int = 9
    test_events: int = 120
    alphabet_size: int = 8
    seed: int = 7
    budget: float = 10.0
    max_attempts: int = 4
    cells: tuple[tuple[str, int], ...] = DEFAULT_CELLS

    @classmethod
    def quick(cls, seed: int = 7) -> "LoadPlan":
        """A small plan for smoke tests and CI."""
        return cls(
            tenants=2,
            train_chunks=3,
            chunk_events=120,
            scores_per_tenant=6,
            test_events=80,
            seed=seed,
        )


@dataclass
class LoadReport:
    """What a load run observed.  ``violations`` must stay empty."""

    requests: int = 0
    trains_ok: int = 0
    scores_ok: int = 0
    retries: int = 0
    refusals: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0

    def note_refusal(self, reason: str) -> None:
        self.refusals[reason] = self.refusals.get(reason, 0) + 1

    def percentile(self, q: float) -> float:
        """Latency percentile in milliseconds (0 when empty)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q) * 1000.0)

    def summary(self) -> dict:
        """JSON-ready aggregate (the benchmark artifact payload)."""
        wall = max(self.wall_seconds, 1e-9)
        return {
            "requests": self.requests,
            "trains_ok": self.trains_ok,
            "scores_ok": self.scores_ok,
            "retries": self.retries,
            "refusals": dict(sorted(self.refusals.items())),
            "violations": len(self.violations),
            "p50_ms": round(self.percentile(50), 3),
            "p99_ms": round(self.percentile(99), 3),
            "streams_per_sec": round(self.scores_ok / wall, 3),
            "wall_seconds": round(self.wall_seconds, 3),
        }


async def request(
    host: str, port: int, method: str, path: str, body: dict | None = None
) -> tuple[int, dict]:
    """One HTTP/1.1 request against the server (Connection: close)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode("utf-8") if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode("ascii") + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, BrokenPipeError):
        pass
    header, _, body_bytes = raw.partition(b"\r\n\r\n")
    status = int(header.split(None, 2)[1])
    data = json.loads(body_bytes) if body_bytes else {}
    return status, data


class LoadGenerator:
    """Drives one :class:`LoadPlan` against a running server."""

    def __init__(self, host: str, port: int, plan: LoadPlan) -> None:
        self.host = host
        self.port = port
        self.plan = plan
        self.report = LoadReport()

    def _stream(self, tag: str, length: int) -> np.ndarray:
        """A seeded event stream (structured, not uniform noise)."""
        rng = random.Random(f"loadgen|{self.plan.seed}|{tag}")
        size = self.plan.alphabet_size
        state = rng.randrange(size)
        events = []
        for _ in range(length):
            # A sticky walk gives the detectors learnable structure.
            if rng.random() < 0.6:
                state = (state + 1) % size
            else:
                state = rng.randrange(size)
            events.append(state)
        return np.asarray(events, dtype=np.int64)

    async def _call(
        self, tenant: str, op: str, request_id: str, body: dict
    ) -> tuple[int, dict]:
        """POST one tenant op, retrying retryable refusals."""
        path = f"/v1/tenants/{tenant}/{op}"
        for attempt in range(1, self.plan.max_attempts + 1):
            self.report.requests += 1
            body = dict(
                body, request_id=request_id, attempt=attempt,
                budget=self.plan.budget,
            )
            started = time.monotonic()
            status, data = await request(
                self.host, self.port, "POST", path, body
            )
            self.report.latencies.append(time.monotonic() - started)
            if status == 200:
                return status, data
            reason = data.get("reason", f"http-{status}")
            self.report.note_refusal(reason)
            # The generator validated its own payload, so an
            # invalid-events refusal means in-flight corruption
            # (chaos) — retrying with a fresh attempt is sound.
            if not data.get("retryable") and reason != "invalid-events":
                return status, data
            self.report.retries += 1
            await asyncio.sleep(float(data.get("retry_after") or 0.01))
        return status, data

    async def _drive_tenant(self, index: int) -> None:
        plan = self.plan
        tenant = f"tenant-{index:02d}"
        accumulated = np.empty(0, dtype=np.int64)

        for chunk_index in range(plan.train_chunks):
            events = self._stream(f"{tenant}|train|{chunk_index}", plan.chunk_events)
            status, data = await self._call(
                tenant,
                "train",
                f"train-{chunk_index}",
                {
                    "events": events.tolist(),
                    "alphabet_size": plan.alphabet_size,
                },
            )
            if status != 200:
                # A permanently refused chunk is never part of the
                # tenant's state; skip it locally too.
                continue
            accumulated = (
                events.copy()
                if accumulated.size == 0
                else np.concatenate([accumulated, events])
            )
            self.report.trains_ok += 1
            expected = stream_digest(accumulated)
            if data.get("digest") != expected:
                self.report.violations.append(
                    f"{tenant} train {chunk_index}: server digest "
                    f"{data.get('digest')} != client digest {expected}"
                )

        if accumulated.size == 0:
            return
        references: dict[tuple[str, int], object] = {}
        for score_index in range(plan.scores_per_tenant):
            family, window = plan.cells[score_index % len(plan.cells)]
            stream = self._stream(f"{tenant}|test|{score_index}", plan.test_events)
            status, data = await self._call(
                tenant,
                "score",
                f"score-{score_index}",
                {
                    "family": family,
                    "window": window,
                    "events": stream.tolist(),
                },
            )
            if status != 200:
                continue
            self.report.scores_ok += 1
            cell = (family, window)
            if cell not in references:
                detector = create_detector(
                    family, window, plan.alphabet_size
                )
                detector.fit(accumulated)
                references[cell] = detector
            expected = np.asarray(
                references[cell].score_stream(stream), dtype=float
            )
            got = np.asarray(data.get("scores", []), dtype=float)
            if got.shape != expected.shape or not np.array_equal(
                got, expected
            ):
                self.report.violations.append(
                    f"{tenant} score {score_index} ({family}, DW={window}): "
                    f"scores diverge from the local reference"
                )

    async def run(self) -> LoadReport:
        """Drive every tenant concurrently; returns the report."""
        started = time.monotonic()
        await asyncio.gather(
            *(self._drive_tenant(i) for i in range(self.plan.tenants))
        )
        self.report.wall_seconds = time.monotonic() - started
        return self.report


async def run_load(host: str, port: int, plan: LoadPlan) -> LoadReport:
    """Convenience wrapper: one generator, one run."""
    return await LoadGenerator(host, port, plan).run()
