"""Load generator and no-wrong-score verifier for the scoring service.

One tool, two jobs:

* **load** — drive N concurrent tenants through realistic traffic
  (seeded training chunks, then scoring requests across detector
  families and window lengths), measuring per-request latency and
  aggregate throughput;
* **verification** — every byte the server returns is checked against
  a locally computed reference.  Training acknowledgements must echo
  the exact content digest of the events the client accumulated;
  every 200-scored stream must match ``create_detector(...).fit(...)
  .score_stream(...)`` **bit-exactly**.  Any divergence is recorded as
  a *violation* — under chaos, refusals are expected and fine, but a
  single wrong score fails the run.

Two load modes:

* **closed-loop** (default for the API, ``--closed`` on the CLI) —
  each tenant issues its next request only after the previous one
  completes.  Simple, but latency under overload is *understated*:
  a slow server throttles its own offered load, which is why the
  committed clean p50 once read *higher* than the chaos p50.
* **open-loop** (``arrival_rate`` set) — scoring requests arrive on a
  seeded Poisson process at a target rate, independent of completions,
  and each latency is measured from the request's **scheduled arrival
  time** — never from when the client got around to sending it — so
  queueing delay is charged to the server, not silently dropped
  (coordinated-omission-safe accounting).

Connections are **keep-alive**: each tenant holds one persistent
connection and pipelines its requests over it; reuse counts are
reported.  The generator is fully seeded (streams, request ids,
arrival times, ordering within a tenant), so a chaos run is
reproducible end to end: the server's fault schedule keys off the
client-supplied ``request_id``, and retries carry an explicit
``attempt`` number, mirroring the sweep harness's (key, attempt)
fault addressing.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.detectors.registry import create_detector
from repro.runtime.store import stream_digest

#: (family, window) cells a default load plan scores.
DEFAULT_CELLS: tuple[tuple[str, int], ...] = (
    ("stide", 4),
    ("t-stide", 6),
    ("markov", 2),
)


@dataclass(frozen=True)
class LoadPlan:
    """A seeded description of the traffic to generate.

    ``arrival_rate`` selects the load mode: ``None`` runs closed-loop
    (a tenant sends its next request when the previous completes);
    a rate in requests/second runs the scoring phase open-loop on a
    seeded Poisson arrival process with coordinated-omission-safe
    latency accounting.  Training is always closed-loop per tenant —
    chunk ordering is part of the digest the server must echo.
    """

    tenants: int = 3
    train_chunks: int = 6
    chunk_events: int = 200
    scores_per_tenant: int = 9
    test_events: int = 120
    alphabet_size: int = 8
    seed: int = 7
    budget: float = 10.0
    max_attempts: int = 4
    cells: tuple[tuple[str, int], ...] = DEFAULT_CELLS
    arrival_rate: float | None = None

    @classmethod
    def quick(cls, seed: int = 7) -> "LoadPlan":
        """A small plan for smoke tests and CI."""
        return cls(
            tenants=2,
            train_chunks=3,
            chunk_events=120,
            scores_per_tenant=6,
            test_events=80,
            seed=seed,
        )


@dataclass
class LoadReport:
    """What a load run observed.  ``violations`` must stay empty."""

    requests: int = 0
    trains_ok: int = 0
    scores_ok: int = 0
    retries: int = 0
    refusals: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    mode: str = "closed"
    target_rate: float | None = None
    connections: int = 0
    keepalive_reuses: int = 0

    def note_refusal(self, reason: str) -> None:
        self.refusals[reason] = self.refusals.get(reason, 0) + 1

    def percentile(self, q: float) -> float:
        """Latency percentile in milliseconds (0 when empty)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q) * 1000.0)

    def summary(self) -> dict:
        """JSON-ready aggregate (the benchmark artifact payload)."""
        wall = max(self.wall_seconds, 1e-9)
        payload = {
            "mode": self.mode,
            "requests": self.requests,
            "trains_ok": self.trains_ok,
            "scores_ok": self.scores_ok,
            "retries": self.retries,
            "refusals": dict(sorted(self.refusals.items())),
            "violations": len(self.violations),
            "p50_ms": round(self.percentile(50), 3),
            "p99_ms": round(self.percentile(99), 3),
            "streams_per_sec": round(self.scores_ok / wall, 3),
            "wall_seconds": round(self.wall_seconds, 3),
            "connections": self.connections,
            "keepalive_reuses": self.keepalive_reuses,
        }
        if self.target_rate is not None:
            payload["target_rate"] = self.target_rate
        return payload


async def request(
    host: str, port: int, method: str, path: str, body: dict | None = None
) -> tuple[int, dict]:
    """One HTTP/1.1 request against the server (Connection: close)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode("utf-8") if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode("ascii") + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, BrokenPipeError):
        pass
    header, _, body_bytes = raw.partition(b"\r\n\r\n")
    status = int(header.split(None, 2)[1])
    data = json.loads(body_bytes) if body_bytes else {}
    return status, data


class _Connection:
    """One persistent keep-alive connection, requests serialized.

    Responses are framed by ``Content-Length`` so the socket stays
    usable for the next request.  A reused socket the server has
    meanwhile closed (idle timeout, error status) is transparently
    reopened and the request resent once — safe because the server
    closes *between* requests, never after half-processing one.
    """

    def __init__(self, host: str, port: int, report: LoadReport) -> None:
        self._host = host
        self._port = port
        self._report = report
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def _open(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self._report.connections += 1

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
        self._reader = self._writer = None

    async def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        )
        wire = head.encode("ascii") + payload
        async with self._lock:
            for retry in (False, True):
                reused = self._writer is not None
                if not reused:
                    await self._open()
                try:
                    assert self._writer is not None and self._reader is not None
                    self._writer.write(wire)
                    await self._writer.drain()
                    status, data, server_close = await self._read_response()
                except (
                    ConnectionError,
                    BrokenPipeError,
                    asyncio.IncompleteReadError,
                ):
                    await self.close()
                    if reused and not retry:
                        continue  # stale keep-alive socket; resend once
                    raise
                if reused:
                    self._report.keepalive_reuses += 1
                if server_close:
                    await self.close()
                return status, data
        raise ConnectionError("unreachable")  # pragma: no cover

    async def _read_response(self) -> tuple[int, dict, bool]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        status = int(status_line.split(None, 2)[1])
        content_length = 0
        server_close = False
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            header = name.strip().lower()
            if header == "content-length":
                content_length = int(value.strip())
            elif header == "connection":
                server_close = "close" in value.strip().lower()
        body = (
            await self._reader.readexactly(content_length)
            if content_length
            else b""
        )
        return status, json.loads(body) if body else {}, server_close


class LoadGenerator:
    """Drives one :class:`LoadPlan` against a running server.

    Args:
        host, port: the server address.
        plan: the seeded traffic description.
        dump_scores: optional path; every verified 200 score response
            is written there as sorted JSONL so two runs (e.g. batched
            vs ``--batch-max 1``) can be diffed byte for byte.
    """

    def __init__(
        self,
        host: str,
        port: int,
        plan: LoadPlan,
        dump_scores: str | Path | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.plan = plan
        self.report = LoadReport()
        self._dump_path = Path(dump_scores) if dump_scores else None
        self._dump_rows: list[dict] = []
        self._connections: dict[str, _Connection] = {}

    def _connection(self, tenant: str) -> _Connection:
        connection = self._connections.get(tenant)
        if connection is None:
            connection = _Connection(self.host, self.port, self.report)
            self._connections[tenant] = connection
        return connection

    def _stream(self, tag: str, length: int) -> np.ndarray:
        """A seeded event stream (structured, not uniform noise)."""
        rng = random.Random(f"loadgen|{self.plan.seed}|{tag}")
        size = self.plan.alphabet_size
        state = rng.randrange(size)
        events = []
        for _ in range(length):
            # A sticky walk gives the detectors learnable structure.
            if rng.random() < 0.6:
                state = (state + 1) % size
            else:
                state = rng.randrange(size)
            events.append(state)
        return np.asarray(events, dtype=np.int64)

    async def _call(
        self,
        tenant: str,
        op: str,
        request_id: str,
        body: dict,
        scheduled: float | None = None,
    ) -> tuple[int, dict]:
        """POST one tenant op, retrying retryable refusals.

        With ``scheduled`` set (open-loop), exactly one latency is
        recorded for the whole logical request, measured from the
        scheduled arrival — client-side lag, connection waits and
        retries all count against the server (no coordinated
        omission).  Closed-loop records one latency per attempt, as a
        closed-loop client experiences it.
        """
        path = f"/v1/tenants/{tenant}/{op}"
        connection = self._connection(tenant)
        loop = asyncio.get_running_loop()
        status, data = 599, {}
        for attempt in range(1, self.plan.max_attempts + 1):
            self.report.requests += 1
            body = dict(
                body, request_id=request_id, attempt=attempt,
                budget=self.plan.budget,
            )
            started = time.monotonic()
            try:
                status, data = await connection.request("POST", path, body)
            except (ConnectionError, asyncio.IncompleteReadError):
                status, data = 599, {"reason": "connection-error",
                                     "retryable": True}
            if scheduled is None:
                self.report.latencies.append(time.monotonic() - started)
            if status == 200:
                break
            reason = data.get("reason", f"http-{status}")
            self.report.note_refusal(reason)
            # The generator validated its own payload, so an
            # invalid-events refusal means in-flight corruption
            # (chaos) — retrying with a fresh attempt is sound.
            if not data.get("retryable") and reason != "invalid-events":
                break
            if attempt < self.plan.max_attempts:
                self.report.retries += 1
                await asyncio.sleep(float(data.get("retry_after") or 0.01))
        if scheduled is not None:
            self.report.latencies.append(loop.time() - scheduled)
        return status, data

    async def _train_tenant(self, index: int) -> np.ndarray:
        """Closed-loop training phase; returns the accumulated stream."""
        plan = self.plan
        tenant = f"tenant-{index:02d}"
        accumulated = np.empty(0, dtype=np.int64)
        for chunk_index in range(plan.train_chunks):
            events = self._stream(
                f"{tenant}|train|{chunk_index}", plan.chunk_events
            )
            status, data = await self._call(
                tenant,
                "train",
                f"train-{chunk_index}",
                {
                    "events": events.tolist(),
                    "alphabet_size": plan.alphabet_size,
                },
            )
            if status != 200:
                # A permanently refused chunk is never part of the
                # tenant's state; skip it locally too.
                continue
            accumulated = (
                events.copy()
                if accumulated.size == 0
                else np.concatenate([accumulated, events])
            )
            self.report.trains_ok += 1
            expected = stream_digest(accumulated)
            if data.get("digest") != expected:
                self.report.violations.append(
                    f"{tenant} train {chunk_index}: server digest "
                    f"{data.get('digest')} != client digest {expected}"
                )
        return accumulated

    async def _score_once(
        self,
        index: int,
        accumulated: np.ndarray,
        references: dict[tuple[str, int], object],
        score_index: int,
        scheduled: float | None = None,
    ) -> None:
        plan = self.plan
        tenant = f"tenant-{index:02d}"
        family, window = plan.cells[score_index % len(plan.cells)]
        stream = self._stream(f"{tenant}|test|{score_index}", plan.test_events)
        if scheduled is not None:
            delay = scheduled - asyncio.get_running_loop().time()
            if delay > 0:
                await asyncio.sleep(delay)
        status, data = await self._call(
            tenant,
            "score",
            f"score-{score_index}",
            {
                "family": family,
                "window": window,
                "events": stream.tolist(),
            },
            scheduled=scheduled,
        )
        if status != 200:
            return
        self.report.scores_ok += 1
        cell = (family, window)
        if cell not in references:
            detector = create_detector(family, window, plan.alphabet_size)
            detector.fit(accumulated)
            references[cell] = detector
        expected = np.asarray(
            references[cell].score_stream(stream), dtype=float
        )
        got = np.asarray(data.get("scores", []), dtype=float)
        if got.shape != expected.shape or not np.array_equal(got, expected):
            self.report.violations.append(
                f"{tenant} score {score_index} ({family}, DW={window}): "
                f"scores diverge from the local reference"
            )
        elif self._dump_path is not None:
            self._dump_rows.append(
                {
                    "tenant": tenant,
                    "request": f"score-{score_index}",
                    "family": family,
                    "window": window,
                    "scores": data.get("scores", []),
                }
            )

    async def _drive_tenant_closed(self, index: int) -> None:
        accumulated = await self._train_tenant(index)
        if accumulated.size == 0:
            return
        references: dict[tuple[str, int], object] = {}
        for score_index in range(self.plan.scores_per_tenant):
            await self._score_once(
                index, accumulated, references, score_index
            )

    async def _run_closed(self) -> None:
        await asyncio.gather(
            *(self._drive_tenant_closed(i) for i in range(self.plan.tenants))
        )

    async def _run_open(self) -> None:
        """Train closed-loop, then score on a Poisson arrival process."""
        plan = self.plan
        assert plan.arrival_rate is not None and plan.arrival_rate > 0
        self.report.mode = "open"
        self.report.target_rate = plan.arrival_rate
        accumulated = await asyncio.gather(
            *(self._train_tenant(i) for i in range(plan.tenants))
        )
        references: list[dict] = [{} for _ in range(plan.tenants)]
        rng = random.Random(f"loadgen|{plan.seed}|arrivals")
        loop = asyncio.get_running_loop()
        epoch = loop.time() + 0.005
        offset = 0.0
        tasks = []
        for i in range(plan.tenants * plan.scores_per_tenant):
            offset += rng.expovariate(plan.arrival_rate)
            index = i % plan.tenants
            if accumulated[index].size == 0:
                continue
            tasks.append(
                asyncio.ensure_future(
                    self._score_once(
                        index,
                        accumulated[index],
                        references[index],
                        i // plan.tenants,
                        scheduled=epoch + offset,
                    )
                )
            )
        if tasks:
            await asyncio.gather(*tasks)

    async def run(self) -> LoadReport:
        """Drive the plan; returns the report (and writes any dump)."""
        started = time.monotonic()
        try:
            if self.plan.arrival_rate is not None:
                await self._run_open()
            else:
                await self._run_closed()
        finally:
            for connection in self._connections.values():
                await connection.close()
        self.report.wall_seconds = time.monotonic() - started
        if self._dump_path is not None:
            rows = sorted(
                self._dump_rows,
                key=lambda row: (row["tenant"], row["request"]),
            )
            with open(self._dump_path, "w", encoding="utf-8") as sink:
                for row in rows:
                    sink.write(json.dumps(row, sort_keys=True) + "\n")
        return self.report


async def run_load(
    host: str,
    port: int,
    plan: LoadPlan,
    dump_scores: str | Path | None = None,
) -> LoadReport:
    """Convenience wrapper: one generator, one run."""
    return await LoadGenerator(host, port, plan, dump_scores).run()
