"""The scoring pipeline and its degradation ladder.

A score request travels: validate → fit (cached) → score at the best
applicable kernel tier → fall down the ladder on failure → refuse.
The ladder reuses the sweep engine's tier semantics
(:func:`~repro.runtime.kernels.resolve_kernel_tier`):

1. **automaton** — the one-pass multi-order membership automaton,
   when the cell is packable and within the profile's order budget;
2. **bisect** — the classic per-DW ``searchsorted`` membership path,
   always applicable;
3. **refuse** — a :class:`~repro.exceptions.ScoreRefusal` (503) with a
   machine-readable advisory.

Because the tiers are bit-identical by construction (asserted by
``tests/runtime/test_kernels.py``), falling down the ladder changes
*how* a response is computed, never its value — degradation trades
speed, not correctness, which is the other half of the no-wrong-score
invariant: every path out of this module is either a correct score or
an explicit refusal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ScoreRefusal
from repro.runtime import telemetry
from repro.runtime.kernels import TIER_AUTO, TIER_BISECT, resolve_kernel_tier
from repro.serve.admission import Deadline
from repro.serve.tenants import TenantState, TenantStateStore


@dataclass(frozen=True)
class ScoreOutcome:
    """One successful scoring response."""

    scores: tuple[float, ...]
    family: str
    window: int
    tier: str
    attempts: int
    elapsed: float


class ScorePipeline:
    """Validated, deadline-aware, ladder-degrading scoring.

    Synchronous on purpose: the server runs it inside the lane
    executor, so the event loop never blocks on NumPy.

    Args:
        tenants: the tenant state store (fit cache lives there).
        retries: extra full-ladder passes before refusing.  Maps from
            the CLI's ``--retries`` budget; scoring is deterministic,
            so retries only help against *injected* or environmental
            failures, which is exactly what they are budgeted for.
    """

    def __init__(self, tenants: TenantStateStore, retries: int = 1) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._tenants = tenants
        self._retries = int(retries)

    def ladder(self, state: TenantState, window: int) -> tuple[str, ...]:
        """The kernel tiers to try for this cell, best first."""
        preferred = resolve_kernel_tier(
            TIER_AUTO, state.alphabet_size, window
        )
        if preferred == TIER_BISECT:
            return (TIER_BISECT,)
        return (preferred, TIER_BISECT)

    def score(
        self,
        state: TenantState,
        family: str,
        window: int,
        events: object,
        deadline: Deadline,
    ) -> ScoreOutcome:
        """Score one stream for one (family, window) cell.

        Raises:
            ScoreRefusal: 422 on invalid input or a stream shorter
                than one window; 504 when the budget dies mid-ladder;
                503 (retryable) when every rung of the ladder failed.
        """
        started = time.monotonic()
        data = self._tenants.validate_events(events, state.alphabet_size)
        if len(data) < window:
            raise ScoreRefusal(
                f"test stream holds {len(data)} events, fewer than one "
                f"window of {window}",
                status=422,
                reason="stream-too-short",
            )
        deadline.check("fit")
        detector = self._tenants.detector_for(state, family, window)
        ladder = self.ladder(state, window)
        attempts = 0
        last_error: Exception | None = None
        for attempt in range(self._retries + 1):
            for tier in ladder:
                deadline.check(f"score:{tier}")
                attempts += 1
                try:
                    with telemetry.span(
                        "serve",
                        "score",
                        tenant=state.tenant_id,
                        family=family,
                        dw=window,
                        tier=tier,
                    ):
                        detector.attach_kernel_tier(tier)
                        scores = np.asarray(
                            detector.score_stream(data), dtype=float
                        )
                except ScoreRefusal:
                    raise
                except Exception as error:
                    last_error = error
                    telemetry.count("serve.ladder.fallback")
                    continue
                if attempt or tier != ladder[0]:
                    telemetry.count("serve.ladder.degraded")
                telemetry.count("serve.score")
                return ScoreOutcome(
                    scores=tuple(float(x) for x in scores),
                    family=family,
                    window=window,
                    tier=tier,
                    attempts=attempts,
                    elapsed=time.monotonic() - started,
                )
        telemetry.count("serve.ladder.exhausted")
        raise ScoreRefusal(
            f"every kernel tier failed for tenant {state.tenant_id!r} "
            f"cell ({family}, DW={window}); last error: "
            f"{type(last_error).__name__}: {last_error}",
            status=503,
            reason="ladder-exhausted",
            retry_after=0.1,
        )
