"""The scoring pipeline and its degradation ladder.

A score request travels: validate → fit (cached) → score at the best
applicable kernel tier → fall down the ladder on failure → refuse.
The ladder reuses the sweep engine's tier semantics
(:func:`~repro.runtime.kernels.resolve_kernel_tier`):

1. **automaton** — the one-pass multi-order membership automaton,
   when the cell is packable and within the profile's order budget;
2. **bisect** — the classic per-DW ``searchsorted`` membership path,
   always applicable;
3. **refuse** — a :class:`~repro.exceptions.ScoreRefusal` (503) with a
   machine-readable advisory.

Because the tiers are bit-identical by construction (asserted by
``tests/runtime/test_kernels.py``), falling down the ladder changes
*how* a response is computed, never its value — degradation trades
speed, not correctness, which is the other half of the no-wrong-score
invariant: every path out of this module is either a correct score or
an explicit refusal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.detectors import create_detector
from repro.exceptions import ScoreRefusal
from repro.runtime import telemetry
from repro.runtime.automaton import BatchStreamCodes
from repro.runtime.kernels import (
    TIER_AUTO,
    TIER_BISECT,
    fused_stream_windows,
    resolve_kernel_tier,
)
from repro.sequences.windows import packable
from repro.serve.admission import Deadline
from repro.serve.tenants import TenantState, TenantStateStore

#: The tier label fused batch scoring reports.  Fused kernels reuse the
#: bisect tier's membership/count arithmetic on a batch-packed key
#: array, so "fused" is a *how*, not a different *what* — responses
#: are bit-identical to either sequential tier.
TIER_FUSED = "fused"

#: Families whose packed fit state admits the fused packed-key kernel
#: (``score_packed``); every other family takes the fused window path.
_PACKED_FAMILIES = frozenset({"stide", "t-stide", "markov"})


@dataclass(frozen=True)
class ScoreOutcome:
    """One successful scoring response."""

    scores: tuple[float, ...]
    family: str
    window: int
    tier: str
    attempts: int
    elapsed: float


class ScorePipeline:
    """Validated, deadline-aware, ladder-degrading scoring.

    Synchronous on purpose: the server runs it inside the lane
    executor, so the event loop never blocks on NumPy.

    Args:
        tenants: the tenant state store (fit cache lives there).
        retries: extra full-ladder passes before refusing.  Maps from
            the CLI's ``--retries`` budget; scoring is deterministic,
            so retries only help against *injected* or environmental
            failures, which is exactly what they are budgeted for.
    """

    def __init__(self, tenants: TenantStateStore, retries: int = 1) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._tenants = tenants
        self._retries = int(retries)

    def ladder(self, state: TenantState, window: int) -> tuple[str, ...]:
        """The kernel tiers to try for this cell, best first."""
        preferred = resolve_kernel_tier(
            TIER_AUTO, state.alphabet_size, window
        )
        if preferred == TIER_BISECT:
            return (TIER_BISECT,)
        return (preferred, TIER_BISECT)

    def score(
        self,
        state: TenantState,
        family: str,
        window: int,
        events: object,
        deadline: Deadline,
    ) -> ScoreOutcome:
        """Score one stream for one (family, window) cell.

        Raises:
            ScoreRefusal: 422 on invalid input or a stream shorter
                than one window; 504 when the budget dies mid-ladder;
                503 (retryable) when every rung of the ladder failed.
        """
        started = time.monotonic()
        data = self._tenants.validate_events(events, state.alphabet_size)
        if len(data) < window:
            raise ScoreRefusal(
                f"test stream holds {len(data)} events, fewer than one "
                f"window of {window}",
                status=422,
                reason="stream-too-short",
            )
        deadline.check("fit")
        detector = self._tenants.detector_for(state, family, window)
        ladder = self.ladder(state, window)
        attempts = 0
        last_error: Exception | None = None
        for attempt in range(self._retries + 1):
            for tier in ladder:
                deadline.check(f"score:{tier}")
                attempts += 1
                try:
                    with telemetry.span(
                        "serve",
                        "score",
                        tenant=state.tenant_id,
                        family=family,
                        dw=window,
                        tier=tier,
                    ):
                        detector.attach_kernel_tier(tier)
                        scores = np.asarray(
                            detector.score_stream(data), dtype=float
                        )
                except ScoreRefusal:
                    raise
                except Exception as error:
                    last_error = error
                    telemetry.count("serve.ladder.fallback")
                    continue
                if attempt or tier != ladder[0]:
                    telemetry.count("serve.ladder.degraded")
                telemetry.count("serve.score")
                return ScoreOutcome(
                    scores=tuple(float(x) for x in scores),
                    family=family,
                    window=window,
                    tier=tier,
                    attempts=attempts,
                    elapsed=time.monotonic() - started,
                )
        telemetry.count("serve.ladder.exhausted")
        raise ScoreRefusal(
            f"every kernel tier failed for tenant {state.tenant_id!r} "
            f"cell ({family}, DW={window}); last error: "
            f"{type(last_error).__name__}: {last_error}",
            status=503,
            reason="ladder-exhausted",
            retry_after=0.1,
        )

    # -- fused group scoring (the micro-batcher's kernel path) -------------

    def prepare_group(
        self, jobs: list, chaos
    ) -> tuple[list, list[tuple[int, TenantState, np.ndarray, object]]]:
        """Resolve state, validation and detectors for a job group.

        Runs in a worker thread.  Per-job failures (unknown or
        quarantined tenant, invalid or chaos-poisoned events, a spent
        deadline, a cell the tenant cannot support) land in the result
        slot for *that job only* — a poisoned member never blocks its
        batchmates.  Tenant state is fetched here, at scoring time, so
        a tenant quarantined after enqueue refuses exactly like the
        sequential path would.

        Returns:
            ``(results, prepared)`` — the per-job result list with
            failures already filled in, and the surviving jobs as
            ``(index, state, validated_events, detector)`` tuples.
        """
        results: list = [None] * len(jobs)
        prepared: list[tuple[int, TenantState, np.ndarray, object]] = []
        for i, job in enumerate(jobs):
            try:
                job.deadline.check("batch:prepare")
                state = self._tenants.get(job.tenant_id)
                data = self._tenants.validate_events(
                    job.events, state.alphabet_size
                )
                data = chaos.maybe_corrupt_events(
                    data, state.alphabet_size, job.key, job.attempt
                )
                # Re-validate: a chaos-poisoned payload must be caught
                # here, never scored (same pair as the train path).
                data = self._tenants.validate_events(
                    data, state.alphabet_size
                )
                if len(data) < job.window:
                    raise ScoreRefusal(
                        f"test stream holds {len(data)} events, fewer "
                        f"than one window of {job.window}",
                        status=422,
                        reason="stream-too-short",
                    )
                job.deadline.check("fit")
                detector = self._tenants.detector_for(
                    state, job.family, job.window
                )
                prepared.append((i, state, data, detector))
            except Exception as error:
                results[i] = error
        return results, prepared

    def score_group(self, jobs: list, chaos) -> list:
        """Score one fused group (same family, window, alphabet).

        The thread/serial execution body: prepare every job, fuse the
        surviving streams into **one** kernel pass — a
        :class:`~repro.runtime.automaton.BatchStreamCodes` pack for
        the packed families, a
        :func:`~repro.runtime.kernels.fused_stream_windows` slide for
        the rest — and slice each job's responses out by its span.  A
        job whose fused kernel fails falls back to the sequential
        ladder (:meth:`score`), so batching can only change *how* a
        score is computed, never whether one is produced.

        Args:
            jobs: objects with the :class:`~repro.serve.batching
                .ScoreJob` attributes (duck-typed to keep this module
                import-light).
            chaos: the fault director (per-job corruption hooks).

        Returns:
            One entry per job: a :class:`ScoreOutcome` or the
            exception that job should fail with.
        """
        started = time.monotonic()
        results, prepared = self.prepare_group(jobs, chaos)
        if prepared:
            self._score_prepared(jobs, prepared, results, started)
        return results

    def _fuse(
        self, family: str, window: int, alphabet: int, streams: list
    ) -> tuple[str, object] | None:
        """Build the fused kernel input, or ``None`` to go sequential."""
        try:
            if family in _PACKED_FAMILIES and packable(alphabet, window):
                return "packed", BatchStreamCodes(streams, alphabet, window)
            return "windows", fused_stream_windows(streams, window)
        except Exception:
            telemetry.count("serve.batch.fuse_failed")
            return None

    def _score_prepared(
        self,
        jobs: list,
        prepared: list[tuple[int, TenantState, np.ndarray, object]],
        results: list,
        started: float,
    ) -> None:
        sample = jobs[prepared[0][0]]
        family, window = sample.family, sample.window
        alphabet = prepared[0][1].alphabet_size
        streams = [data for _, _, data, _ in prepared]
        fused = self._fuse(family, window, alphabet, streams)
        for k, (i, state, data, detector) in enumerate(prepared):
            job = jobs[i]
            try:
                job.deadline.check("score:fused")
                if fused is None:
                    raise _FusePlanUnavailable()
                with telemetry.span(
                    "serve",
                    "score",
                    tenant=state.tenant_id,
                    family=family,
                    dw=window,
                    tier=TIER_FUSED,
                    batch=len(prepared),
                ):
                    if fused[0] == "packed":
                        scores = detector.score_packed(
                            fused[1].keys(k, window)
                        )
                    else:
                        windows, spans = fused[1]
                        start, stop = spans[k]
                        scores = detector.score_windows(windows[start:stop])
                telemetry.count("serve.score")
                results[i] = ScoreOutcome(
                    scores=tuple(scores.tolist()),
                    family=family,
                    window=window,
                    tier=TIER_FUSED,
                    attempts=1,
                    elapsed=time.monotonic() - started,
                )
            except ScoreRefusal as refusal:
                results[i] = refusal
            except Exception:
                # Fused kernel misbehaved for this member: the
                # sequential ladder (with its own retries and
                # degradation) is the authoritative fallback.
                telemetry.count("serve.batch.fallback")
                try:
                    results[i] = self.score(
                        state, family, window, data, job.deadline
                    )
                except Exception as error:
                    results[i] = error

    async def score_group_in_process(self, jobs: list, chaos, pool) -> list:
        """Score a group on the pool's *process* rung.

        Prepare runs in a thread (tenant state is not shippable), the
        fused kernels run in a child process on a payload of exported
        fit states — :meth:`~repro.detectors.base.AnomalyDetector
        .import_fit_state` round-trips are documented bit-identical —
        with the concatenated streams riding the shared-memory
        :class:`~repro.runtime.arena.WindowArena` when available.  Any
        member the child cannot score (no exportable fit state, a
        kernel error) falls back to the sequential ladder in a thread.
        """
        started = time.monotonic()

        def _prepare() -> tuple[list, list, dict | None]:
            results, prepared = self.prepare_group(jobs, chaos)
            if not prepared:
                return results, prepared, None
            sample = jobs[prepared[0][0]]
            alphabet = prepared[0][1].alphabet_size
            fit_states = []
            for _i, _state, _data, _detector in prepared:
                snapshot = self._tenants.detector_payload(
                    _state, sample.family, sample.window
                )
                fit_states.append(
                    None if snapshot is None else snapshot["fit_state"]
                )
            payload = {
                "family": sample.family,
                "window": sample.window,
                "alphabet": alphabet,
                "fit_states": fit_states,
                "streams": [data for _, _, data, _ in prepared],
            }
            return results, prepared, payload

        results, prepared, payload = await pool.run_in_thread(_prepare)
        if payload is None:
            return results
        descriptor, lengths = pool.publish_streams(payload["streams"])
        if descriptor is not None:
            payload = dict(payload, streams=None, descriptor=descriptor,
                           lengths=lengths)
        try:
            verdicts = await pool.run(_ProcessGroupCall(payload))
        except Exception:
            telemetry.count("serve.batch.fallback")
            verdicts = [("error", "process rung failed")] * len(prepared)
        finally:
            pool.release_streams(descriptor)

        def _finalize() -> list:
            for k, (i, state, data, detector) in enumerate(prepared):
                job = jobs[i]
                kind, value = verdicts[k]
                if kind == "ok":
                    telemetry.count("serve.score")
                    results[i] = ScoreOutcome(
                        scores=tuple(value.tolist()),
                        family=job.family,
                        window=job.window,
                        tier=TIER_FUSED,
                        attempts=1,
                        elapsed=time.monotonic() - started,
                    )
                    continue
                telemetry.count("serve.batch.fallback")
                try:
                    results[i] = self.score(
                        state, job.family, job.window, data, job.deadline
                    )
                except Exception as error:
                    results[i] = error
            return results

        return await pool.run_in_thread(_finalize)


class _FusePlanUnavailable(Exception):
    """Internal: no fused plan for this group; take the ladder."""


class _ProcessGroupCall:
    """Picklable callable scoring one fused group in a child process.

    Rebuilds each member's detector from its exported fit state and
    runs the same fused kernels the thread path runs.  Returns one
    ``("ok", scores)`` or ``("error", message)`` verdict per member —
    exceptions never cross the process boundary as pickled state.
    """

    def __init__(self, payload: dict) -> None:
        self.payload = payload

    def __call__(self) -> list[tuple[str, object]]:
        payload = self.payload
        family = payload["family"]
        window = payload["window"]
        alphabet = payload["alphabet"]
        streams = payload["streams"]
        try:
            if streams is None:
                from repro.runtime.arena import attach_array

                concat = attach_array(payload["descriptor"])
                streams, offset = [], 0
                for length in payload["lengths"]:
                    streams.append(
                        np.array(concat[offset : offset + length])
                    )
                    offset += length
            verdicts: list[tuple[str, object]] = []
            detectors = []
            for fit_state in payload["fit_states"]:
                detector = None
                if fit_state is not None:
                    candidate = create_detector(family, window, alphabet)
                    if candidate.import_fit_state(fit_state):
                        detector = candidate
                detectors.append(detector)
            use_packed = family in _PACKED_FAMILIES and packable(
                alphabet, window
            )
            plan = (
                BatchStreamCodes(streams, alphabet, window)
                if use_packed
                else fused_stream_windows(streams, window)
            )
            for k, detector in enumerate(detectors):
                if detector is None:
                    verdicts.append(("error", "no shippable fit state"))
                    continue
                try:
                    if use_packed:
                        scores = detector.score_packed(plan.keys(k, window))
                    else:
                        windows, spans = plan
                        start, stop = spans[k]
                        scores = detector.score_windows(windows[start:stop])
                    verdicts.append(("ok", scores))
                except Exception as error:
                    verdicts.append(
                        ("error", f"{type(error).__name__}: {error}")
                    )
            return verdicts
        except Exception as error:
            message = f"{type(error).__name__}: {error}"
            return [("error", message)] * len(payload["fit_states"])
        finally:
            if payload.get("descriptor") is not None:
                from repro.runtime.arena import detach_all

                detach_all()
