"""Multi-tenant normal databases with crash-safe persistence.

One tenant = one normal database: the concatenated training stream its
detectors fit on.  Because every detector family in the registry fits
deterministically from that stream, recovering the stream bit-exactly
(the :mod:`repro.serve.wal` contract) recovers every score the service
would have produced — the property the crash-recovery integration test
asserts end to end.

The store keeps per-tenant fitted detectors cached and invalidates
them on ingest, so a scoring burst against a quiet tenant fits once.
All methods are synchronous and thread-compatible under the serving
bulkhead discipline: one lane worker mutates a given tenant at a time
(the asyncio server guarantees this), so no per-tenant lock is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import create_detector
from repro.exceptions import ScoreRefusal, TenantRecoveryError
from repro.runtime import telemetry
from repro.runtime.store import ArtifactStore, stream_digest
from repro.serve.wal import TenantJournal

#: Default per-tenant alphabet when a create request does not name one
#: (the paper corpus alphabet).
DEFAULT_ALPHABET_SIZE = 8


@dataclass
class TenantState:
    """One tenant's in-memory state, mirrored by its journal."""

    tenant_id: str
    alphabet_size: int
    events: np.ndarray
    seq: int = 0
    journal: TenantJournal | None = None
    quarantined: str | None = None
    detectors: dict[tuple[str, int], AnomalyDetector] = field(
        default_factory=dict
    )

    @property
    def event_count(self) -> int:
        """Training events accumulated so far."""
        return int(len(self.events))

    def digest(self) -> str:
        """Content digest of the normal database (recovery audits)."""
        return stream_digest(self.events)


@dataclass(frozen=True)
class RecoveryReport:
    """What a service restart reconstructed from disk."""

    tenants: int = 0
    from_snapshot: int = 0
    replayed_records: int = 0
    quarantined: tuple[str, ...] = ()


class TenantStateStore:
    """All tenants of one service instance, journaled under one root.

    Layout: ``<root>/tenants/<tenant id>/{wal.jsonl,manifest.json}``
    plus an artifact store (``<root>/store`` by default) holding the
    snapshots.

    Args:
        root: service state directory.
        store: snapshot store; defaults to ``ArtifactStore(root/"store")``.
            Pass ``None`` explicitly via ``snapshots=False`` semantics
            is not supported — snapshots are cheap and recovery falls
            back to the full log without them anyway.
        snapshot_every: take a snapshot every N ingests (0 disables).
        fsync: forwarded to each tenant's journal.
    """

    def __init__(
        self,
        root: str | Path,
        store: ArtifactStore | None = None,
        snapshot_every: int = 8,
        fsync: bool = False,
    ) -> None:
        self._root = Path(root)
        self._store = (
            store
            if store is not None
            else ArtifactStore(self._root / "store")
        )
        self._snapshot_every = int(snapshot_every)
        self._fsync = fsync
        self._tenants: dict[str, TenantState] = {}

    @property
    def root(self) -> Path:
        """The service state directory."""
        return self._root

    @property
    def store(self) -> ArtifactStore:
        """The snapshot artifact store."""
        return self._store

    @property
    def tenants(self) -> dict[str, TenantState]:
        """Live tenants by id (includes quarantined ones)."""
        return self._tenants

    def _tenant_dir(self, tenant_id: str) -> Path:
        return self._root / "tenants" / tenant_id

    def _journal(self, tenant_id: str) -> TenantJournal:
        return TenantJournal(self._tenant_dir(tenant_id), fsync=self._fsync)

    # -- lifecycle --------------------------------------------------------

    def get(self, tenant_id: str) -> TenantState:
        """The tenant, or a :class:`ScoreRefusal` (404) if unknown."""
        state = self._tenants.get(tenant_id)
        if state is None:
            raise ScoreRefusal(
                f"unknown tenant {tenant_id!r}",
                status=404,
                reason="unknown-tenant",
            )
        if state.quarantined is not None:
            raise ScoreRefusal(
                f"tenant {tenant_id!r} is quarantined: {state.quarantined}",
                status=503,
                reason="quarantined",
            )
        return state

    def open(
        self, tenant_id: str, alphabet_size: int | None = None
    ) -> TenantState:
        """The tenant, created (and journaled) if it does not exist."""
        state = self._tenants.get(tenant_id)
        if state is not None:
            if state.quarantined is not None:
                raise ScoreRefusal(
                    f"tenant {tenant_id!r} is quarantined: "
                    f"{state.quarantined}",
                    status=503,
                    reason="quarantined",
                )
            return state
        size = (
            int(alphabet_size)
            if alphabet_size is not None
            else DEFAULT_ALPHABET_SIZE
        )
        if size < 2:
            raise ScoreRefusal(
                f"alphabet_size must be >= 2, got {size}",
                status=422,
                reason="invalid-alphabet",
            )
        journal = self._journal(tenant_id)
        journal.write_manifest(size)
        state = TenantState(
            tenant_id=tenant_id,
            alphabet_size=size,
            events=np.empty(0, dtype=np.int64),
            journal=journal,
        )
        self._tenants[tenant_id] = state
        telemetry.count("serve.tenant.created")
        return state

    # -- mutation ---------------------------------------------------------

    def validate_events(
        self, events: object, alphabet_size: int
    ) -> np.ndarray:
        """Canonical int64 view of a request's events, or a 422 refusal.

        The *only* gate between wire input and detector input: a
        poisoned payload (out-of-alphabet codes, wrong shape, NaNs)
        becomes an explicit refusal here — the pipeline never scores
        what it could not validate, which is half of the no-wrong-score
        invariant.
        """
        try:
            data = np.asarray(events, dtype=np.int64)
        except (TypeError, ValueError, OverflowError) as error:
            raise ScoreRefusal(
                f"events are not an integer sequence: {error}",
                status=422,
                reason="invalid-events",
            ) from None
        if data.ndim != 1 or data.size == 0:
            raise ScoreRefusal(
                f"events must be a non-empty flat sequence, got shape "
                f"{data.shape}",
                status=422,
                reason="invalid-events",
            )
        if data.min() < 0 or data.max() >= alphabet_size:
            raise ScoreRefusal(
                "events contain codes outside the alphabet "
                f"[0, {alphabet_size - 1}]",
                status=422,
                reason="invalid-events",
            )
        return data

    def ingest(self, state: TenantState, events: np.ndarray) -> int:
        """Append validated training events; returns the new ``seq``.

        WAL-first: the record is durable before the in-memory state
        (and therefore any acknowledgement) reflects it.
        """
        seq = state.seq + 1
        assert state.journal is not None
        state.journal.append(seq, events)
        state.events = (
            events.copy()
            if state.event_count == 0
            else np.concatenate([state.events, events])
        )
        state.seq = seq
        state.detectors.clear()
        telemetry.count("serve.ingest")
        telemetry.count("serve.ingest.events", len(events))
        if self._snapshot_every and seq % self._snapshot_every == 0:
            state.journal.snapshot(
                state.tenant_id,
                seq,
                state.events,
                state.alphabet_size,
                self._store,
            )
        return seq

    # -- recovery ---------------------------------------------------------

    def recover_all(self, store_faulty: bool = False) -> RecoveryReport:
        """Reconstruct every journaled tenant from disk.

        A tenant whose state cannot be reconstructed faithfully is
        *quarantined* — registered, but refusing all traffic with an
        advisory — so one damaged tenant never blocks the fleet and is
        never served from guessed state.

        Args:
            store_faulty: chaos hook — treat snapshot reads as failed.
        """
        tenants_dir = self._root / "tenants"
        recovered = 0
        from_snapshot = 0
        replayed = 0
        quarantined: list[str] = []
        if tenants_dir.is_dir():
            for directory in sorted(p for p in tenants_dir.iterdir() if p.is_dir()):
                tenant_id = directory.name
                journal = TenantJournal(directory, fsync=self._fsync)
                try:
                    loaded = journal.recover(
                        self._store, store_faulty=store_faulty
                    )
                except TenantRecoveryError as error:
                    self._tenants[tenant_id] = TenantState(
                        tenant_id=tenant_id,
                        alphabet_size=DEFAULT_ALPHABET_SIZE,
                        events=np.empty(0, dtype=np.int64),
                        journal=journal,
                        quarantined=str(error),
                    )
                    quarantined.append(tenant_id)
                    telemetry.count("serve.tenant.quarantined")
                    continue
                if loaded is None:
                    continue
                self._tenants[tenant_id] = TenantState(
                    tenant_id=tenant_id,
                    alphabet_size=loaded.alphabet_size,
                    events=loaded.events,
                    seq=loaded.seq,
                    journal=journal,
                )
                recovered += 1
                from_snapshot += int(loaded.from_snapshot)
                replayed += loaded.replayed_records
        telemetry.count("serve.tenant.recovered", recovered)
        return RecoveryReport(
            tenants=recovered,
            from_snapshot=from_snapshot,
            replayed_records=replayed,
            quarantined=tuple(quarantined),
        )

    # -- detectors --------------------------------------------------------

    def detector_for(
        self, state: TenantState, family: str, window: int
    ) -> AnomalyDetector:
        """A fitted detector for (tenant, family, window), cached.

        Raises:
            ScoreRefusal: 422 when the tenant's normal database cannot
                support the window (fewer events than one window), or
                propagated configuration errors as 404/422 refusals.
        """
        cached = state.detectors.get((family, window))
        if cached is not None:
            return cached
        if state.event_count < window:
            raise ScoreRefusal(
                f"tenant {state.tenant_id!r} holds {state.event_count} "
                f"training events, fewer than one window of {window}",
                status=422,
                reason="insufficient-training",
            )
        with telemetry.span(
            "serve", "fit", tenant=state.tenant_id, family=family, dw=window
        ):
            detector = create_detector(family, window, state.alphabet_size)
            detector.fit(state.events)
        state.detectors[(family, window)] = detector
        telemetry.count("serve.fit")
        return detector
