"""Multi-tenant normal databases with crash-safe persistence.

One tenant = one normal database: the concatenated training stream its
detectors fit on.  Because every detector family in the registry fits
deterministically from that stream, recovering the stream bit-exactly
(the :mod:`repro.serve.wal` contract) recovers every score the service
would have produced — the property the crash-recovery integration test
asserts end to end.

The store keeps per-tenant fitted detectors cached and invalidates
them on ingest, so a scoring burst against a quiet tenant fits once.
All methods are synchronous and thread-compatible under the serving
bulkhead discipline: one lane worker mutates a given tenant at a time
(the asyncio server guarantees this), so no per-tenant lock is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import create_detector
from repro.exceptions import ScoreRefusal, TenantRecoveryError
from repro.runtime import telemetry
from repro.runtime.deltafit import verify_delta
from repro.runtime.shardstore import ShardedStore
from repro.runtime.store import ArtifactStore, stream_digest
from repro.serve.wal import DEFAULT_SEGMENT_BYTES, TenantJournal

#: Default per-tenant alphabet when a create request does not name one
#: (the paper corpus alphabet).
DEFAULT_ALPHABET_SIZE = 8


@dataclass
class TenantState:
    """One tenant's in-memory state, mirrored by its journal."""

    tenant_id: str
    alphabet_size: int
    events: np.ndarray
    seq: int = 0
    journal: TenantJournal | None = None
    quarantined: str | None = None
    detectors: dict[tuple[str, int], AnomalyDetector] = field(
        default_factory=dict
    )

    @property
    def event_count(self) -> int:
        """Training events accumulated so far."""
        return int(len(self.events))

    def digest(self) -> str:
        """Content digest of the normal database (recovery audits)."""
        return stream_digest(self.events)


@dataclass(frozen=True)
class RecoveryReport:
    """What a service restart reconstructed from disk."""

    tenants: int = 0
    from_snapshot: int = 0
    replayed_records: int = 0
    quarantined: tuple[str, ...] = ()


class TenantStateStore:
    """All tenants of one service instance, journaled under one root.

    Layout: ``<root>/tenants/<tenant id>/{wal.jsonl,manifest.json}``
    plus an artifact store (``<root>/store`` by default) holding the
    snapshots.

    Args:
        root: service state directory.
        store: snapshot store; defaults to ``ArtifactStore(root/"store")``.
            Pass ``None`` explicitly via ``snapshots=False`` semantics
            is not supported — snapshots are cheap and recovery falls
            back to the full log without them anyway.
        snapshot_every: take a snapshot every N ingests (0 disables).
        fsync: forwarded to each tenant's journal.
        models: the tiered fleet model store.  When attached, fitted
            detectors live in its hot LRU instead of per-tenant dicts,
            ingests *delta-fit* the count-based families in place
            (bit-identical to a refit, cost proportional to the
            batch), and serialized states ride the warm/cold tiers so
            a restart replays deltas instead of refitting.  ``None``
            keeps the original invalidate-and-refit behavior.
        delta_verify_every: every N delta updates, cross-check one
            updated detector against a cold refit of the full stream
            (0 disables).  A divergence — which the deltafit tests say
            cannot happen — invalidates the model and counts under
            ``serve.delta.diverged``, which ``repro trace validate``
            requires to be zero.
        wal_segment_bytes: forwarded to each tenant's journal; rotated
            segments fully covered by a verified snapshot are pruned.
    """

    def __init__(
        self,
        root: str | Path,
        store: ArtifactStore | None = None,
        snapshot_every: int = 8,
        fsync: bool = False,
        models: ShardedStore | None = None,
        delta_verify_every: int = 0,
        wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        self._root = Path(root)
        self._store = (
            store
            if store is not None
            else ArtifactStore(self._root / "store")
        )
        self._snapshot_every = int(snapshot_every)
        self._fsync = fsync
        self._models = models
        self._delta_verify_every = int(delta_verify_every)
        self._wal_segment_bytes = int(wal_segment_bytes)
        self._delta_updates = 0
        self._resident_bytes = 0
        self._tenants: dict[str, TenantState] = {}

    @property
    def root(self) -> Path:
        """The service state directory."""
        return self._root

    @property
    def store(self) -> ArtifactStore:
        """The snapshot artifact store."""
        return self._store

    @property
    def tenants(self) -> dict[str, TenantState]:
        """Live tenants by id (includes quarantined ones)."""
        return self._tenants

    @property
    def models(self) -> ShardedStore | None:
        """The tiered fleet model store, if attached."""
        return self._models

    def _tenant_dir(self, tenant_id: str) -> Path:
        return self._root / "tenants" / tenant_id

    def _journal(self, tenant_id: str) -> TenantJournal:
        return TenantJournal(
            self._tenant_dir(tenant_id),
            fsync=self._fsync,
            segment_bytes=self._wal_segment_bytes,
        )

    @staticmethod
    def model_key(tenant_id: str, family: str, window: int) -> str:
        """The fleet-store key for one (tenant, family, window) model."""
        return f"{tenant_id}|{family}|{window}"

    def _account_events(self, delta_bytes: int) -> None:
        """Track per-tenant training-stream residency (``/stats``)."""
        if delta_bytes:
            self._resident_bytes += int(delta_bytes)
            telemetry.count("serve.tenants.resident_bytes", int(delta_bytes))

    # -- lifecycle --------------------------------------------------------

    def peek_alphabet(self, tenant_id: str) -> int | None:
        """The tenant's alphabet size without any refusal semantics.

        The batch scheduler groups queued jobs by (family, window,
        alphabet) *before* they reach a worker; this peek must not
        pre-empt the refusals (unknown tenant, quarantine) that the
        worker raises at scoring time, so it answers ``None`` for
        anything it cannot see instead of raising.
        """
        state = self._tenants.get(tenant_id)
        return None if state is None else state.alphabet_size

    def detector_payload(
        self, state: TenantState, family: str, window: int
    ) -> dict | None:
        """A read-only snapshot of one fitted model for dispatch.

        What a process-rung batch worker ships instead of the live
        detector: the exported fit-state arrays
        (:meth:`~repro.detectors.base.AnomalyDetector
        .export_fit_state`, documented bit-identical on import) plus
        the cell coordinates.  The caller must not mutate the arrays —
        they may alias the hot model's own state.  ``None`` when the
        family keeps no exportable state (the child then falls back
        to the sequential ladder in the parent).
        """
        detector = self.detector_for(state, family, window)
        try:
            fit_state = detector.export_fit_state()
        except Exception:
            return None
        if fit_state is None:
            return None
        return {
            "family": family,
            "window": window,
            "alphabet_size": state.alphabet_size,
            "fit_state": fit_state,
        }

    def get(self, tenant_id: str) -> TenantState:
        """The tenant, or a :class:`ScoreRefusal` (404) if unknown."""
        state = self._tenants.get(tenant_id)
        if state is None:
            raise ScoreRefusal(
                f"unknown tenant {tenant_id!r}",
                status=404,
                reason="unknown-tenant",
            )
        if state.quarantined is not None:
            raise ScoreRefusal(
                f"tenant {tenant_id!r} is quarantined: {state.quarantined}",
                status=503,
                reason="quarantined",
            )
        return state

    def open(
        self, tenant_id: str, alphabet_size: int | None = None
    ) -> TenantState:
        """The tenant, created (and journaled) if it does not exist."""
        state = self._tenants.get(tenant_id)
        if state is not None:
            if state.quarantined is not None:
                raise ScoreRefusal(
                    f"tenant {tenant_id!r} is quarantined: "
                    f"{state.quarantined}",
                    status=503,
                    reason="quarantined",
                )
            return state
        size = (
            int(alphabet_size)
            if alphabet_size is not None
            else DEFAULT_ALPHABET_SIZE
        )
        if size < 2:
            raise ScoreRefusal(
                f"alphabet_size must be >= 2, got {size}",
                status=422,
                reason="invalid-alphabet",
            )
        journal = self._journal(tenant_id)
        journal.write_manifest(size)
        state = TenantState(
            tenant_id=tenant_id,
            alphabet_size=size,
            events=np.empty(0, dtype=np.int64),
            journal=journal,
        )
        self._tenants[tenant_id] = state
        telemetry.count("serve.tenant.created")
        return state

    # -- mutation ---------------------------------------------------------

    def validate_events(
        self, events: object, alphabet_size: int
    ) -> np.ndarray:
        """Canonical int64 view of a request's events, or a 422 refusal.

        The *only* gate between wire input and detector input: a
        poisoned payload (out-of-alphabet codes, wrong shape, NaNs)
        becomes an explicit refusal here — the pipeline never scores
        what it could not validate, which is half of the no-wrong-score
        invariant.
        """
        try:
            data = np.asarray(events, dtype=np.int64)
        except (TypeError, ValueError, OverflowError) as error:
            raise ScoreRefusal(
                f"events are not an integer sequence: {error}",
                status=422,
                reason="invalid-events",
            ) from None
        if data.ndim != 1 or data.size == 0:
            raise ScoreRefusal(
                f"events must be a non-empty flat sequence, got shape "
                f"{data.shape}",
                status=422,
                reason="invalid-events",
            )
        if data.min() < 0 or data.max() >= alphabet_size:
            raise ScoreRefusal(
                "events contain codes outside the alphabet "
                f"[0, {alphabet_size - 1}]",
                status=422,
                reason="invalid-events",
            )
        return data

    def ingest(self, state: TenantState, events: np.ndarray) -> int:
        """Append validated training events; returns the new ``seq``.

        WAL-first: the record is durable before the in-memory state
        (and therefore any acknowledgement) reflects it.  With the
        fleet model store attached, the tenant's hot detectors are
        *delta-fitted* in place instead of invalidated — bit-identical
        to a refit at a cost proportional to the batch.
        """
        seq = state.seq + 1
        assert state.journal is not None
        state.journal.append(seq, events)
        prior = state.events
        state.events = (
            events.copy()
            if state.event_count == 0
            else np.concatenate([prior, events])
        )
        state.seq = seq
        self._account_events(int(np.asarray(events).nbytes))
        if self._models is None:
            state.detectors.clear()
        else:
            self._delta_update_models(state, events, prior)
        telemetry.count("serve.ingest")
        telemetry.count("serve.ingest.events", len(events))
        if self._snapshot_every and seq % self._snapshot_every == 0:
            key = state.journal.snapshot(
                state.tenant_id,
                seq,
                state.events,
                state.alphabet_size,
                self._store,
            )
            if key is not None:
                # The snapshot is verified readable: rotated WAL
                # segments it fully covers are dead weight.
                state.journal.prune_segments(seq)
                if self._models is not None:
                    self._demote_models(state)
        return seq

    # -- fleet model store ------------------------------------------------

    @staticmethod
    def _stream_prefix_digest(events: np.ndarray, count: int) -> str:
        """Digest of the first ``min(64, count)`` events.

        The training stream is append-only, so this prefix is stable
        for every model persisted at ``event_count >= count`` — a
        cheap identity check that catches a recreated tenant whose
        (seq, event count) happen to collide with stale model arrays.
        """
        return stream_digest(events[: min(64, int(count))])

    def _stage_model(
        self,
        state: TenantState,
        key: str,
        detector: AnomalyDetector,
        cold: bool = False,
    ) -> None:
        """Persist a fitted model into the warm (and hot) tiers."""
        assert self._models is not None
        exported = detector.export_fit_state()
        if not exported:
            return
        arrays = dict(exported)
        arrays["__meta"] = np.asarray(
            [state.seq, state.event_count, state.alphabet_size],
            dtype=np.int64,
        )
        digest = self._stream_prefix_digest(state.events, state.event_count)
        arrays["__digest"] = np.frombuffer(
            digest.encode("ascii"), dtype=np.uint8
        ).copy()
        self._models.put(key, arrays, cold=cold)
        self._models.hot.put(key, detector, detector.state_nbytes())

    def _delta_update_models(
        self, state: TenantState, batch: np.ndarray, prior: np.ndarray
    ) -> None:
        """Fold an ingested batch into the tenant's hot detectors.

        Detectors without a delta path (or fitted before one window of
        history existed) are invalidated and refit on next use; the
        count-based families merge the batch in place and re-persist.
        """
        assert self._models is not None
        for key in self._models.hot.keys_with_prefix(f"{state.tenant_id}|"):
            detector = self._models.hot.get(key)
            if not isinstance(detector, AnomalyDetector):
                continue
            window = detector.window_length
            if not detector.supports_delta_fit or len(prior) < window - 1:
                self._models.invalidate(key)
                continue
            tail = prior[len(prior) - (window - 1) :]
            detector.update_batch(batch, tail)
            self._delta_updates += 1
            telemetry.count("serve.delta.update")
            if (
                self._delta_verify_every
                and self._delta_updates % self._delta_verify_every == 0
            ):
                telemetry.count("serve.delta.verify")
                if not verify_delta(detector, state.events):
                    telemetry.count("serve.delta.diverged")
                    self._models.invalidate(key)
                    continue
            self._stage_model(state, key, detector)

    def _demote_models(self, state: TenantState) -> None:
        """Write the tenant's hot models through to the cold tier.

        Runs at the snapshot cadence so a model's durable copy is
        never staler than the stream snapshot next to it.
        """
        assert self._models is not None
        for key in self._models.hot.keys_with_prefix(f"{state.tenant_id}|"):
            detector = self._models.hot.get(key)
            if isinstance(detector, AnomalyDetector):
                self._stage_model(state, key, detector, cold=True)

    def _load_model(
        self, state: TenantState, family: str, window: int, key: str
    ) -> AnomalyDetector | None:
        """Revive a detector from the warm/cold tiers, replaying deltas.

        The stored ``__meta`` records the event count the arrays were
        fitted through; a shortfall against the tenant's current
        stream is closed with one :meth:`~repro.detectors.base.
        AnomalyDetector.update_batch` over the missed suffix — the
        recovery path that makes restarts replay deltas, not refits.
        Any mismatch (foreign digest, future meta, failed import)
        invalidates the entry and falls back to a cold fit.
        """
        assert self._models is not None
        held = self._models.get(key)
        if held is None:
            return None
        arrays = dict(held)
        meta = np.asarray(arrays.pop("__meta", np.empty(0))).ravel()
        stored_digest = arrays.pop("__digest", None)
        if meta.size != 3:
            self._models.invalidate(key)
            return None
        stored_count = int(meta[1])
        if (
            int(meta[2]) != state.alphabet_size
            or stored_count > state.event_count
            or stored_count < window
            or stored_digest is None
            or bytes(np.asarray(stored_digest, dtype=np.uint8)).decode(
                "ascii", "replace"
            )
            != self._stream_prefix_digest(state.events, stored_count)
        ):
            self._models.invalidate(key)
            return None
        detector = create_detector(family, window, state.alphabet_size)
        if not detector.import_fit_state(arrays):
            self._models.invalidate(key)
            return None
        if stored_count < state.event_count:
            if not detector.supports_delta_fit:
                return None  # stale and not mergeable: refit
            detector.update_batch(
                state.events[stored_count:],
                state.events[stored_count - (window - 1) : stored_count],
            )
            telemetry.count("serve.delta.replay")
        return detector

    # -- recovery ---------------------------------------------------------

    def recover_all(self, store_faulty: bool = False) -> RecoveryReport:
        """Reconstruct every journaled tenant from disk.

        A tenant whose state cannot be reconstructed faithfully is
        *quarantined* — registered, but refusing all traffic with an
        advisory — so one damaged tenant never blocks the fleet and is
        never served from guessed state.

        Args:
            store_faulty: chaos hook — treat snapshot reads as failed.
        """
        tenants_dir = self._root / "tenants"
        recovered = 0
        from_snapshot = 0
        replayed = 0
        quarantined: list[str] = []
        if tenants_dir.is_dir():
            for directory in sorted(p for p in tenants_dir.iterdir() if p.is_dir()):
                tenant_id = directory.name
                journal = TenantJournal(directory, fsync=self._fsync)
                try:
                    loaded = journal.recover(
                        self._store, store_faulty=store_faulty
                    )
                except TenantRecoveryError as error:
                    self._tenants[tenant_id] = TenantState(
                        tenant_id=tenant_id,
                        alphabet_size=DEFAULT_ALPHABET_SIZE,
                        events=np.empty(0, dtype=np.int64),
                        journal=journal,
                        quarantined=str(error),
                    )
                    quarantined.append(tenant_id)
                    telemetry.count("serve.tenant.quarantined")
                    continue
                if loaded is None:
                    continue
                self._tenants[tenant_id] = TenantState(
                    tenant_id=tenant_id,
                    alphabet_size=loaded.alphabet_size,
                    events=loaded.events,
                    seq=loaded.seq,
                    journal=journal,
                )
                self._account_events(int(loaded.events.nbytes))
                recovered += 1
                from_snapshot += int(loaded.from_snapshot)
                replayed += loaded.replayed_records
        telemetry.count("serve.tenant.recovered", recovered)
        return RecoveryReport(
            tenants=recovered,
            from_snapshot=from_snapshot,
            replayed_records=replayed,
            quarantined=tuple(quarantined),
        )

    # -- detectors --------------------------------------------------------

    def detector_for(
        self, state: TenantState, family: str, window: int
    ) -> AnomalyDetector:
        """A fitted detector for (tenant, family, window), cached.

        With the fleet store attached the lookup ladder is hot LRU →
        warm mmap shard (delta-replayed up to the current stream) →
        cold store → cold fit; without it, the original per-tenant
        dict cache with invalidate-on-ingest.

        Raises:
            ScoreRefusal: 422 when the tenant's normal database cannot
                support the window (fewer events than one window), or
                propagated configuration errors as 404/422 refusals.
        """
        if self._models is None:
            cached = state.detectors.get((family, window))
            if cached is not None:
                return cached
        else:
            key = self.model_key(state.tenant_id, family, window)
            hot = self._models.hot.get(key)
            if isinstance(hot, AnomalyDetector):
                # Ingest keeps hot models current, so no staleness check.
                return hot
        if state.event_count < window:
            raise ScoreRefusal(
                f"tenant {state.tenant_id!r} holds {state.event_count} "
                f"training events, fewer than one window of {window}",
                status=422,
                reason="insufficient-training",
            )
        detector = (
            self._load_model(state, family, window, key)
            if self._models is not None
            else None
        )
        if detector is None:
            with telemetry.span(
                "serve",
                "fit",
                tenant=state.tenant_id,
                family=family,
                dw=window,
            ):
                detector = create_detector(
                    family, window, state.alphabet_size
                )
                detector.fit(state.events)
            telemetry.count("serve.fit")
        if self._models is None:
            state.detectors[(family, window)] = detector
        else:
            self._stage_model(state, key, detector)
        return detector

    # -- observability ----------------------------------------------------

    def memory_stats(self) -> dict:
        """Per-tenant and model-tier memory accounting for ``/stats``.

        ``tenants_resident_bytes`` is maintained by counter deltas
        (mirrored to the ``serve.tenants.resident_bytes`` telemetry
        counter) and cross-checked here against the ground truth sum
        so a drift shows up as a failing assertion in the tests rather
        than a silently wrong dashboard.
        """
        actual = sum(
            int(state.events.nbytes) for state in self._tenants.values()
        )
        stats: dict = {
            "tenants": len(self._tenants),
            "tenants_resident_bytes": actual,
            "tenants_resident_bytes_counter": int(self._resident_bytes),
        }
        if self._models is not None:
            hot = self._models.hot.stats
            store = self._models.stats
            stats["hot_tier"] = {
                "resident_entries": hot.resident_entries,
                "resident_bytes": hot.resident_bytes,
                "cap_bytes": hot.cap_bytes,
                "hits": hot.hits,
                "misses": hot.misses,
                "evictions": hot.evictions,
            }
            stats["model_store"] = {
                "warm_hits": store.warm_hits,
                "warm_misses": store.warm_misses,
                "cold_hits": store.cold_hits,
                "promotions": store.promotions,
                "compactions": store.compactions,
                "pending_entries": store.pending_entries,
                "shard_entries": store.shard_entries,
            }
        return stats
