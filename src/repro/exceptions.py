"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class AlphabetError(ReproError):
    """A symbol or encoding operation violated the alphabet contract.

    Raised when a symbol is not a member of an :class:`~repro.sequences.alphabet.Alphabet`,
    when an encoded value is out of range, or when an alphabet is constructed
    from invalid symbols (duplicates, empty symbol sets, ...).
    """


class WindowError(ReproError):
    """A sliding-window operation received an invalid window length.

    Window lengths must be positive and no longer than the stream they are
    applied to.
    """


class DataGenerationError(ReproError):
    """Synthetic data could not be generated with the requested properties.

    Raised, for example, when a Markov transition matrix does not define a
    proper probability distribution, or when a requested stream length is
    not positive.
    """


class AnomalySynthesisError(DataGenerationError):
    """No minimal foreign sequence with the requested properties exists.

    The search for a minimal foreign sequence composed of rare subsequences
    is exhaustive over the training corpus; this error signals that the
    corpus does not admit such a sequence for the requested anomaly size.
    """


class InjectionError(DataGenerationError):
    """An anomaly could not be cleanly injected into background data.

    The clean-injection procedure of Tan & Maxion requires every boundary
    window (a window mixing anomaly and background elements) to be a
    common training sequence.  When no injection site satisfies the policy
    this error is raised so the caller can re-draw the anomaly.
    """


class NotFittedError(ReproError):
    """A detector was asked to score data before being trained.

    Detectors follow a two-phase protocol: :meth:`fit` on training data,
    then :meth:`score`/:meth:`score_stream` on test data.
    """


class DetectorConfigurationError(ReproError):
    """A detector was constructed with invalid hyperparameters."""


class EvaluationError(ReproError):
    """An evaluation-harness operation received inconsistent inputs.

    Raised for malformed incident spans, test streams without injection
    metadata, or performance-map queries outside the evaluated grid.
    Within sweep execution this is the *fatal* side of the failure
    taxonomy: an :class:`EvaluationError` aborts a sweep immediately,
    whereas a :class:`TransientTaskError` is retried.
    """


class TransientTaskError(ReproError):
    """A sweep task failed in a way worth retrying.

    The retryable side of the sweep failure taxonomy: worker crashes,
    corrupt block results, and injected transient faults are wrapped in
    this class so the resilience layer re-attempts them under its retry
    budget.  Anything else that escapes a task is treated as fatal.
    """


class TaskTimeoutError(TransientTaskError):
    """A sweep task exceeded its wall-clock timeout.

    Raised (and retried) by the resilience layer when one
    (family, window) block runs past ``ResiliencePolicy.task_timeout``.
    On the process backend the hung worker is terminated; on the
    thread/serial backends the attempt is abandoned and a fresh one is
    scheduled.
    """


class CheckpointError(ReproError):
    """A sweep checkpoint file is missing, malformed, or inconsistent."""


class SweepAbortedError(EvaluationError):
    """A resilient sweep gave up after exhausting its recovery options.

    Raised when a task fails fatally or exhausts its retry budget.  The
    cells completed before the abort are already streamed to the
    checkpoint file (when one was configured), so a re-run with
    ``resume_from`` continues where the sweep stopped.  The partial
    :class:`~repro.runtime.resilience.RunReport` is attached as
    ``report`` (``None`` when unavailable).
    """

    def __init__(self, message: str, report: "object | None" = None) -> None:
        super().__init__(message)
        self.report = report


class TelemetryError(ReproError):
    """A telemetry trace file is unreadable or violates its schema.

    Raised by the trace readers/validators in
    :mod:`repro.runtime.telemetry` (``repro trace validate`` turns it
    into a nonzero exit code).  Never raised on the emission path —
    collecting telemetry must not be able to fail a sweep.
    """


class ServeError(ReproError):
    """A serving-layer operation failed.

    Base of the online scoring service's failure taxonomy
    (:mod:`repro.serve`).  Everything under it is an *explicit*
    failure: the service refuses or retries, it never silently
    degrades a score.
    """


class TenantRecoveryError(ServeError):
    """A tenant's persisted state could not be recovered faithfully.

    Raised when the write-ahead log is corrupt beyond the tolerated
    torn tail (mid-file damage, a sequence gap) or when the snapshot
    an already-compacted log depends on is unreadable.  The tenant is
    quarantined — scoring requests are refused with an advisory —
    rather than served from a state that might differ from what was
    acknowledged before the crash.
    """


class ScoreRefusal(ServeError):
    """The service declined to score a request — never a wrong score.

    The serving pipeline's only alternative to a correct score: over
    budget, invalid input, breaker open, queue saturated, ladder
    exhausted, or tenant quarantined.  Carries the HTTP status and a
    machine-readable advisory so clients can distinguish retryable
    refusals (429/503/504, honor ``retry_after``) from permanent ones
    (4xx).
    """

    def __init__(
        self,
        message: str,
        status: int = 503,
        reason: str = "refused",
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.reason = str(reason)
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        """Whether a client should retry (server-side, transient)."""
        return self.status in (429, 503, 504)


class PlanError(ReproError):
    """An experiment plan is malformed or cannot be executed.

    Raised by :mod:`repro.plans` when a plan file fails to parse, a
    stage references an unknown dependency, the stage graph contains a
    cycle, or a dispatch run violates its protocol (an unclaimable
    stage, a missing run directory).  Every message names the stage at
    fault — a bad plan must fail loudly at validation, never hang the
    DAG executor.
    """


class CoverageError(ReproError):
    """Coverage-algebra operands are incompatible.

    Coverage sets can only be combined when they were computed over the
    same (anomaly size x detector window) grid.
    """
