"""UNM-style synthetic system-call traces.

The paper grounds its anomaly choice in natural data: system-call
datasets "replete with minimal foreign sequences" (Section 4.1, citing
the authors' stide operational-limits study over UNM-style traces).
The public UNM traces are not available offline, so this subpackage
synthesizes the equivalent substrate: per-program behavior models that
emit sessions of system calls with common execution paths, rare
error-handling paths, and exploit variants whose manifestations are
foreign sequences — the same n-gram phenomenology the paper relies on.

See DESIGN.md ("Substitutions") for the fidelity argument.
"""

from repro.syscalls.fleet import FleetMonitor, FleetSpec, SyntheticFleet
from repro.syscalls.generator import (
    LabeledTrace,
    SyscallDataset,
    TraceGenerator,
    build_dataset,
    truth_window_regions,
)
from repro.syscalls.programs import (
    ExecutionPath,
    ProgramModel,
    ftpd_model,
    lpr_model,
    sendmail_model,
)

from repro.syscalls.mimicry import MimicryResult, pad_to_mimic

__all__ = [
    "ExecutionPath",
    "FleetMonitor",
    "FleetSpec",
    "SyntheticFleet",
    "MimicryResult",
    "pad_to_mimic",
    "LabeledTrace",
    "ProgramModel",
    "SyscallDataset",
    "TraceGenerator",
    "build_dataset",
    "ftpd_model",
    "lpr_model",
    "sendmail_model",
    "truth_window_regions",
]
