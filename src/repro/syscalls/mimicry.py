"""Mimicry attacks: making an exploit manifest as normal behavior.

Wagner & Soto (cited as [19]) showed that attacks can be manipulated to
manifest as sequences "invisible to a given anomaly-based intrusion
detection system".  The paper uses this to motivate question C of
Figure 1: detecting attacks that manifest as normal behavior is out of
scope for *any* anomaly detector.

:func:`pad_to_mimic` implements the classic padding transformation: the
attacker interleaves no-op system calls into the exploit sequence so
that every window of the padded sequence exists in the normal
behavior.  The transformation searches over insertions of observed
call subsequences; when it succeeds, the padded exploit slips past
Stide at the targeted window length — turning a DETECTED verdict into
NOT_ANOMALOUS in the Figure-1 chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DataGenerationError
from repro.sequences.ngram_store import NgramStore


@dataclass(frozen=True)
class MimicryResult:
    """Outcome of a padding search.

    Attributes:
        padded: the transformed call sequence (original calls in order,
            with normal padding interleaved), or ``None`` on failure.
        original_length: length of the unpadded exploit.
        attempts: number of search states expanded.
    """

    padded: tuple[int, ...] | None
    original_length: int
    attempts: int

    @property
    def succeeded(self) -> bool:
        """Whether a fully normal-looking padding was found."""
        return self.padded is not None

    @property
    def overhead(self) -> int:
        """Extra calls inserted (0 when the search failed)."""
        if self.padded is None:
            return 0
        return len(self.padded) - self.original_length


def window_is_normal(
    window: tuple[int, ...], store: NgramStore, window_length: int
) -> bool:
    """Whether every complete ``window_length``-gram of ``window`` is known."""
    if len(window) < window_length:
        return True
    return all(
        store.contains(window[i : i + window_length])
        for i in range(len(window) - window_length + 1)
    )


def pad_to_mimic(
    exploit: tuple[int, ...],
    store: NgramStore,
    window_length: int,
    max_padding: int = 32,
    max_attempts: int = 200_000,
) -> MimicryResult:
    """Search for a padding that makes the exploit look normal to Stide.

    The search explores, depth-first, sequences that preserve the
    exploit's calls in order while inserting observed symbols between
    them, pruning any prefix containing an unknown
    ``window_length``-gram.  Success means the padded sequence contains
    no foreign window — Stide at that window length cannot see it.

    Args:
        exploit: the attack's call sequence (alphabet codes).  The
            attacker must still execute these calls in order.
        store: n-gram store of normal behavior; must index
            ``window_length``.
        window_length: the deployed Stide window to evade.
        max_padding: maximum number of inserted calls.
        max_attempts: search-state budget.

    Returns:
        A :class:`MimicryResult`; ``padded`` is ``None`` when no
        normal-looking interleaving exists within the budgets (the
        defender's win).

    Raises:
        DataGenerationError: on an empty exploit or bad window length.
    """
    if not exploit:
        raise DataGenerationError("exploit sequence must be non-empty")
    if window_length < 2:
        raise DataGenerationError(
            f"window_length must be >= 2, got {window_length}"
        )
    symbols = sorted(
        {ngram[0] for ngram in store.ngrams(window_length)}
        | {ngram[-1] for ngram in store.ngrams(window_length)}
    )
    attempts = 0

    def extend(prefix: tuple[int, ...], remaining: tuple[int, ...],
               padding_left: int) -> tuple[int, ...] | None:
        nonlocal attempts
        attempts += 1
        if attempts > max_attempts:
            return None
        # Prune: the newest complete window must be normal.
        if len(prefix) >= window_length and not store.contains(
            prefix[-window_length:]
        ):
            return None
        if not remaining:
            return prefix
        # Option 1: emit the next exploit call.
        result = extend(prefix + (remaining[0],), remaining[1:], padding_left)
        if result is not None:
            return result
        # Option 2: insert one padding call.
        if padding_left > 0:
            for symbol in symbols:
                result = extend(
                    prefix + (symbol,), remaining, padding_left - 1
                )
                if result is not None:
                    return result
        return None

    padded = extend((), tuple(int(c) for c in exploit), max_padding)
    if padded is not None and not window_is_normal(padded, store, window_length):
        raise DataGenerationError("mimicry search returned a non-normal sequence")
    return MimicryResult(
        padded=padded, original_length=len(exploit), attempts=attempts
    )
