"""Fleet monitoring: per-program profiles versus one pooled profile.

Forrest et al.'s "sense of self" — the lineage behind Stide — profiles
each program separately: what is normal for ``lpr`` is an anomaly
inside ``sendmail``.  A pooled profile trained on every program's
traces is strictly more permissive: any behavior normal for *some*
program is normal everywhere, so cross-program misuse (a compromised
daemon exhibiting another program's call patterns) becomes invisible.

:class:`FleetMonitor` manages one detector per program plus the pooled
baseline, and the E22 bench quantifies the granularity effect.  All
profiles share one :class:`~repro.runtime.cache.WindowCache`: the
pooled fit re-slides exactly the streams the per-program fits already
slid, so the shared cache removes that duplicate work.

:class:`SyntheticFleet` scales the same idea to serving benchmarks: a
deterministic population of 100k+ tenants, each running one of a few
heterogeneous program profiles (distinct phrase structure per
program), with Zipf-distributed activity so a handful of tenants stay
hot while the long tail sleeps in the mmap/cold tiers.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import create_detector
from repro.exceptions import DetectorConfigurationError, EvaluationError
from repro.runtime.cache import WindowCache
from repro.sequences.alphabet import Alphabet
from repro.syscalls.generator import SyscallDataset

DetectorFactory = Callable[[], AnomalyDetector]


class FleetMonitor:
    """One detector per monitored program, plus a pooled baseline.

    Args:
        datasets: one labeled dataset per program (all sharing an
            alphabet).
        window_length: the detector window for every profile.
        family: registered detector name (default ``stide``).
        **family_kwargs: forwarded to each detector's constructor.

    Raises:
        DetectorConfigurationError: on duplicate programs or mixed
            alphabets.
    """

    def __init__(
        self,
        datasets: Iterable[SyscallDataset],
        window_length: int,
        family: str = "stide",
        **family_kwargs: object,
    ) -> None:
        dataset_list = list(datasets)
        if not dataset_list:
            raise DetectorConfigurationError(
                "fleet monitoring requires at least one program dataset"
            )
        names = [dataset.program_name for dataset in dataset_list]
        if len(names) != len(set(names)):
            raise DetectorConfigurationError(
                f"duplicate program datasets: {names}"
            )
        alphabet = dataset_list[0].alphabet
        for dataset in dataset_list[1:]:
            if dataset.alphabet != alphabet:
                raise DetectorConfigurationError(
                    "all fleet datasets must share one alphabet"
                )
        self._alphabet: Alphabet = alphabet
        self._window_length = window_length
        self._cache = WindowCache()
        self._profiles: dict[str, AnomalyDetector] = {}
        for dataset in dataset_list:
            detector = create_detector(
                family, window_length, alphabet.size, **family_kwargs
            ).attach_cache(self._cache)
            detector.fit_many(dataset.training_streams())
            self._profiles[dataset.program_name] = detector
        pooled = create_detector(
            family, window_length, alphabet.size, **family_kwargs
        ).attach_cache(self._cache)
        pooled.fit_many(
            [
                stream
                for dataset in dataset_list
                for stream in dataset.training_streams()
            ]
        )
        self._pooled = pooled

    @property
    def programs(self) -> tuple[str, ...]:
        """Monitored program names."""
        return tuple(self._profiles)

    @property
    def window_length(self) -> int:
        """The common detector window."""
        return self._window_length

    @property
    def alphabet(self) -> Alphabet:
        """The shared encoding alphabet."""
        return self._alphabet

    @property
    def cache(self) -> WindowCache:
        """The window cache every fleet profile shares."""
        return self._cache

    def profile(self, program: str) -> AnomalyDetector:
        """The per-program detector.

        Raises:
            EvaluationError: for unmonitored programs.
        """
        try:
            return self._profiles[program]
        except KeyError:
            raise EvaluationError(
                f"program {program!r} is not monitored; fleet covers "
                f"{', '.join(self.programs)}"
            ) from None

    def pooled_profile(self) -> AnomalyDetector:
        """The single profile trained on every program's traces."""
        return self._pooled

    def score(self, program: str, stream: np.ndarray) -> np.ndarray:
        """Per-window responses of the owning program's profile."""
        return self.profile(program).score_stream(stream)

    def score_pooled(self, stream: np.ndarray) -> np.ndarray:
        """Per-window responses of the pooled profile."""
        return self._pooled.score_stream(stream)


# -- synthetic serving fleets -------------------------------------------------


@dataclass(frozen=True)
class FleetSpec:
    """Shape of a synthetic tenant population.

    Attributes:
        tenants: population size.
        seed: master seed; every stream is a pure function of
            ``(seed, tenant, step)`` so any tenant's history can be
            regenerated independently, in any order, on any machine.
        zipf_exponent: activity skew (``s`` in ``rank**-s``); 1.1
            gives the classic "few hot tenants, long cold tail".
        train_events: initial training stream length per tenant.
        batch_events: events per steady-state ingest batch.
        programs: program mix; tenants are assigned round-robin.
        alphabet_size: shared alphabet.
    """

    tenants: int
    seed: int = 0
    zipf_exponent: float = 1.1
    train_events: int = 64
    batch_events: int = 32
    programs: tuple[str, ...] = ("sendmail", "lpr", "ftpd")
    alphabet_size: int = 8


class SyntheticFleet:
    """Deterministic heterogeneous tenant population for fleet benches.

    Each program has a distinct *phrase book* — short call sequences
    drawn once from the program's own seed — and a tenant's streams
    are phrase concatenations sampled by the tenant's private
    generator.  Streams therefore have real n-gram structure (packed
    databases deduplicate within a program) while tenants of different
    programs stay disjoint, the heterogeneity the tiered store must
    absorb.

    Activity follows a Zipf law over a seeded rank permutation, so
    tenant ids carry no ordering signal but traffic is heavily skewed.
    """

    _PHRASES_PER_PROGRAM = 6
    _PHRASE_LENGTH_RANGE = (4, 9)

    def __init__(self, spec: FleetSpec) -> None:
        if spec.tenants <= 0:
            raise ValueError(f"tenants must be positive, got {spec.tenants}")
        if not spec.programs:
            raise ValueError("the program mix cannot be empty")
        if spec.zipf_exponent <= 0:
            raise ValueError(
                f"zipf_exponent must be positive, got {spec.zipf_exponent}"
            )
        self._spec = spec
        self._phrase_books = tuple(
            self._phrase_book(index) for index in range(len(spec.programs))
        )
        rank_rng = np.random.default_rng([spec.seed, 0xF1EE7])
        ranks = rank_rng.permutation(spec.tenants) + 1
        weights = ranks.astype(np.float64) ** -spec.zipf_exponent
        self._weights = weights / weights.sum()

    @property
    def spec(self) -> FleetSpec:
        """The population shape."""
        return self._spec

    @property
    def activity_weights(self) -> np.ndarray:
        """Per-tenant traffic probabilities (sum to 1)."""
        return self._weights

    def _phrase_book(self, program_index: int) -> tuple[np.ndarray, ...]:
        rng = np.random.default_rng(
            [self._spec.seed, 0xB00C, program_index]
        )
        low, high = self._PHRASE_LENGTH_RANGE
        return tuple(
            rng.integers(
                0,
                self._spec.alphabet_size,
                size=int(rng.integers(low, high)),
                dtype=np.int64,
            )
            for _ in range(self._PHRASES_PER_PROGRAM)
        )

    def program_of(self, tenant: int) -> str:
        """The tenant's assigned program (deterministic round-robin)."""
        return self._spec.programs[tenant % len(self._spec.programs)]

    def _compose(
        self, rng: np.random.Generator, length: int, tenant: int
    ) -> np.ndarray:
        phrases = self._phrase_books[tenant % len(self._phrase_books)]
        shortest = min(len(phrase) for phrase in phrases)
        picks = rng.integers(
            0, len(phrases), size=length // shortest + 1
        )
        stream = np.concatenate([phrases[pick] for pick in picks])
        return stream[:length]

    def training_stream(self, tenant: int) -> np.ndarray:
        """The tenant's initial normal database (``train_events`` long)."""
        rng = np.random.default_rng([self._spec.seed, tenant])
        return self._compose(rng, self._spec.train_events, tenant)

    def batch(self, tenant: int, step: int) -> np.ndarray:
        """The tenant's ingest batch at ``step`` (``batch_events`` long)."""
        rng = np.random.default_rng([self._spec.seed, tenant, step + 1])
        return self._compose(rng, self._spec.batch_events, tenant)

    def sample_tenants(self, step: int, count: int) -> np.ndarray:
        """``count`` Zipf-weighted tenant draws for one traffic step."""
        rng = np.random.default_rng([self._spec.seed, 0x7AFF1C, step])
        return rng.choice(
            self._spec.tenants, size=count, p=self._weights
        )
