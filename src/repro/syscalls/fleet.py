"""Fleet monitoring: per-program profiles versus one pooled profile.

Forrest et al.'s "sense of self" — the lineage behind Stide — profiles
each program separately: what is normal for ``lpr`` is an anomaly
inside ``sendmail``.  A pooled profile trained on every program's
traces is strictly more permissive: any behavior normal for *some*
program is normal everywhere, so cross-program misuse (a compromised
daemon exhibiting another program's call patterns) becomes invisible.

:class:`FleetMonitor` manages one detector per program plus the pooled
baseline, and the E22 bench quantifies the granularity effect.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import create_detector
from repro.exceptions import DetectorConfigurationError, EvaluationError
from repro.sequences.alphabet import Alphabet
from repro.syscalls.generator import SyscallDataset

DetectorFactory = Callable[[], AnomalyDetector]


class FleetMonitor:
    """One detector per monitored program, plus a pooled baseline.

    Args:
        datasets: one labeled dataset per program (all sharing an
            alphabet).
        window_length: the detector window for every profile.
        family: registered detector name (default ``stide``).
        **family_kwargs: forwarded to each detector's constructor.

    Raises:
        DetectorConfigurationError: on duplicate programs or mixed
            alphabets.
    """

    def __init__(
        self,
        datasets: Iterable[SyscallDataset],
        window_length: int,
        family: str = "stide",
        **family_kwargs: object,
    ) -> None:
        dataset_list = list(datasets)
        if not dataset_list:
            raise DetectorConfigurationError(
                "fleet monitoring requires at least one program dataset"
            )
        names = [dataset.program_name for dataset in dataset_list]
        if len(names) != len(set(names)):
            raise DetectorConfigurationError(
                f"duplicate program datasets: {names}"
            )
        alphabet = dataset_list[0].alphabet
        for dataset in dataset_list[1:]:
            if dataset.alphabet != alphabet:
                raise DetectorConfigurationError(
                    "all fleet datasets must share one alphabet"
                )
        self._alphabet: Alphabet = alphabet
        self._window_length = window_length
        self._profiles: dict[str, AnomalyDetector] = {}
        for dataset in dataset_list:
            detector = create_detector(
                family, window_length, alphabet.size, **family_kwargs
            )
            detector.fit_many(dataset.training_streams())
            self._profiles[dataset.program_name] = detector
        pooled = create_detector(
            family, window_length, alphabet.size, **family_kwargs
        )
        pooled.fit_many(
            [
                stream
                for dataset in dataset_list
                for stream in dataset.training_streams()
            ]
        )
        self._pooled = pooled

    @property
    def programs(self) -> tuple[str, ...]:
        """Monitored program names."""
        return tuple(self._profiles)

    @property
    def window_length(self) -> int:
        """The common detector window."""
        return self._window_length

    @property
    def alphabet(self) -> Alphabet:
        """The shared encoding alphabet."""
        return self._alphabet

    def profile(self, program: str) -> AnomalyDetector:
        """The per-program detector.

        Raises:
            EvaluationError: for unmonitored programs.
        """
        try:
            return self._profiles[program]
        except KeyError:
            raise EvaluationError(
                f"program {program!r} is not monitored; fleet covers "
                f"{', '.join(self.programs)}"
            ) from None

    def pooled_profile(self) -> AnomalyDetector:
        """The single profile trained on every program's traces."""
        return self._pooled

    def score(self, program: str, stream: np.ndarray) -> np.ndarray:
        """Per-window responses of the owning program's profile."""
        return self.profile(program).score_stream(stream)

    def score_pooled(self, stream: np.ndarray) -> np.ndarray:
        """Per-window responses of the pooled profile."""
        return self._pooled.score_stream(stream)
