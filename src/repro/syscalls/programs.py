"""Per-program system-call behavior models.

A :class:`ProgramModel` describes a monitored program as a weighted set
of *execution paths* — short system-call sequences corresponding to the
program's control-flow fragments.  Sessions are concatenations of
paths; common paths dominate, rare paths (error handling, uncommon
options) appear with small probability, and exploit paths model
attacks whose manifestation is a system-call ordering the program
never produces normally.

Three classic UNM-monitored programs are modeled: ``sendmail``,
``lpr`` and ``ftpd``.  The models are behavioral caricatures — what
matters for the reproduction is their n-gram phenomenology (dominant
motifs, sub-0.5%-frequency rare motifs, foreign exploit orderings),
not syscall-level fidelity to 1990s binaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DataGenerationError

#: The system-call vocabulary shared by all program models.
SYSCALL_NAMES: tuple[str, ...] = (
    "fork", "vfork", "execve", "exit", "wait4",
    "open", "close", "read", "write", "lseek",
    "stat", "fstat", "lstat", "access", "unlink",
    "rename", "mkdir", "rmdir", "chdir", "chmod",
    "chown", "dup2", "pipe", "fcntl", "ioctl",
    "mmap", "munmap", "brk", "getpid", "getuid",
    "setuid", "setgid", "setreuid", "umask", "kill",
    "socket", "connect", "bind", "listen", "accept",
    "send", "recv", "select", "sigaction", "utime",
)


@dataclass(frozen=True)
class ExecutionPath:
    """One control-flow fragment of a program.

    Attributes:
        name: label for diagnostics.
        calls: the system-call sequence the fragment emits.
        weight: relative sampling weight among the program's normal
            paths (rare paths get small weights).
    """

    name: str
    calls: tuple[str, ...]
    weight: float

    def __post_init__(self) -> None:
        if not self.calls:
            raise DataGenerationError(f"path {self.name!r} has no calls")
        if self.weight <= 0:
            raise DataGenerationError(
                f"path {self.name!r} must have positive weight, got {self.weight}"
            )
        unknown = [call for call in self.calls if call not in SYSCALL_NAMES]
        if unknown:
            raise DataGenerationError(
                f"path {self.name!r} uses unknown system calls: {unknown}"
            )


@dataclass(frozen=True)
class ProgramModel:
    """A monitored program: normal paths plus exploit variants.

    Attributes:
        name: program label.
        paths: normal execution paths (common and rare, by weight).
        exploit_paths: attack fragments; never emitted in normal
            sessions.
    """

    name: str
    paths: tuple[ExecutionPath, ...]
    exploit_paths: tuple[ExecutionPath, ...]

    def __post_init__(self) -> None:
        if len(self.paths) < 2:
            raise DataGenerationError(
                f"program {self.name!r} needs at least two normal paths"
            )
        if not self.exploit_paths:
            raise DataGenerationError(
                f"program {self.name!r} needs at least one exploit path"
            )
        names = [path.name for path in self.paths + self.exploit_paths]
        if len(names) != len(set(names)):
            raise DataGenerationError(
                f"program {self.name!r} has duplicate path names"
            )

    @property
    def rare_paths(self) -> tuple[ExecutionPath, ...]:
        """Normal paths whose weight is below 1% of the total weight."""
        total = sum(path.weight for path in self.paths)
        return tuple(path for path in self.paths if path.weight / total < 0.01)

    def path(self, name: str) -> ExecutionPath:
        """Look up a path (normal or exploit) by name."""
        for path in self.paths + self.exploit_paths:
            if path.name == name:
                return path
        raise DataGenerationError(f"program {self.name!r} has no path {name!r}")


def sendmail_model() -> ProgramModel:
    """A sendmail-like mail daemon.

    Normal behavior: accept a connection, receive a message, deliver
    locally or queue it.  Rare behavior: bounce handling and queue-run
    recovery.  Exploit: a buffer-overflow-style takeover that spawns a
    shell — ``setuid`` followed directly by ``execve``, an ordering the
    daemon never emits normally.
    """
    accept = ExecutionPath(
        "smtp-accept",
        ("accept", "getpid", "fork", "close", "sigaction", "recv", "write"),
        weight=30.0,
    )
    receive = ExecutionPath(
        "smtp-receive",
        ("recv", "write", "recv", "write", "open", "write", "close"),
        weight=40.0,
    )
    deliver = ExecutionPath(
        "local-delivery",
        ("stat", "open", "read", "write", "close", "chmod", "utime"),
        weight=25.0,
    )
    queue = ExecutionPath(
        "queue-message",
        ("umask", "open", "write", "fstat", "close", "rename"),
        weight=8.0,
    )
    bounce = ExecutionPath(
        "bounce-handling",
        ("open", "read", "unlink", "open", "write", "close", "kill"),
        weight=0.2,
    )
    queue_recovery = ExecutionPath(
        "queue-recovery",
        ("chdir", "stat", "rename", "utime", "stat", "close"),
        weight=0.15,
    )
    overflow = ExecutionPath(
        "overflow-shell",
        ("recv", "recv", "brk", "setuid", "execve"),
        weight=1.0,
    )
    forward_loop = ExecutionPath(
        "forward-file-abuse",
        ("open", "read", "setreuid", "execve", "wait4"),
        weight=1.0,
    )
    return ProgramModel(
        name="sendmail",
        paths=(accept, receive, deliver, queue, bounce, queue_recovery),
        exploit_paths=(overflow, forward_loop),
    )


def lpr_model() -> ProgramModel:
    """An lpr-like print spooler.

    Normal behavior: validate, copy the job into the spool, signal the
    daemon.  Rare behavior: spool-full cleanup.  Exploit: the classic
    lpr symlink attack — an ``lstat``-skipping unlink/chmod ordering.
    """
    validate = ExecutionPath(
        "validate-job",
        ("getuid", "stat", "access", "open", "fstat", "read", "close"),
        weight=35.0,
    )
    spool = ExecutionPath(
        "copy-to-spool",
        ("umask", "open", "write", "write", "close", "chown", "chmod"),
        weight=40.0,
    )
    notify = ExecutionPath(
        "notify-daemon",
        ("socket", "connect", "send", "recv", "close"),
        weight=20.0,
    )
    cleanup = ExecutionPath(
        "spool-full-cleanup",
        ("chdir", "stat", "unlink", "unlink", "rmdir", "mkdir"),
        weight=0.25,
    )
    symlink_attack = ExecutionPath(
        "symlink-attack",
        ("access", "unlink", "chmod", "chown", "open", "write"),
        weight=1.0,
    )
    return ProgramModel(
        name="lpr",
        paths=(validate, spool, notify, cleanup),
        exploit_paths=(symlink_attack,),
    )


def ftpd_model() -> ProgramModel:
    """An ftpd-like file-transfer daemon.

    Normal behavior: login, directory navigation, transfers.  Rare
    behavior: anonymous-upload quota handling.  Exploit: a root
    escalation spawning a shell after a crafted ``SITE`` command.
    """
    login = ExecutionPath(
        "login",
        ("accept", "recv", "getuid", "setreuid", "chdir", "send"),
        weight=20.0,
    )
    listing = ExecutionPath(
        "dir-listing",
        ("stat", "open", "read", "send", "send", "close"),
        weight=30.0,
    )
    download = ExecutionPath(
        "download",
        ("open", "fstat", "read", "send", "read", "send", "close"),
        weight=35.0,
    )
    upload = ExecutionPath(
        "upload",
        ("umask", "open", "recv", "write", "recv", "write", "close"),
        weight=15.0,
    )
    quota = ExecutionPath(
        "quota-enforcement",
        ("stat", "lstat", "unlink", "write", "send"),
        weight=0.2,
    )
    site_exec = ExecutionPath(
        "site-exec-root",
        ("recv", "setuid", "setgid", "execve"),
        weight=1.0,
    )
    return ProgramModel(
        name="ftpd",
        paths=(login, listing, download, upload, quota),
        exploit_paths=(site_exec,),
    )


def all_program_models() -> tuple[ProgramModel, ...]:
    """The three bundled program models."""
    return (sendmail_model(), lpr_model(), ftpd_model())
