"""Session sampling, exploit injection, and dataset assembly.

The generator turns a :class:`~repro.syscalls.programs.ProgramModel`
into encoded per-session traces:

* *normal* sessions — weighted i.i.d. concatenations of the program's
  normal execution paths;
* *intrusion* sessions — normal sessions with one exploit path spliced
  in at a path boundary; the injected element range is recorded as
  ground truth.

:func:`build_dataset` assembles the conventional splits: training
(normal only), test-normal (fresh normal sessions, for false-alarm
measurement) and test-intrusion (for hit measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataGenerationError, EvaluationError
from repro.sequences.alphabet import Alphabet
from repro.syscalls.programs import SYSCALL_NAMES, ExecutionPath, ProgramModel


@dataclass(frozen=True)
class LabeledTrace:
    """One encoded session with optional intrusion ground truth.

    Attributes:
        stream: encoded system-call codes.
        intrusion_region: ``(start, stop)`` element range of the
            injected exploit, or ``None`` for a normal session.
        exploit_name: name of the injected exploit path, if any.
    """

    stream: np.ndarray = field(repr=False)
    intrusion_region: tuple[int, int] | None
    exploit_name: str | None

    def __post_init__(self) -> None:
        if (self.intrusion_region is None) != (self.exploit_name is None):
            raise DataGenerationError(
                "intrusion_region and exploit_name must be set together"
            )
        if self.intrusion_region is not None:
            start, stop = self.intrusion_region
            if not 0 <= start < stop <= len(self.stream):
                raise DataGenerationError(
                    f"intrusion region {self.intrusion_region} out of range for "
                    f"stream of length {len(self.stream)}"
                )

    @property
    def is_intrusion(self) -> bool:
        """Whether this session contains an injected exploit."""
        return self.intrusion_region is not None


def truth_window_regions(
    trace: LabeledTrace, window_length: int
) -> list[tuple[int, int]]:
    """Window-start ranges overlapping the trace's intrusion region.

    The incident-span convention of the main experiment: a window is in
    the truth region when it contains at least one injected element.

    Returns an empty list for normal traces.
    """
    if window_length < 1:
        raise EvaluationError(f"window_length must be >= 1, got {window_length}")
    if trace.intrusion_region is None:
        return []
    start, stop = trace.intrusion_region
    last_start = len(trace.stream) - window_length
    if last_start < 0:
        return []
    lo = max(0, start - window_length + 1)
    hi = min(last_start, stop - 1)
    if hi < lo:
        return []
    return [(lo, hi + 1)]


class TraceGenerator:
    """Sample sessions from one program model.

    Args:
        model: the program's behavior model.
        alphabet: optional shared alphabet; defaults to the global
            system-call vocabulary, so traces from different programs
            are mutually encodable.
    """

    def __init__(self, model: ProgramModel, alphabet: Alphabet | None = None) -> None:
        self._model = model
        self._alphabet = alphabet or Alphabet(SYSCALL_NAMES)
        self._weights = np.asarray([path.weight for path in model.paths], dtype=float)
        self._weights = self._weights / self._weights.sum()

    @property
    def model(self) -> ProgramModel:
        """The generating program model."""
        return self._model

    @property
    def alphabet(self) -> Alphabet:
        """The encoding alphabet."""
        return self._alphabet

    def _encode_path(self, path: ExecutionPath) -> np.ndarray:
        return np.asarray(self._alphabet.encode(path.calls), dtype=np.int64)

    def sample_paths(
        self, rng: np.random.Generator, path_count: int
    ) -> list[ExecutionPath]:
        """Draw ``path_count`` normal paths by weight."""
        if path_count < 1:
            raise DataGenerationError(f"path_count must be >= 1, got {path_count}")
        indices = rng.choice(len(self._model.paths), size=path_count, p=self._weights)
        return [self._model.paths[int(i)] for i in indices]

    def normal_session(
        self, rng: np.random.Generator, path_count: int = 30
    ) -> LabeledTrace:
        """One normal session of ``path_count`` concatenated paths."""
        paths = self.sample_paths(rng, path_count)
        stream = np.concatenate([self._encode_path(path) for path in paths])
        return LabeledTrace(stream=stream, intrusion_region=None, exploit_name=None)

    def intrusion_session(
        self,
        rng: np.random.Generator,
        path_count: int = 30,
        exploit_name: str | None = None,
    ) -> LabeledTrace:
        """One session with an exploit spliced in at a path boundary.

        Args:
            rng: random generator.
            path_count: number of normal paths around the exploit.
            exploit_name: which exploit path to use; a random one when
                omitted.
        """
        if exploit_name is None:
            exploit = self._model.exploit_paths[
                int(rng.integers(len(self._model.exploit_paths)))
            ]
        else:
            exploit = self._model.path(exploit_name)
            if exploit not in self._model.exploit_paths:
                raise DataGenerationError(
                    f"path {exploit_name!r} is not an exploit path of "
                    f"{self._model.name!r}"
                )
        paths = self.sample_paths(rng, path_count)
        splice_at = int(rng.integers(1, path_count))  # a path boundary, not the ends
        segments: list[np.ndarray] = []
        start = 0
        for i, path in enumerate(paths):
            if i == splice_at:
                start = sum(len(s) for s in segments)
                segments.append(self._encode_path(exploit))
            segments.append(self._encode_path(path))
        stream = np.concatenate(segments)
        stop = start + len(exploit.calls)
        return LabeledTrace(
            stream=stream,
            intrusion_region=(start, stop),
            exploit_name=exploit.name,
        )

    def coverage_session(self) -> LabeledTrace:
        """A deterministic session visiting every normal path once.

        Appended to training so that rare paths are guaranteed present
        (Stide must know them; their *frequency* stays rare because the
        bulk of training is weighted sampling).
        """
        stream = np.concatenate(
            [self._encode_path(path) for path in self._model.paths]
        )
        return LabeledTrace(stream=stream, intrusion_region=None, exploit_name=None)


@dataclass(frozen=True)
class SyscallDataset:
    """Conventional IDS splits for one program.

    Attributes:
        program_name: the monitored program.
        alphabet: the encoding alphabet.
        training: normal sessions for fitting.
        test_normal: fresh normal sessions (false-alarm measurement).
        test_intrusions: sessions with injected exploits.
    """

    program_name: str
    alphabet: Alphabet
    training: tuple[LabeledTrace, ...]
    test_normal: tuple[LabeledTrace, ...]
    test_intrusions: tuple[LabeledTrace, ...]

    def training_streams(self) -> list[np.ndarray]:
        """The raw encoded training streams."""
        return [trace.stream for trace in self.training]


def build_dataset(
    model: ProgramModel,
    seed: int = 1996,  # "A Sense of Self for Unix Processes"
    training_sessions: int = 400,
    test_normal_sessions: int = 60,
    test_intrusion_sessions: int = 40,
    paths_per_session: int = 30,
) -> SyscallDataset:
    """Assemble training / test-normal / test-intrusion splits.

    Training additionally contains one deterministic coverage session
    per 100 sampled sessions so every rare path is present (while
    remaining rare by frequency).
    """
    generator = TraceGenerator(model)
    rng = np.random.default_rng(seed)
    training = [
        generator.normal_session(rng, paths_per_session)
        for _ in range(training_sessions)
    ]
    coverage_copies = max(1, training_sessions // 100)
    training.extend(generator.coverage_session() for _ in range(coverage_copies))
    test_normal = [
        generator.normal_session(rng, paths_per_session)
        for _ in range(test_normal_sessions)
    ]
    test_intrusions = [
        generator.intrusion_session(rng, paths_per_session)
        for _ in range(test_intrusion_sessions)
    ]
    return SyscallDataset(
        program_name=model.name,
        alphabet=generator.alphabet,
        training=tuple(training),
        test_normal=tuple(test_normal),
        test_intrusions=tuple(test_intrusions),
    )
