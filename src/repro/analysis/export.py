"""Exporting results for downstream tooling (CSV / JSON).

Performance maps and detection metrics are the library's primary
artifacts; these helpers serialize them into the formats plotting and
spreadsheet tools ingest, so reproduction results can be compared
against other implementations without touching Python.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.evaluation.metrics import DetectionMetrics
from repro.evaluation.performance_map import PerformanceMap
from repro.exceptions import EvaluationError


def performance_map_rows(performance_map: PerformanceMap) -> list[dict[str, object]]:
    """Flatten a map into one record per grid cell."""
    return [
        {
            "detector": performance_map.detector_name,
            "anomaly_size": cell.anomaly_size,
            "window_length": cell.window_length,
            "response_class": cell.response_class.value,
            "max_in_span": cell.outcome.max_in_span,
            "max_outside_span": cell.outcome.max_outside_span,
            "spurious_alarms": cell.outcome.spurious_alarms,
        }
        for cell in performance_map
    ]


def write_map_csv(path: str | Path, *maps: PerformanceMap) -> Path:
    """Write one or more maps to a CSV file (one row per cell).

    Raises:
        EvaluationError: when no map is given.
    """
    if not maps:
        raise EvaluationError("at least one performance map is required")
    target = Path(path)
    rows = [row for m in maps for row in performance_map_rows(m)]
    fieldnames = list(rows[0])
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return target


def map_to_json(performance_map: PerformanceMap) -> str:
    """Serialize one map (grid axes + cells) as a JSON document."""
    document = {
        "detector": performance_map.detector_name,
        "anomaly_sizes": list(performance_map.anomaly_sizes),
        "window_lengths": list(performance_map.window_lengths),
        "detection_fraction": performance_map.detection_fraction(),
        "cells": performance_map_rows(performance_map),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def write_map_json(path: str | Path, performance_map: PerformanceMap) -> Path:
    """Write one map as JSON."""
    target = Path(path)
    target.write_text(map_to_json(performance_map) + "\n")
    return target


def metrics_to_dict(metrics: DetectionMetrics) -> dict[str, object]:
    """Flatten detection metrics into a JSON-ready record."""
    return {
        "traces": metrics.traces,
        "traces_with_truth": metrics.traces_with_truth,
        "hits": metrics.hits,
        "misses": metrics.misses,
        "hit_rate": metrics.hit_rate,
        "alarm_windows": metrics.alarm_windows,
        "false_alarm_windows": metrics.false_alarm_windows,
        "normal_windows": metrics.normal_windows,
        "false_alarm_rate": metrics.false_alarm_rate,
    }


def load_map_json(path: str | Path) -> dict[str, object]:
    """Read back a JSON map document (plain dict; schema as written).

    Raises:
        EvaluationError: when the file is missing or not valid JSON.
    """
    source = Path(path)
    if not source.exists():
        raise EvaluationError(f"map JSON not found: {source}")
    try:
        return json.loads(source.read_text())
    except json.JSONDecodeError as error:
        raise EvaluationError(f"malformed map JSON {source}: {error}") from error
