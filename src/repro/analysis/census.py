"""Minimal-foreign-sequence census — the "Why 6?" analysis.

Tan & Maxion's companion study (*Why 6? Defining the Operational Limits
of stide*, cited as [17]) surveyed natural datasets and found them
replete with minimal foreign sequences; the largest MFS length present
determines the smallest Stide window that can detect them all (for the
UNM data the answer was 6).

:func:`mfs_census` reproduces that analysis over any corpus: it counts,
for each length, the MFSs constructible against a training stream, and
derives the operational window recommendation.  The census powers the
``syscall_monitoring`` example and the E14 bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import EvaluationError
from repro.sequences.foreign import ForeignSequenceAnalyzer


@dataclass(frozen=True)
class MfsCensus:
    """Counts of constructible MFSs per length, plus the Stide bound.

    Attributes:
        counts: length -> number of distinct MFSs of that length
            (capped per length by the census ``limit``).
        limit: per-length enumeration cap used (None = exhaustive).
        training_length: elements in the surveyed training stream.
    """

    counts: dict[int, int]
    limit: int | None
    training_length: int

    @property
    def max_length_present(self) -> int | None:
        """The largest length with at least one MFS, or ``None``."""
        present = [length for length, count in self.counts.items() if count]
        return max(present) if present else None

    @property
    def total(self) -> int:
        """Total MFSs found (with the per-length cap applied)."""
        return sum(self.counts.values())

    def recommended_stide_window(self) -> int | None:
        """The smallest window at which Stide detects every censused MFS.

        Stide detects an MFS only when its window is at least the MFS
        length (Figure 5), so the recommendation is the largest MFS
        length present — the study's "why 6" number.  ``None`` when no
        MFS was found.
        """
        return self.max_length_present

    def rows(self) -> list[tuple[int, int]]:
        """(length, count) rows in ascending length order."""
        return sorted(self.counts.items())


def mfs_census(
    analyzer: ForeignSequenceAnalyzer,
    lengths: tuple[int, ...] = tuple(range(2, 10)),
    rare_parts_only: bool = False,
    limit: int | None = 10_000,
) -> MfsCensus:
    """Count the MFSs constructible against a training corpus.

    Args:
        analyzer: foreign-sequence oracle over the training stream.
        lengths: MFS lengths to survey.
        rare_parts_only: restrict to MFSs composed of rare parts (the
            main experiment's anomaly class); the natural-data census
            of [17] counts all MFSs, the default here.
        limit: per-length enumeration cap (protects against
            combinatorial blowup on wide-alphabet corpora).

    Raises:
        EvaluationError: on an empty or invalid length list.
    """
    if not lengths or min(lengths) < 2:
        raise EvaluationError("census lengths must be a non-empty tuple of ints >= 2")
    counts: dict[int, int] = {}
    for length in sorted(set(lengths)):
        found = analyzer.minimal_foreign_sequences(
            length, rare_parts_only=rare_parts_only, limit=limit
        )
        counts[length] = len(found)
    return MfsCensus(
        counts=counts, limit=limit, training_length=analyzer.training_length
    )
