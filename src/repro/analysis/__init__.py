"""Reporting, census, and cross-map analysis utilities."""

from repro.analysis.census import MfsCensus, mfs_census
from repro.analysis.export import (
    map_to_json,
    metrics_to_dict,
    performance_map_rows,
    write_map_csv,
    write_map_json,
)
from repro.analysis.report import (
    combination_report,
    format_table,
    map_agreement_report,
)

__all__ = [
    "MfsCensus",
    "combination_report",
    "format_table",
    "map_agreement_report",
    "map_to_json",
    "metrics_to_dict",
    "mfs_census",
    "performance_map_rows",
    "write_map_csv",
    "write_map_json",
]
