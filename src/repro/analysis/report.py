"""Textual reports: tables, coverage relations, map agreement.

These helpers render the library's results the way the paper's prose
states them — subset relations, gained cells, shared blind regions —
so benchmarks and examples print directly comparable statements.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.ensemble.coverage import Coverage, coverage_gain
from repro.ensemble.diversity import coverage_diversity, coverage_redundancy
from repro.evaluation.performance_map import PerformanceMap
from repro.exceptions import EvaluationError


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: column titles.
        rows: cell values (stringified with ``str``).
        title: optional heading line.

    Raises:
        EvaluationError: if a row's width disagrees with the headers.
    """
    string_rows = [[str(value) for value in row] for row in rows]
    for i, row in enumerate(string_rows):
        if len(row) != len(headers):
            raise EvaluationError(
                f"row {i} has {len(row)} cells for {len(headers)} headers"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in string_rows))
        if string_rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in string_rows
    )
    return "\n".join(lines)


def combination_report(first: Coverage, second: Coverage) -> str:
    """State the diversity relation between two coverages, paper-style.

    Reports subset relations, the cells gained by combining, and the
    Jaccard diversity — the statements of Sections 7-8.
    """
    lines = [
        f"Coverage of {first.label}: {len(first)}/{len(first.grid)} cells",
        f"Coverage of {second.label}: {len(second)}/{len(second.grid)} cells",
    ]
    if first.is_subset_of(second):
        relation = "subset" if first.is_strict_subset_of(second) else "equal"
        lines.append(
            f"{first.label} coverage is a {relation} of {second.label} coverage"
        )
    elif second.is_subset_of(first):
        lines.append(f"{second.label} coverage is a subset of {first.label} coverage")
    else:
        lines.append(
            f"{first.label} and {second.label} coverages partially overlap"
        )
    gained_over_first = coverage_gain(first, second)
    gained_over_second = coverage_gain(second, first)
    lines.append(
        f"combining adds {len(gained_over_first)} cells over {first.label} alone, "
        f"{len(gained_over_second)} over {second.label} alone"
    )
    best_alone = max(len(first), len(second))
    if len((first | second).cells) == best_alone:
        lines.append(
            "=> diversity affords no improvement in detection coverage over "
            "the better detector alone"
        )
    shared_blind = first.blind_region() & second.blind_region()
    lines.append(
        f"shared blind region: {len(shared_blind)}/{len(first.grid)} cells"
    )
    lines.append(
        f"coverage diversity (Jaccard distance): "
        f"{coverage_diversity(first, second):.3f}; "
        f"redundancy: {coverage_redundancy(first, second):.3f}"
    )
    return "\n".join(lines)


def map_agreement_report(maps: dict[str, PerformanceMap]) -> str:
    """Pairwise coverage relations for a set of performance maps."""
    if len(maps) < 2:
        raise EvaluationError("need at least two maps to compare")
    names = sorted(maps)
    coverages = {
        name: Coverage.from_performance_map(maps[name]) for name in names
    }
    rows = []
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            a, b = coverages[first], coverages[second]
            if a.cells == b.cells:
                relation = "equal"
            elif a.is_subset_of(b):
                relation = f"{first} subset of {second}"
            elif b.is_subset_of(a):
                relation = f"{second} subset of {first}"
            else:
                relation = "incomparable"
            rows.append(
                (
                    first,
                    second,
                    len(a),
                    len(b),
                    len((a | b).cells),
                    relation,
                )
            )
    return format_table(
        headers=("detector A", "detector B", "|A|", "|B|", "|A∪B|", "relation"),
        rows=rows,
        title="Pairwise detection-coverage relations",
    )
