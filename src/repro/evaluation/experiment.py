"""One-call orchestration of the paper's full evaluation.

:func:`run_paper_experiment` builds (or reuses) the evaluation corpus,
sweeps the four detectors over the 112-case grid, and returns the four
performance maps of Figures 3-6 plus the coverage relations of the
diversity discussion (Sections 7-8).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.datagen.suite import EvaluationSuite, build_suite
from repro.datagen.training import TrainingData
from repro.evaluation.performance_map import PerformanceMap, build_performance_map
from repro.evaluation.render import render_map_summary, render_performance_map
from repro.exceptions import EvaluationError
from repro.params import PaperParams


@dataclass(frozen=True)
class ExperimentResult:
    """The paper's experiment outputs.

    Attributes:
        suite: the corpus the maps were computed on.
        maps: one performance map per detector family, keyed by name.
        run_report: the sweep's :class:`~repro.runtime.resilience.RunReport`
            when the experiment ran through a resilient engine sweep
            (``None`` on the plain serial/fast paths).
    """

    suite: EvaluationSuite
    maps: dict[str, PerformanceMap] = field(repr=False)
    run_report: "object | None" = field(default=None, repr=False)

    def map_for(self, detector_name: str) -> PerformanceMap:
        """The performance map of one detector family.

        Raises:
            EvaluationError: for detectors not in this experiment.
        """
        try:
            return self.maps[detector_name]
        except KeyError:
            raise EvaluationError(
                f"no map for detector {detector_name!r}; available: "
                f"{', '.join(sorted(self.maps))}"
            ) from None

    def render_all(self) -> str:
        """All maps as star charts, separated by blank lines."""
        blocks = [
            render_performance_map(self.maps[name]) for name in sorted(self.maps)
        ]
        return "\n\n".join(blocks)

    def summary(self) -> str:
        """One summary line per detector map."""
        return "\n".join(
            render_map_summary(self.maps[name]) for name in sorted(self.maps)
        )


#: The detectors of Figures 3-6, in figure order.
DEFAULT_DETECTORS: tuple[str, ...] = (
    "lane-brodley",
    "markov",
    "stide",
    "neural-network",
)


def run_paper_experiment(
    params: PaperParams | None = None,
    suite: EvaluationSuite | None = None,
    training: TrainingData | None = None,
    detectors: Iterable[str] = DEFAULT_DETECTORS,
    engine: "object | None" = None,
    max_workers: int | None = None,
    checkpoint: "str | None" = None,
    resume_from: "str | None" = None,
    store: "object | None" = None,
    warm_start: bool | None = None,
    telemetry: "object | None" = None,
) -> ExperimentResult:
    """Run the paper's evaluation end to end.

    Args:
        params: corpus parameters (used only when no suite is given).
        suite: a pre-built evaluation corpus.
        training: pre-built training data (used only when no suite is
            given).
        detectors: registered detector names to sweep.
        engine: a :class:`repro.runtime.SweepEngine`; all families are
            swept concurrently through it (results are bit-identical
            to the serial path).
        max_workers: shorthand for ``engine=SweepEngine(max_workers=...)``
            when > 1 and no engine is given.
        checkpoint: JSONL checkpoint file completed cells stream to.
        resume_from: checkpoint file whose cells are adopted instead of
            recomputed (bit-identically).
        store: a persistent :class:`~repro.runtime.store.ArtifactStore`
            (or its directory path) backing every fit; a warm re-run
            of the same corpus performs zero fits.  Ignored when an
            ``engine`` is given (the engine's own store governs).
        warm_start: forwarded to the engine the ``max_workers``/
            ``store`` shorthand creates; ``None`` auto-enables warm
            starting exactly when a store is attached.
        telemetry: a :class:`~repro.runtime.telemetry.Telemetry`
            collector.  With no ``engine`` given the experiment runs
            through a serial :class:`~repro.runtime.SweepEngine`
            carrying it; a given engine without its own collector
            adopts this one.

    Returns:
        Maps for every requested detector over the full case grid,
        with ``run_report`` populated when a resilient sweep ran.
    """
    if suite is None:
        suite = build_suite(params=params, training=training)
    names = list(detectors)
    if not names:
        raise EvaluationError("at least one detector is required")
    if engine is None and max_workers is not None and max_workers > 1:
        from repro.runtime import SweepEngine

        engine = SweepEngine(
            max_workers=max_workers,
            store=store,
            warm_start=warm_start,
            telemetry=telemetry,
        )
    elif engine is None and telemetry is not None:
        from repro.runtime import SweepEngine

        engine = SweepEngine(
            executor="serial",
            store=store,
            warm_start=warm_start,
            telemetry=telemetry,
        )
    run_report = None
    if engine is not None:
        if telemetry is not None and getattr(engine, "telemetry", None) is None:
            engine.attach_telemetry(telemetry)
        if (
            getattr(engine, "resilience", None) is not None
            or checkpoint is not None
            or resume_from is not None
        ):
            maps, run_report = engine.sweep_with_report(
                names, suite, checkpoint=checkpoint, resume_from=resume_from
            )
        else:
            maps = engine.sweep(names, suite)
    else:
        maps = {
            name: build_performance_map(
                name,
                suite,
                checkpoint=checkpoint,
                resume_from=resume_from,
                store=store,
            )
            for name in names
        }
    return ExperimentResult(suite=suite, maps=maps, run_report=run_report)
