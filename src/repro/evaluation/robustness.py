"""Robustness harness: are the paper's shapes seed- and scale-stable?

The corpus is randomized (the nondeterministic jump placement), so the
reproduction's claims should not hinge on one lucky seed.  This module
re-runs the map experiment across seeds (and optionally scales) and
checks every replication produces the *same qualitative shape* — the
reproducibility discipline the paper's fixed description implies but
cannot demonstrate with a single corpus.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.datagen.suite import build_suite
from repro.datagen.training import generate_training_data
from repro.evaluation.performance_map import PerformanceMap, build_performance_map
from repro.exceptions import EvaluationError
from repro.params import PaperParams

ShapePredicate = Callable[[PerformanceMap], bool]


def stide_shape(performance_map: PerformanceMap) -> bool:
    """Figure 5's shape: capable exactly when DW >= AS."""
    expected = {
        (anomaly_size, window_length)
        for anomaly_size in performance_map.anomaly_sizes
        for window_length in performance_map.window_lengths
        if window_length >= anomaly_size
    }
    return performance_map.capable_cells() == expected


def full_coverage_shape(performance_map: PerformanceMap) -> bool:
    """Figures 4/6's shape: every cell capable."""
    return performance_map.detection_fraction() == 1.0


def blind_shape(performance_map: PerformanceMap) -> bool:
    """Figure 3's shape: no cell capable."""
    return len(performance_map.capable_cells()) == 0


#: The qualitative shape each paper figure asserts, by detector name.
PAPER_SHAPES: dict[str, ShapePredicate] = {
    "stide": stide_shape,
    "markov": full_coverage_shape,
    "neural-network": full_coverage_shape,
    "lane-brodley": blind_shape,
}


@dataclass(frozen=True)
class ReplicationOutcome:
    """One seed's verdict per detector."""

    seed: int
    training_length: int
    shape_held: dict[str, bool] = field(repr=False)

    @property
    def all_held(self) -> bool:
        """Whether every detector's shape replicated under this seed."""
        return all(self.shape_held.values())


@dataclass(frozen=True)
class RobustnessReport:
    """Aggregate over all replications."""

    outcomes: tuple[ReplicationOutcome, ...]

    @property
    def replications(self) -> int:
        """Number of corpora evaluated."""
        return len(self.outcomes)

    @property
    def all_held(self) -> bool:
        """Whether every shape held under every seed."""
        return all(outcome.all_held for outcome in self.outcomes)

    def failures(self) -> list[tuple[int, str]]:
        """(seed, detector) pairs whose shape broke."""
        return [
            (outcome.seed, name)
            for outcome in self.outcomes
            for name, held in outcome.shape_held.items()
            if not held
        ]

    def summary(self) -> str:
        """One-line report."""
        if self.all_held:
            return (
                f"all paper shapes held across {self.replications} "
                "independent corpora"
            )
        return f"shape failures: {self.failures()}"


def replicate_shapes(
    base_params: PaperParams,
    seeds: Iterable[int],
    detectors: dict[str, ShapePredicate] | None = None,
    stream_length: int = 1000,
    engine: "object | None" = None,
    checkpoint_dir: "str | Path | None" = None,
    store: "object | None" = None,
) -> RobustnessReport:
    """Re-run the map experiment under each seed and check the shapes.

    Args:
        base_params: corpus parameters; the seed field is overridden
            per replication.
        seeds: corpus seeds to replicate under.
        detectors: detector name -> shape predicate; defaults to the
            four paper figures.
        stream_length: test-stream length per injected case.
        engine: a :class:`repro.runtime.SweepEngine` to build each
            replication's maps through (serial reference loop when
            omitted).
        checkpoint_dir: directory for per-seed checkpoint files
            (``replication-seed<seed>.jsonl``).  Completed cells are
            streamed there, and a re-run of an interrupted replication
            campaign resumes each seed from its own checkpoint —
            bit-identically — instead of recomputing finished maps.
        store: a persistent :class:`~repro.runtime.store.ArtifactStore`
            (or its directory path) for the serial path: replication
            campaigns re-fit identical (stream, config) pairs across
            invocations, which the store collapses to one fit ever.
            Ignored when an ``engine`` is given.

    Raises:
        EvaluationError: on an empty seed list.
    """
    seed_list = list(seeds)
    if not seed_list:
        raise EvaluationError("at least one seed is required")
    predicates = detectors or PAPER_SHAPES
    outcomes = []
    for seed in seed_list:
        params = base_params.with_seed(seed)
        training = generate_training_data(params)
        suite = build_suite(training=training, stream_length=stream_length)
        checkpoint = resume_from = None
        if checkpoint_dir is not None:
            checkpoint = Path(checkpoint_dir) / f"replication-seed{seed}.jsonl"
            resume_from = checkpoint if checkpoint.exists() else None
        shape_held = {
            name: predicate(
                build_performance_map(
                    name,
                    suite,
                    engine=engine,
                    checkpoint=checkpoint,
                    resume_from=resume_from,
                    store=store,
                )
            )
            for name, predicate in predicates.items()
        }
        outcomes.append(
            ReplicationOutcome(
                seed=seed,
                training_length=params.training_length,
                shape_held=shape_held,
            )
        )
        cache = getattr(engine, "window_cache", None)
        if cache is not None:
            # Each seed's corpus is dead after its verdict; without
            # this, an engine-backed campaign pins every corpus it has
            # ever swept (the identity-keying footgun).
            cache.release_stream(suite.training.stream)
            for anomaly_size in suite.anomaly_sizes:
                cache.release_stream(suite.stream(anomaly_size).stream)
    return RobustnessReport(outcomes=tuple(outcomes))
