"""Performance maps: detection coverage over (anomaly size x window).

A performance map is the grid behind Figures 3-6: for every anomaly
size ``AS`` and detector window ``DW``, the blind/weak/capable outcome
of one detector family on the suite's injected minimal foreign
sequence of that size, analyzed at that window.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass

from repro.datagen.suite import EvaluationSuite
from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import create_detector
from repro.evaluation.scoring import DetectionOutcome, ResponseClass, score_injected
from repro.exceptions import EvaluationError

Cell = tuple[int, int]  # (anomaly_size, window_length)


@dataclass(frozen=True)
class CellResult:
    """One grid cell: a detector's outcome on one (AS, DW) case."""

    anomaly_size: int
    window_length: int
    outcome: DetectionOutcome

    @property
    def response_class(self) -> ResponseClass:
        """Shortcut to the cell's blind/weak/capable class."""
        return self.outcome.response_class


class PerformanceMap:
    """Detection-coverage grid for one detector family.

    Args:
        detector_name: family label (used by renders and reports).
        cells: mapping from (anomaly size, window length) to results.
    """

    def __init__(self, detector_name: str, cells: Mapping[Cell, CellResult]) -> None:
        if not cells:
            raise EvaluationError("a performance map requires at least one cell")
        self._detector_name = detector_name
        self._cells = dict(cells)
        self._anomaly_sizes = tuple(sorted({a for a, _w in self._cells}))
        self._window_lengths = tuple(sorted({w for _a, w in self._cells}))
        expected = len(self._anomaly_sizes) * len(self._window_lengths)
        if len(self._cells) != expected:
            raise EvaluationError(
                f"performance map is not a full grid: {len(self._cells)} cells "
                f"for {len(self._anomaly_sizes)} x {len(self._window_lengths)}"
            )

    @property
    def detector_name(self) -> str:
        """The detector family this map describes."""
        return self._detector_name

    @property
    def anomaly_sizes(self) -> tuple[int, ...]:
        """Anomaly sizes of the grid, ascending."""
        return self._anomaly_sizes

    @property
    def window_lengths(self) -> tuple[int, ...]:
        """Detector-window lengths of the grid, ascending."""
        return self._window_lengths

    def cell(self, anomaly_size: int, window_length: int) -> CellResult:
        """The result at one grid position.

        Raises:
            EvaluationError: for positions outside the evaluated grid.
        """
        try:
            return self._cells[(anomaly_size, window_length)]
        except KeyError:
            raise EvaluationError(
                f"cell (AS={anomaly_size}, DW={window_length}) outside the grid"
            ) from None

    def response_class(self, anomaly_size: int, window_length: int) -> ResponseClass:
        """The blind/weak/capable class at one grid position."""
        return self.cell(anomaly_size, window_length).response_class

    def __iter__(self) -> Iterator[CellResult]:
        for key in sorted(self._cells):
            yield self._cells[key]

    def __len__(self) -> int:
        return len(self._cells)

    def cells_in_class(self, response_class: ResponseClass) -> frozenset[Cell]:
        """Grid positions whose outcome is ``response_class``."""
        return frozenset(
            key
            for key, result in self._cells.items()
            if result.response_class is response_class
        )

    def capable_cells(self) -> frozenset[Cell]:
        """Positions where the detector registered a maximal response."""
        return self.cells_in_class(ResponseClass.CAPABLE)

    def blind_cells(self) -> frozenset[Cell]:
        """Positions where the anomaly was perceived as completely normal."""
        return self.cells_in_class(ResponseClass.BLIND)

    def weak_cells(self) -> frozenset[Cell]:
        """Positions with a non-maximal, nonzero response."""
        return self.cells_in_class(ResponseClass.WEAK)

    def detection_fraction(self) -> float:
        """Fraction of grid cells that are capable."""
        return len(self.capable_cells()) / len(self._cells)

    def spurious_alarm_total(self) -> int:
        """Total maximal responses outside incident spans across the grid."""
        return sum(result.outcome.spurious_alarms for result in self)

    def __repr__(self) -> str:
        return (
            f"PerformanceMap({self._detector_name!r}, "
            f"{len(self._anomaly_sizes)}x{len(self._window_lengths)}, "
            f"capable={len(self.capable_cells())})"
        )


DetectorFactory = Callable[[int], AnomalyDetector]


def build_performance_map(
    detector: str | DetectorFactory,
    suite: EvaluationSuite,
    engine: "object | None" = None,
    max_workers: int | None = None,
    checkpoint: "str | None" = None,
    resume_from: "str | None" = None,
    store: "object | None" = None,
    telemetry: "object | None" = None,
    **detector_kwargs: object,
) -> PerformanceMap:
    """Evaluate one detector family over the whole suite grid.

    For each window length a fresh detector is constructed and fitted
    once on the training stream, then deployed on every injected test
    stream — the paper's replication of the 8 test streams across the
    14 window lengths.

    Args:
        detector: a registered detector name, or a factory mapping a
            window length to an (unfitted) detector instance.
        suite: the evaluation corpus.
        engine: a :class:`repro.runtime.SweepEngine` to run the grid
            through; the serial reference loop runs when omitted.
        max_workers: shorthand for ``engine=SweepEngine(max_workers=...)``
            when > 1 and no engine is given.  The engine's maps are
            bit-identical to the serial loop's.
        checkpoint: JSONL file (see :mod:`repro.io`) to stream each
            completed cell to, so an interrupted build loses at most
            the block in flight.
        resume_from: a checkpoint file from a previous (possibly
            killed) run; its cells are adopted instead of recomputed,
            bit-identically, and only the missing cells are evaluated.
        store: a persistent :class:`~repro.runtime.store.ArtifactStore`
            (or its directory path): every fit is looked up by content
            address before training and written back on a miss, so a
            warm re-run performs zero fits.  Ignored when an ``engine``
            is given — the engine's own store governs.  On the serial
            reference loop the store is lookup/write-back only (no
            warm starting), preserving bit-reproducibility.
        telemetry: a :class:`~repro.runtime.telemetry.Telemetry`
            collector.  With no ``engine`` given the build runs
            through a serial :class:`~repro.runtime.SweepEngine`
            carrying it (bit-identical cells, fully instrumented); a
            given engine without its own collector adopts this one.
        **detector_kwargs: forwarded to the registry when ``detector``
            is a name (ignored for factories).

    Returns:
        The full-grid performance map.
    """
    if store is not None and not hasattr(store, "get"):
        from repro.runtime.store import ArtifactStore

        store = ArtifactStore(store)
    if engine is None and max_workers is not None and max_workers > 1:
        from repro.runtime import SweepEngine

        engine = SweepEngine(
            max_workers=max_workers, store=store, telemetry=telemetry
        )
    elif engine is None and telemetry is not None:
        from repro.runtime import SweepEngine

        # The serial engine is the instrumented twin of the reference
        # loop below: bit-identical cells, plus spans and counters.
        engine = SweepEngine(
            executor="serial", store=store, warm_start=False, telemetry=telemetry
        )
    if engine is not None:
        if telemetry is not None and getattr(engine, "telemetry", None) is None:
            engine.attach_telemetry(telemetry)
        return engine.build_map(
            detector,
            suite,
            checkpoint=checkpoint,
            resume_from=resume_from,
            **detector_kwargs,
        )
    alphabet_size = suite.training.alphabet.size
    if isinstance(detector, str):
        name = detector

        def factory(window_length: int) -> AnomalyDetector:
            return create_detector(
                name, window_length, alphabet_size, **detector_kwargs
            )

    else:
        factory = detector
        name = factory(min(suite.window_lengths)).name
    cells: dict[Cell, CellResult] = {}
    if resume_from is not None:
        from repro.io import checkpoint_load

        # A kill can truncate the final line mid-write; tolerate it —
        # the affected cells are simply recomputed.
        loaded = checkpoint_load(resume_from, strict=False).get(name, {})
        sizes = set(suite.anomaly_sizes)
        windows = set(suite.window_lengths)
        cells = {
            cell: result
            for cell, result in loaded.items()
            if cell[0] in sizes and cell[1] in windows
        }
    for window_length in suite.window_lengths:
        missing = [
            anomaly_size
            for anomaly_size in suite.anomaly_sizes
            if (anomaly_size, window_length) not in cells
        ]
        if not missing:
            continue  # the checkpoint covers this whole column
        fresh_detector = factory(window_length)
        if store is not None:
            fresh_detector.attach_store(store)
        fitted = fresh_detector.fit(suite.training.stream)
        fresh = []
        for anomaly_size in missing:
            outcome = score_injected(fitted, suite.stream(anomaly_size))
            result = CellResult(
                anomaly_size=anomaly_size,
                window_length=window_length,
                outcome=outcome,
            )
            cells[(anomaly_size, window_length)] = result
            fresh.append(result)
        if checkpoint is not None:
            from repro.io import checkpoint_append

            checkpoint_append(checkpoint, name, fresh)
    return PerformanceMap(detector_name=name, cells=cells)
