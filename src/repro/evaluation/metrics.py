"""Hit/miss/false-alarm accounting and ROC sweeps.

The paper's core experiment uses the strict maximal-response criterion,
but its diversity discussion (Section 7) reasons about *deployments*:
false-alarm rates of the Markov detector versus Stide, and suppression
by combination.  This module provides the standard accounting for such
deployment-style experiments over labeled traces.

Conventions:

* a *trace-level hit* — at least one alarm inside the trace's ground
  truth (incident span or labeled intrusion region);
* a *false alarm* — an alarm window outside every ground-truth region;
* rates are reported per window, plus trace-level hit/miss tallies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EvaluationError


@dataclass(frozen=True)
class DetectionMetrics:
    """Aggregate detection accounting over one or more scored traces.

    Attributes:
        traces: number of traces scored.
        traces_with_truth: traces that contained a ground-truth region.
        hits: traces with truth where some in-region window alarmed.
        misses: traces with truth and no in-region alarm.
        alarm_windows: total alarmed windows.
        false_alarm_windows: alarmed windows outside every truth region.
        normal_windows: windows outside every truth region.
    """

    traces: int
    traces_with_truth: int
    hits: int
    misses: int
    alarm_windows: int
    false_alarm_windows: int
    normal_windows: int

    @property
    def hit_rate(self) -> float:
        """Trace-level hit fraction (1.0 when no trace has truth)."""
        if self.traces_with_truth == 0:
            return 1.0
        return self.hits / self.traces_with_truth

    @property
    def miss_rate(self) -> float:
        """Trace-level miss fraction."""
        return 1.0 - self.hit_rate

    @property
    def false_alarm_rate(self) -> float:
        """Per-window false-alarm fraction over normal windows."""
        if self.normal_windows == 0:
            return 0.0
        return self.false_alarm_windows / self.normal_windows

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"hits {self.hits}/{self.traces_with_truth} "
            f"(rate {self.hit_rate:.2f}), "
            f"false alarms {self.false_alarm_windows}/{self.normal_windows} "
            f"(rate {self.false_alarm_rate:.4f})"
        )


def _truth_mask(length: int, regions: list[tuple[int, int]]) -> np.ndarray:
    mask = np.zeros(length, dtype=bool)
    for start, stop in regions:
        if not 0 <= start < stop <= length:
            raise EvaluationError(
                f"truth region ({start}, {stop}) out of range for {length} windows"
            )
        mask[start:stop] = True
    return mask


def evaluate_alarms(
    alarm_streams: list[np.ndarray],
    truth_regions: list[list[tuple[int, int]]],
) -> DetectionMetrics:
    """Score boolean alarm streams against ground-truth window regions.

    Args:
        alarm_streams: one boolean array per trace (per-window alarms).
        truth_regions: per trace, a list of ``(start, stop)`` window
            ranges containing the manifestations to detect; an empty
            list marks a purely normal trace.

    Returns:
        Aggregated :class:`DetectionMetrics`.

    Raises:
        EvaluationError: on length mismatch or malformed regions.
    """
    if len(alarm_streams) != len(truth_regions):
        raise EvaluationError(
            f"{len(alarm_streams)} alarm streams but {len(truth_regions)} "
            "truth-region lists"
        )
    traces_with_truth = 0
    hits = 0
    alarm_windows = 0
    false_alarm_windows = 0
    normal_windows = 0
    for alarms, regions in zip(alarm_streams, truth_regions):
        alarms = np.asarray(alarms, dtype=bool)
        mask = _truth_mask(len(alarms), regions)
        alarm_windows += int(alarms.sum())
        false_alarm_windows += int((alarms & ~mask).sum())
        normal_windows += int((~mask).sum())
        if regions:
            traces_with_truth += 1
            if bool((alarms & mask).any()):
                hits += 1
    return DetectionMetrics(
        traces=len(alarm_streams),
        traces_with_truth=traces_with_truth,
        hits=hits,
        misses=traces_with_truth - hits,
        alarm_windows=alarm_windows,
        false_alarm_windows=false_alarm_windows,
        normal_windows=normal_windows,
    )


def roc_points(
    response_streams: list[np.ndarray],
    truth_regions: list[list[tuple[int, int]]],
    thresholds: np.ndarray | list[float] | None = None,
) -> list[tuple[float, float, float]]:
    """Sweep a detection threshold and report (threshold, FA rate, hit rate).

    Args:
        response_streams: per-trace graded responses in ``[0, 1]``.
        truth_regions: per-trace ground-truth window regions.
        thresholds: levels to sweep; defaults to 101 evenly spaced
            levels from 0.01 to 1.0 plus the exact level 1.0.

    Returns:
        One ``(threshold, false_alarm_rate, hit_rate)`` triple per
        level, in ascending threshold order.
    """
    if thresholds is None:
        thresholds = np.linspace(0.01, 1.0, 100)
    points = []
    for level in thresholds:
        level = float(level)
        if not 0.0 < level <= 1.0:
            raise EvaluationError(f"thresholds must lie in (0, 1], got {level}")
        alarms = [np.asarray(r, dtype=float) >= level for r in response_streams]
        metrics = evaluate_alarms(alarms, truth_regions)
        points.append((level, metrics.false_alarm_rate, metrics.hit_rate))
    return points


def roc_auc(points: list[tuple[float, float, float]]) -> float:
    """Area under the (FA rate, hit rate) curve by trapezoidal rule.

    The curve is anchored at (0, 0) and (1, 1); points from
    :func:`roc_points` are sorted by false-alarm rate first.  Returns a
    value in [0, 1]; 0.5 is chance, 1.0 separates perfectly.

    Raises:
        EvaluationError: on an empty point list.
    """
    if not points:
        raise EvaluationError("at least one ROC point is required")
    curve = sorted(
        {(false_alarm, hit) for _level, false_alarm, hit in points}
        | {(0.0, 0.0), (1.0, 1.0)}
    )
    area = 0.0
    for (x0, y0), (x1, y1) in zip(curve, curve[1:]):
        area += (x1 - x0) * (y0 + y1) / 2.0
    return min(1.0, max(0.0, area))
