"""Evaluation harness: incident-span scoring, performance maps, metrics.

This subpackage implements Section 5.5 and the result apparatus of
Section 6:

* :mod:`~repro.evaluation.scoring` — blind/weak/capable classification
  of a detector's response within the incident span;
* :mod:`~repro.evaluation.performance_map` — the (anomaly size x
  detector window) coverage grids of Figures 3-6;
* :mod:`~repro.evaluation.render` — ASCII renderings of those grids in
  the figures' star/blind/undefined vocabulary;
* :mod:`~repro.evaluation.metrics` — hit/miss/false-alarm accounting
  and ROC sweeps for deployment-style experiments;
* :mod:`~repro.evaluation.experiment` — one-call orchestration of the
  paper's full evaluation.
"""

from repro.evaluation.experiment import ExperimentResult, run_paper_experiment
from repro.evaluation.metrics import (
    DetectionMetrics,
    evaluate_alarms,
    roc_auc,
    roc_points,
)
from repro.evaluation.performance_map import (
    CellResult,
    PerformanceMap,
    build_performance_map,
)
from repro.evaluation.render import render_performance_map
from repro.evaluation.robustness import (
    PAPER_SHAPES,
    RobustnessReport,
    replicate_shapes,
)
from repro.evaluation.response_profile import (
    ResponseProfile,
    compare_profiles,
    response_profile,
)
from repro.evaluation.scoring import DetectionOutcome, ResponseClass, score_injected

__all__ = [
    "CellResult",
    "DetectionMetrics",
    "DetectionOutcome",
    "ExperimentResult",
    "PerformanceMap",
    "ResponseClass",
    "PAPER_SHAPES",
    "ResponseProfile",
    "RobustnessReport",
    "compare_profiles",
    "replicate_shapes",
    "response_profile",
    "roc_auc",
    "build_performance_map",
    "evaluate_alarms",
    "render_performance_map",
    "roc_points",
    "run_paper_experiment",
    "score_injected",
]
