"""ASCII renderings of performance maps in the figures' vocabulary.

The paper's Figures 3-6 chart detector window (y-axis, descending from
the top) against anomaly size (x-axis).  A star marks a capable cell;
blank regions are blind; the column for anomaly size 1 is undefined.
The renderer adds ``~`` for weak cells — a distinction the paper's
scoring defines but its figures collapse into the blind region.
"""

from __future__ import annotations

from repro.evaluation.performance_map import PerformanceMap
from repro.evaluation.scoring import ResponseClass

_GLYPHS = {
    ResponseClass.CAPABLE: "*",
    ResponseClass.WEAK: "~",
    ResponseClass.BLIND: ".",
    ResponseClass.UNDEFINED: "?",
}

_LEGEND = "*: detection region   ~: weak response   .: blind region"
_UNDEFINED_LEGEND = "   ?: undefined"


def render_performance_map(
    performance_map: PerformanceMap,
    include_undefined_column: bool = True,
    title: str | None = None,
) -> str:
    """Render a map as the paper's star chart.

    Args:
        performance_map: the grid to draw.
        include_undefined_column: draw the anomaly-size-1 column of
            ``?`` marks, as the figures do.
        title: optional heading; defaults to a figure-style caption.

    Returns:
        A multi-line string (no trailing newline).
    """
    anomaly_sizes = performance_map.anomaly_sizes
    window_lengths = performance_map.window_lengths
    heading = title or (
        f"Performance map of {performance_map.detector_name} on MFS anomalies"
    )
    legend = _LEGEND + (_UNDEFINED_LEGEND if include_undefined_column else "")
    lines = [heading, legend, ""]
    columns = ([1] if include_undefined_column else []) + list(anomaly_sizes)
    header_cells = " ".join(f"{size:>2}" for size in columns)
    lines.append(f"DW\\AS {header_cells}")
    for window_length in reversed(window_lengths):
        row = []
        for size in columns:
            if size == 1:
                glyph = _GLYPHS[ResponseClass.UNDEFINED]
            else:
                glyph = _GLYPHS[
                    performance_map.response_class(size, window_length)
                ]
            row.append(f"{glyph:>2}")
        lines.append(f"{window_length:>5} " + " ".join(row))
    return "\n".join(lines)


def render_graded_map(
    performance_map: PerformanceMap, title: str | None = None
) -> str:
    """Render the *maximum in-span response* per cell, as a number grid.

    The star charts collapse each cell to blind/weak/capable; this view
    keeps the graded value (in percent of the maximal response), which
    is how "close to normal" phenomena — e.g. the L&B detector's
    sub-maximal dips — become visible (Section 7, Figure 7).

    Returns:
        A multi-line string; each cell shows ``round(100 * max_in_span)``.
    """
    anomaly_sizes = performance_map.anomaly_sizes
    window_lengths = performance_map.window_lengths
    heading = title or (
        f"Graded response map of {performance_map.detector_name} "
        "(max in-span response, % of maximal)"
    )
    lines = [heading, ""]
    header_cells = " ".join(f"{size:>4}" for size in anomaly_sizes)
    lines.append(f"DW\\AS {header_cells}")
    for window_length in reversed(window_lengths):
        row = []
        for size in anomaly_sizes:
            value = performance_map.cell(size, window_length).outcome.max_in_span
            row.append(f"{round(100 * value):>4}")
        lines.append(f"{window_length:>5} " + " ".join(row))
    return "\n".join(lines)


def render_map_summary(performance_map: PerformanceMap) -> str:
    """One-paragraph textual summary of a map's regions."""
    total = len(performance_map)
    capable = len(performance_map.capable_cells())
    blind = len(performance_map.blind_cells())
    weak = len(performance_map.weak_cells())
    return (
        f"{performance_map.detector_name}: {capable}/{total} cells capable, "
        f"{weak} weak, {blind} blind "
        f"(detection fraction {performance_map.detection_fraction():.2f})"
    )
