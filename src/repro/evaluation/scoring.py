"""Incident-span scoring: blind, weak, capable (Section 5.5).

When a detector window slides over an injected anomaly, every window
containing at least one anomaly element — the *incident span* — may
produce a response influenced by the anomaly.  The paper classifies a
detector on an anomaly by the maximum response registered in the span:

* **blind** — the response is 0 for every sequence of the span: the
  anomaly is perceived as completely normal;
* **weak** — the maximum response is strictly between 0 and maximal:
  something abnormal was seen, but not with certainty;
* **capable** — at least one maximal response was registered.

"Maximal" honors the detector's ``response_tolerance`` (graded
detectors emit ``1 - epsilon`` for events they respond to maximally;
binary detectors use tolerance 0, i.e. exactly 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.datagen.injection import InjectedStream
from repro.detectors.base import AnomalyDetector
from repro.exceptions import EvaluationError


class ResponseClass(enum.Enum):
    """The paper's three detection-capability classes, plus undefined.

    ``UNDEFINED`` marks grid cells outside the experiment's domain
    (anomaly size 1: a length-1 foreign-and-rare sequence cannot
    exist, Section 6).
    """

    BLIND = "blind"
    WEAK = "weak"
    CAPABLE = "capable"
    UNDEFINED = "undefined"

    @property
    def detects(self) -> bool:
        """Whether this class counts as a detection (a star in the maps)."""
        return self is ResponseClass.CAPABLE


def classify_response(max_response: float, tolerance: float = 0.0) -> ResponseClass:
    """Classify a maximum in-span response.

    Args:
        max_response: the largest response registered in the incident
            span; must lie in ``[0, 1]``.
        tolerance: responses at or above ``1 - tolerance`` are maximal.
    """
    if not 0.0 <= max_response <= 1.0:
        raise EvaluationError(
            f"responses must lie in [0, 1], got {max_response}"
        )
    if not 0.0 <= tolerance < 1.0:
        raise EvaluationError(f"tolerance must lie in [0, 1), got {tolerance}")
    if max_response >= 1.0 - tolerance:
        return ResponseClass.CAPABLE
    if max_response > 0.0:
        return ResponseClass.WEAK
    return ResponseClass.BLIND


@dataclass(frozen=True)
class DetectionOutcome:
    """A detector's scored encounter with one injected anomaly.

    Attributes:
        response_class: blind/weak/capable per the span maximum.
        max_in_span: maximum response inside the incident span.
        max_outside_span: maximum response outside the span (a nonzero
            value flags residual background sensitivity; a *maximal*
            value would be a spurious alarm, which the clean-injection
            policy is designed to preclude).
        span_start: first window index of the incident span.
        span_stop: one past the last window index of the span.
        spurious_alarms: number of maximal responses outside the span.
    """

    response_class: ResponseClass
    max_in_span: float
    max_outside_span: float
    span_start: int
    span_stop: int
    spurious_alarms: int

    @property
    def detected(self) -> bool:
        """Whether the anomaly registered a maximal response in the span."""
        return self.response_class.detects


def outcome_from_responses(
    responses: np.ndarray,
    injected: InjectedStream,
    window_length: int,
    response_tolerance: float,
) -> DetectionOutcome:
    """Classify a precomputed response array against an injection.

    The responses-to-outcome half of :func:`score_injected`, split out
    so callers that obtain responses some other way — the sweep
    engine's unique-window memoized scoring, recorded response traces —
    classify them under exactly the same rule.

    Args:
        responses: one response per window of ``injected.stream`` (the
            :meth:`~repro.detectors.base.AnomalyDetector.score_stream`
            contract).
        injected: the test stream with injection metadata.
        window_length: the detector window the responses were produced
            at; defines the incident span.
        response_tolerance: the maximal-response slack.

    Returns:
        The classified outcome.
    """
    span = injected.incident_span(window_length)
    if span.stop <= span.start:
        raise EvaluationError("incident span is empty; stream too short")
    in_span = responses[span.start : span.stop]
    outside = np.concatenate([responses[: span.start], responses[span.stop :]])
    max_in_span = float(in_span.max())
    max_outside = float(outside.max()) if len(outside) else 0.0
    spurious = (
        int((outside >= 1.0 - response_tolerance).sum()) if len(outside) else 0
    )
    return DetectionOutcome(
        response_class=classify_response(max_in_span, response_tolerance),
        max_in_span=max_in_span,
        max_outside_span=max_outside,
        span_start=span.start,
        span_stop=span.stop,
        spurious_alarms=spurious,
    )


def score_injected_memoized(
    detector: AnomalyDetector, injected: InjectedStream, cache
) -> DetectionOutcome:
    """Score an injection through unique-window batch kernels.

    Deduplicates the test stream's windows via the shared
    :class:`repro.runtime.WindowCache`, scores each distinct window
    once with :meth:`~repro.detectors.base.AnomalyDetector.score_batch`,
    and scatters the responses back to stream order before classifying.
    Bit-identical to :func:`score_injected` — only the evaluation order
    differs.

    Args:
        detector: a fitted detector.
        injected: the test stream with injection metadata.
        cache: a :class:`repro.runtime.WindowCache` (or compatible)
            supplying ``unique(stream, DW, AS)``.

    Returns:
        The classified outcome.
    """
    unique_rows, inverse = cache.unique(
        injected.stream, detector.window_length, detector.alphabet_size
    )
    responses = detector.score_batch(unique_rows)[inverse]
    return outcome_from_responses(
        responses,
        injected,
        detector.window_length,
        detector.response_tolerance,
    )


def score_injected(
    detector: AnomalyDetector, injected: InjectedStream
) -> DetectionOutcome:
    """Deploy a fitted detector on an injected stream and score it.

    Args:
        detector: a fitted detector; its ``window_length`` defines the
            incident span and its ``response_tolerance`` the maximal
            criterion.
        injected: the test stream with injection metadata.

    Returns:
        The classified outcome.
    """
    responses = detector.score_stream(injected.stream)
    return outcome_from_responses(
        responses,
        injected,
        detector.window_length,
        detector.response_tolerance,
    )
