"""Response profiles: the per-window signature around an anomaly.

Performance maps compress a detector's encounter with an anomaly into
one class (blind / weak / capable).  The response *profile* keeps the
whole curve — one response per window position, aligned on the incident
span — which is how the paper's authors reasoned about boundary
interactions (Figure 2) and how operators debug a deployment: is the
response confined to the span?  Does it ramp at the boundary?  Does the
background sit at a pedestal?
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.injection import InjectedStream
from repro.detectors.base import AnomalyDetector
from repro.exceptions import EvaluationError


@dataclass(frozen=True)
class ResponseProfile:
    """One detector's aligned response curve over an injected stream.

    Attributes:
        detector_name: family label.
        window_length: the detector window used.
        responses: the full per-window response array.
        span_start: first window index of the incident span.
        span_stop: one past the last window index of the span.
    """

    detector_name: str
    window_length: int
    responses: np.ndarray = field(repr=False)
    span_start: int
    span_stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.span_start < self.span_stop <= len(self.responses):
            raise EvaluationError(
                f"span [{self.span_start}, {self.span_stop}) out of range for "
                f"{len(self.responses)} responses"
            )

    @property
    def in_span(self) -> np.ndarray:
        """Responses inside the incident span."""
        return self.responses[self.span_start : self.span_stop]

    @property
    def outside_span(self) -> np.ndarray:
        """Responses outside the incident span."""
        return np.concatenate(
            [self.responses[: self.span_start], self.responses[self.span_stop :]]
        )

    def peak(self) -> tuple[int, float]:
        """(window index, response) of the global maximum."""
        index = int(np.argmax(self.responses))
        return index, float(self.responses[index])

    def peak_in_span(self) -> bool:
        """Whether the global maximum lies inside the incident span."""
        index, _value = self.peak()
        return self.span_start <= index < self.span_stop

    def background_pedestal(self) -> float:
        """Median response outside the span (residual sensitivity)."""
        outside = self.outside_span
        return float(np.median(outside)) if len(outside) else 0.0

    def contrast(self) -> float:
        """Span maximum minus outside maximum — the detection margin."""
        outside = self.outside_span
        outside_max = float(outside.max()) if len(outside) else 0.0
        return float(self.in_span.max()) - outside_max

    def sparkline(self, context: int = 4) -> str:
        """ASCII rendering of the span (plus ``context`` windows around).

        Levels: ``_`` 0, ``.`` (0, 0.25], ``-`` (0.25, 0.5],
        ``=`` (0.5, 0.75], ``^`` (0.75, 1), ``#`` maximal.
        """
        lo = max(0, self.span_start - context)
        hi = min(len(self.responses), self.span_stop + context)
        glyphs = []
        for index in range(lo, hi):
            value = self.responses[index]
            if value >= 1.0:
                glyph = "#"
            elif value > 0.75:
                glyph = "^"
            elif value > 0.5:
                glyph = "="
            elif value > 0.25:
                glyph = "-"
            elif value > 0.0:
                glyph = "."
            else:
                glyph = "_"
            glyphs.append(glyph)
        marker = (
            " " * (self.span_start - lo)
            + "|"
            + " " * (self.span_stop - self.span_start - 2)
            + ("|" if self.span_stop - self.span_start >= 2 else "")
        )
        return "".join(glyphs) + "\n" + marker


def response_profile(
    detector: AnomalyDetector, injected: InjectedStream
) -> ResponseProfile:
    """Score an injected stream and keep the full aligned curve."""
    responses = detector.score_stream(injected.stream)
    span = injected.incident_span(detector.window_length)
    return ResponseProfile(
        detector_name=detector.name,
        window_length=detector.window_length,
        responses=responses,
        span_start=span.start,
        span_stop=span.stop,
    )


def compare_profiles(profiles: list[ResponseProfile]) -> str:
    """Aligned sparkline comparison of several detectors on one stream.

    Raises:
        EvaluationError: if the profiles disagree on the span (they
            must come from the same injected stream and window length).
    """
    if not profiles:
        raise EvaluationError("at least one profile is required")
    reference = profiles[0]
    for profile in profiles[1:]:
        if (profile.span_start, profile.span_stop) != (
            reference.span_start,
            reference.span_stop,
        ):
            raise EvaluationError(
                "profiles have different incident spans; compare detectors "
                "with equal window lengths on the same stream"
            )
    width = max(len(profile.detector_name) for profile in profiles)
    lines = []
    for profile in profiles:
        curve, marker = profile.sparkline().splitlines()
        lines.append(f"{profile.detector_name:>{width}}  {curve}")
    lines.append(f"{'span':>{width}}  {marker}")
    return "\n".join(lines)
