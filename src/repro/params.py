"""Canonical experiment parameters from Tan & Maxion (DSN 2005).

The paper fixes a small number of constants for its evaluation corpus
(Section 5.3):

* an alphabet of 8 categorical symbols;
* a training stream of 1,000,000 elements;
* 98% of the stream is a repetition of the cycle ``1 2 3 4 5 6 7 8``;
* the remaining 2% consists of rare sequences produced by a small amount
  of nondeterminism in the generating Markov matrix;
* *rare* means a relative frequency below 0.5% in the training data;
* anomaly sizes (``AS``, length of the minimal foreign sequence) range
  over 2..9;
* detector-window lengths (``DW``) range over 2..15.

:class:`PaperParams` packages these constants; :func:`paper_params`
returns the canonical instance and :func:`scaled_params` returns a
smaller corpus with identical structure for fast test/CI runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.exceptions import DataGenerationError

#: Alphabet size used throughout the paper's experiments.
PAPER_ALPHABET_SIZE = 8

#: Number of elements in the paper's training stream.
PAPER_TRAINING_LENGTH = 1_000_000

#: Fraction of the training stream occupied by the deterministic cycle.
PAPER_COMMON_FRACTION = 0.98

#: Relative-frequency threshold below which a sequence is *rare*.
PAPER_RARE_THRESHOLD = 0.005

#: Anomaly sizes evaluated by the paper (inclusive range).
PAPER_ANOMALY_SIZES = tuple(range(2, 10))

#: Detector-window lengths evaluated by the paper (inclusive range).
PAPER_WINDOW_SIZES = tuple(range(2, 16))

#: Environment variable overriding the default stream length for tests
#: and benchmarks.
STREAM_LEN_ENV_VAR = "REPRO_STREAM_LEN"


@dataclass(frozen=True)
class PaperParams:
    """Parameters describing one instantiation of the paper's corpus.

    Attributes:
        alphabet_size: number of categorical symbols in the data.
        training_length: number of elements in the training stream.
        common_fraction: fraction of the stream drawn from the
            deterministic cycle (the paper uses 0.98).
        rare_threshold: relative-frequency bound defining *rare*.
        anomaly_sizes: minimal-foreign-sequence lengths to evaluate.
        window_sizes: detector-window lengths to evaluate.
        seed: master seed for all pseudo-random generation.
    """

    alphabet_size: int = PAPER_ALPHABET_SIZE
    training_length: int = PAPER_TRAINING_LENGTH
    common_fraction: float = PAPER_COMMON_FRACTION
    rare_threshold: float = PAPER_RARE_THRESHOLD
    anomaly_sizes: tuple[int, ...] = field(default=PAPER_ANOMALY_SIZES)
    window_sizes: tuple[int, ...] = field(default=PAPER_WINDOW_SIZES)
    seed: int = 20050628  # DSN 2005 conference dates.

    def __post_init__(self) -> None:
        if self.alphabet_size < 2:
            raise DataGenerationError(
                f"alphabet_size must be >= 2, got {self.alphabet_size}"
            )
        if self.training_length <= 0:
            raise DataGenerationError(
                f"training_length must be positive, got {self.training_length}"
            )
        if not 0.0 < self.common_fraction < 1.0:
            raise DataGenerationError(
                f"common_fraction must lie in (0, 1), got {self.common_fraction}"
            )
        if not 0.0 < self.rare_threshold < 1.0:
            raise DataGenerationError(
                f"rare_threshold must lie in (0, 1), got {self.rare_threshold}"
            )
        if not self.anomaly_sizes or min(self.anomaly_sizes) < 2:
            raise DataGenerationError("anomaly_sizes must be a non-empty tuple of ints >= 2")
        if not self.window_sizes or min(self.window_sizes) < 2:
            raise DataGenerationError("window_sizes must be a non-empty tuple of ints >= 2")

    @property
    def max_anomaly_size(self) -> int:
        """Largest minimal-foreign-sequence length in the sweep."""
        return max(self.anomaly_sizes)

    @property
    def max_window_size(self) -> int:
        """Largest detector window in the sweep."""
        return max(self.window_sizes)

    def with_seed(self, seed: int) -> "PaperParams":
        """Return a copy of these parameters under a different seed."""
        return replace(self, seed=seed)

    def with_training_length(self, training_length: int) -> "PaperParams":
        """Return a copy with a different training-stream length."""
        return replace(self, training_length=training_length)


def paper_params(seed: int | None = None) -> PaperParams:
    """Return the canonical full-scale parameters from the paper.

    Args:
        seed: optional override for the master seed.
    """
    params = PaperParams()
    if seed is not None:
        params = params.with_seed(seed)
    return params


def scaled_params(
    training_length: int | None = None, seed: int | None = None
) -> PaperParams:
    """Return structurally identical parameters at reduced scale.

    The default length is 120,000 elements — large enough that every
    rare branch motif appears often enough to synthesize minimal foreign
    sequences up to size 9, yet fast enough for test suites.  The
    ``REPRO_STREAM_LEN`` environment variable overrides the default.

    Args:
        training_length: explicit stream length; overrides the
            environment variable.
        seed: optional override for the master seed.
    """
    if training_length is None:
        training_length = int(os.environ.get(STREAM_LEN_ENV_VAR, "120000"))
    params = PaperParams(training_length=training_length)
    if seed is not None:
        params = params.with_seed(seed)
    return params
