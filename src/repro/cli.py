"""Command-line interface: regenerate the paper's artifacts from a shell.

Subcommands:

* ``maps`` — run the performance-map experiment and print the star
  charts of Figures 3-6 (detectors and corpus scale selectable);
* ``suppression`` — run the Section-7 deployment experiment (Markov
  detects, Stide suppresses) on a UNM-style program;
* ``census`` — count the minimal foreign sequences constructible from
  a corpus (the "Why 6?" analysis) and report the recommended Stide
  window;
* ``anomaly`` — synthesize one MFS against the paper corpus and show
  its parts and frequencies;
* ``trace`` — summarize or validate a JSONL telemetry trace written by
  the ``--trace`` flag of ``maps``/``atlas``/``select``;
* ``plan`` — validate, run, resume, or inspect declarative experiment
  plans (``plans/*.toml``), including joining a shared run directory
  as a file-queue worker;
* ``serve`` — run the fault-hardened multi-tenant scoring service
  (crash-safe tenant WALs, admission control, circuit breakers,
  optional seeded chaos);
* ``loadgen`` — drive seeded traffic at a ``serve`` instance and
  verify every returned score bit-exactly against a local reference.

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.analysis.census import mfs_census
from repro.analysis.report import format_table, map_agreement_report
from repro.datagen.anomalies import AnomalySynthesizer
from repro.datagen.training import generate_training_data
from repro.detectors.registry import available_detectors, create_detector
from repro.detectors.threshold import MaximalResponseThreshold
from repro.ensemble.combiners import gated_alarms
from repro.evaluation.experiment import DEFAULT_DETECTORS
from repro.evaluation.metrics import evaluate_alarms
from repro.evaluation.render import render_performance_map
from repro.exceptions import ReproError
from repro.params import scaled_params
from repro.sequences.foreign import ForeignSequenceAnalyzer
from repro.syscalls.generator import build_dataset, truth_window_regions
from repro.syscalls.programs import all_program_models


def _corpus_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stream-len",
        type=int,
        default=None,
        help="training-stream length (default: REPRO_STREAM_LEN or 120000)",
    )
    parser.add_argument("--seed", type=int, default=None, help="corpus seed")


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
    return jobs


def _jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker count for the sweep engine (1 = serial reference "
        "path; results are identical either way)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process", "serial"),
        default=None,
        help="sweep backend (default: serial for --jobs 1, thread "
        "otherwise); the process backend ships suites over "
        "shared memory when available",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help="disable the shared-memory window transport; process "
        "workers receive pickled suites instead",
    )
    parser.add_argument(
        "--kernel-tier",
        choices=("auto", "bisect", "automaton"),
        default=None,
        help="membership kernel tier for stide/t-stide cells: 'auto' "
        "(default) runs the one-pass multi-DW automaton where "
        "applicable, 'bisect' pins the per-DW searchsorted path, "
        "'automaton' forces the profile path; maps are bit-identical "
        "across tiers",
    )


def _store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent fit store directory: fits are looked up by "
        "content address (training stream + detector config + schema "
        "version) before training and written back on a miss, so a "
        "repeat run performs zero fits",
    )
    parser.add_argument(
        "--store-cap",
        type=int,
        default=None,
        metavar="BYTES",
        help="size cap for --store; least-recently-used entries are "
        "evicted once the cap is exceeded",
    )
    parser.add_argument(
        "--no-warm-start",
        action="store_true",
        help="keep store-backed runs bit-reproducible: iterative "
        "detectors always train from scratch instead of warm-starting "
        "from an adjacent window length's weights",
    )


def _telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a schema-versioned JSONL telemetry trace (spans, "
        "counters, histograms) of the run; inspect it with "
        "'repro trace summarize PATH'",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's telemetry counters and histograms",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="DIR",
        help="dump cProfile .pstats files (one per worker thread/"
        "process) into DIR",
    )


def _telemetry(args: argparse.Namespace) -> "object | None":
    """A Telemetry collector when any observability flag was given."""
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", False)
    profile = getattr(args, "profile", None)
    if trace is None and not metrics and profile is None:
        return None
    from repro.runtime.telemetry import Telemetry

    return Telemetry(profile_dir=profile)


def _emit_telemetry(args: argparse.Namespace, engine: "object | None") -> None:
    """Write/print the artifacts the observability flags asked for."""
    _emit_collector(args, getattr(engine, "telemetry", None))


def _emit_collector(args: argparse.Namespace, collector: "object | None") -> None:
    """:func:`_emit_telemetry` for a collector held directly."""
    if collector is None:
        return
    trace_path = getattr(args, "trace", None)
    if trace_path is not None:
        print(f"trace: {collector.write_trace(trace_path)}")
    if getattr(args, "metrics", False):
        snapshot = collector.metrics.snapshot()
        rows = [
            (name, f"{value:g}")
            for name, value in sorted(snapshot["counters"].items())
        ]
        for name, (count, total, _low, high) in sorted(
            snapshot["histograms"].items()
        ):
            mean = total / count if count else 0.0
            rows.append((name, f"n={count:g} mean={mean:g} max={high:g}"))
        print(
            format_table(
                ("metric", "value"),
                rows or [("(none)", "-")],
                title="Telemetry metrics",
            )
        )
    profile_dir = getattr(args, "profile", None)
    if profile_dir is not None:
        written = collector.dump_profiles()
        print(f"profiles: {len(written)} .pstats file(s) in {profile_dir}")


#: Sentinel for ``--resume`` without a path: reuse ``--checkpoint``.
_RESUME_FROM_CHECKPOINT = "@checkpoint"


def _retry_arguments(parser: argparse.ArgumentParser) -> None:
    """The retry/timeout surface shared by the sweep commands and ``serve``.

    Parsed once by :meth:`ResiliencePolicy.from_args`, so the flags
    carry identical semantics on every subcommand exposing them.
    """
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-attempts per task after a transient failure (sweep "
        "blocks, or scoring attempts on the serving path)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per task: sweep blocks are retried on "
        "overrun; serve requests inherit it as their default deadline",
    )


def _resilience_arguments(parser: argparse.ArgumentParser) -> None:
    _retry_arguments(parser)
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="JSONL file completed cells are streamed to, so an "
        "interrupted sweep can resume",
    )
    parser.add_argument(
        "--resume",
        nargs="?",
        const=_RESUME_FROM_CHECKPOINT,
        default=None,
        metavar="PATH",
        help="resume from a checkpoint file (defaults to the "
        "--checkpoint path); finished cells are adopted bit-identically",
    )


def _checkpoint_paths(
    args: argparse.Namespace,
) -> tuple["str | None", "str | None"]:
    """The (checkpoint, resume_from) paths requested on the command line."""
    import os.path

    checkpoint = getattr(args, "checkpoint", None)
    resume = getattr(args, "resume", None)
    if resume == _RESUME_FROM_CHECKPOINT:
        if checkpoint is None:
            raise ReproError("--resume without a path requires --checkpoint")
        resume = checkpoint
    if resume is not None and not os.path.exists(resume):
        print(
            f"note: no checkpoint at {resume} yet; starting fresh",
            file=sys.stderr,
        )
        resume = None
    return checkpoint, resume


def _engine(args: argparse.Namespace) -> "object | None":
    """A SweepEngine honoring ``--jobs`` and the resilience flags.

    ``None`` (the serial reference path) when neither parallelism nor
    resilience was requested.
    """
    jobs = getattr(args, "jobs", 1) or 1
    executor = getattr(args, "executor", None)
    store_dir = getattr(args, "store", None)
    wants_resilience = (
        getattr(args, "retries", None) is not None
        or getattr(args, "task_timeout", None) is not None
        or getattr(args, "checkpoint", None) is not None
        or getattr(args, "resume", None) is not None
    )
    telemetry = _telemetry(args)
    kernel_tier = getattr(args, "kernel_tier", None)
    if (
        jobs <= 1
        and executor is None
        and not wants_resilience
        and store_dir is None
        and telemetry is None
        and kernel_tier is None
    ):
        return None
    from repro.runtime import ResiliencePolicy, SweepEngine

    resilience = ResiliencePolicy.from_args(args)
    if resilience is None and wants_resilience:
        resilience = ResiliencePolicy()
    if executor is None:
        executor = "serial" if jobs <= 1 else "thread"
    store = None
    if store_dir is not None:
        from repro.runtime.store import ArtifactStore

        store = ArtifactStore(store_dir, cap_bytes=getattr(args, "store_cap", None))
    return SweepEngine(
        max_workers=jobs,
        executor=executor,
        resilience=resilience,
        use_shared_memory=not getattr(args, "no_shm", False),
        store=store,
        warm_start=False if getattr(args, "no_warm_start", False) else None,
        telemetry=telemetry,
        kernel_tier=kernel_tier if kernel_tier is not None else "auto",
    )


#: Training-stream length ``maps --quick`` runs at: the same reduced
#: scale the CI smoke jobs use — every rare pair still appears, the
#: full (size x window) grid is swept, and a run takes seconds.
_QUICK_STREAM_LENGTH = 12_000


def _cmd_maps(args: argparse.Namespace) -> int:
    stream_len = args.stream_len
    if getattr(args, "quick", False) and stream_len is None:
        stream_len = _QUICK_STREAM_LENGTH
    detectors = args.detectors or list(DEFAULT_DETECTORS)
    unknown = [name for name in detectors if name not in available_detectors()]
    if unknown:
        raise ReproError(
            f"unknown detectors: {', '.join(unknown)}; "
            f"available: {', '.join(available_detectors())}"
        )
    checkpoint, resume_from = _checkpoint_paths(args)
    engine = _engine(args)
    # Thin wrapper over a compiled one-stage plan: the CLI and a plan
    # file running the same parameters share one execution path, so
    # their fingerprints — and outputs — are identical by construction.
    from repro.evaluation.experiment import ExperimentResult
    from repro.plans import ExperimentPlan, PlanRunner, SweepStage

    plan = ExperimentPlan(
        name="maps",
        stages=(
            SweepStage(
                name="maps",
                stream_len=stream_len,
                seed=args.seed,
                detectors=tuple(detectors),
            ),
        ),
    )
    report = PlanRunner(
        plan,
        engine=engine,
        checkpoint=checkpoint,
        resume_from=resume_from,
    ).run()
    output = report.results["maps"]
    result = ExperimentResult(
        suite=output.suite, maps=output.maps, run_report=output.run_report
    )
    for name in detectors:
        print(render_performance_map(result.map_for(name)))
        print()
    print(result.summary())
    if result.run_report is not None:
        print(result.run_report.summary())
    elif getattr(engine, "store", None) is not None:
        stats = engine.last_fit_stats
        print(
            f"fits: {stats.computed} computed / {stats.from_store} from "
            f"store / {stats.warm_started} warm"
        )
    if len(detectors) >= 2:
        print()
        print(map_agreement_report(result.maps))
    _emit_telemetry(args, engine)
    return 0


def _cmd_suppression(args: argparse.Namespace) -> int:
    models = {model.name: model for model in all_program_models()}
    if args.program not in models:
        raise ReproError(
            f"unknown program {args.program!r}; available: "
            f"{', '.join(sorted(models))}"
        )
    dataset = build_dataset(
        models[args.program],
        seed=args.seed if args.seed is not None else 1996,
        training_sessions=args.sessions,
    )
    streams = dataset.training_streams()
    alphabet_size = dataset.alphabet.size
    stide = create_detector("stide", args.window, alphabet_size).fit_many(streams)
    markov = create_detector("markov", args.window, alphabet_size).fit_many(streams)
    traces = list(dataset.test_normal) + list(dataset.test_intrusions)
    stide_level = MaximalResponseThreshold.for_detector(stide)
    markov_level = MaximalResponseThreshold.for_detector(markov)
    stide_alarms, markov_alarms, truths = [], [], []
    for trace in traces:
        stide_alarms.append(stide_level.alarms(stide.score_stream(trace.stream)))
        markov_alarms.append(markov_level.alarms(markov.score_stream(trace.stream)))
        truths.append(truth_window_regions(trace, args.window))
    gated = [gated_alarms(m, s) for m, s in zip(markov_alarms, stide_alarms)]
    rows = []
    for name, alarms in (
        ("stide", stide_alarms),
        ("markov", markov_alarms),
        ("markov gated by stide", gated),
    ):
        metrics = evaluate_alarms(alarms, truths)
        rows.append(
            (name, f"{metrics.hit_rate:.2f}", f"{metrics.false_alarm_rate:.4f}")
        )
    print(
        format_table(
            ("detector", "hit rate", "FA rate"),
            rows,
            title=f"{args.program} deployment, DW={args.window}",
        )
    )
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    if args.program:
        models = {model.name: model for model in all_program_models()}
        if args.program not in models:
            raise ReproError(
                f"unknown program {args.program!r}; available: "
                f"{', '.join(sorted(models))}"
            )
        dataset = build_dataset(models[args.program], training_sessions=200)
        stream = np.concatenate(dataset.training_streams())
        label = f"{args.program} traces ({len(stream):,} calls)"
    else:
        params = scaled_params(args.stream_len, seed=args.seed)
        stream = generate_training_data(params).stream
        label = f"paper corpus ({len(stream):,} elements)"
    analyzer = ForeignSequenceAnalyzer(stream)
    census = mfs_census(
        analyzer, lengths=tuple(range(2, args.max_length + 1))
    )
    rows = [(length, count) for length, count in census.rows()]
    print(
        format_table(
            ("MFS length", "count"),
            rows,
            title=f"Minimal-foreign-sequence census — {label}",
        )
    )
    recommendation = census.recommended_stide_window()
    if recommendation is None:
        print("no MFS constructible; any window suffices")
    else:
        print(
            f"largest MFS present: {recommendation} -> deploy Stide with "
            f"DW >= {recommendation} (the 'Why 6?' bound)"
        )
    return 0


def _cmd_anomaly(args: argparse.Namespace) -> int:
    params = scaled_params(args.stream_len, seed=args.seed)
    training = generate_training_data(params)
    anomaly = AnomalySynthesizer(training).synthesize(args.size, index=args.index)
    symbols = training.alphabet.decode(anomaly.sequence)
    print(f"MFS of size {anomaly.size} (candidate #{args.index}):")
    print(f"  symbols: {' '.join(str(s) for s in symbols)}")
    print(f"  codes:   {anomaly.sequence}")
    print(
        f"  left part  {anomaly.left_part} "
        f"(frequency {anomaly.left_part_frequency:.4%})"
    )
    print(
        f"  right part {anomaly.right_part} "
        f"(frequency {anomaly.right_part_frequency:.4%})"
    )
    print(f"  composed of rare parts: {anomaly.parts_rare}")
    return 0


def _cmd_atlas(args: argparse.Namespace) -> int:
    from repro.datagen.suite import build_suite
    from repro.evaluation.performance_map import build_performance_map
    from repro.evaluation.render import render_map_summary

    params = scaled_params(args.stream_len, seed=args.seed)
    training = generate_training_data(params)
    suite = build_suite(training=training)
    names = args.detectors or [
        name for name in available_detectors() if name != "neural-network"
    ]
    unknown = [name for name in names if name not in available_detectors()]
    if unknown:
        raise ReproError(
            f"unknown detectors: {', '.join(unknown)}; "
            f"available: {', '.join(available_detectors())}"
        )
    engine = _engine(args)
    checkpoint, resume_from = _checkpoint_paths(args)
    maps = {
        name: build_performance_map(
            name,
            suite,
            engine=engine,
            checkpoint=checkpoint,
            resume_from=resume_from,
        )
        for name in names
    }
    rows = [
        (
            name,
            len(maps[name].capable_cells()),
            len(maps[name].weak_cells()),
            len(maps[name].blind_cells()),
        )
        for name in names
    ]
    print(
        format_table(
            ("detector", "capable", "weak", "blind"),
            rows,
            title=f"Detector atlas over the {suite.case_count()}-cell grid",
        )
    )
    print()
    for name in names:
        print(render_map_summary(maps[name]))
    if len(names) >= 2:
        print()
        print(map_agreement_report(maps))
    _emit_telemetry(args, engine)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.datagen.suite import build_suite
    from repro.evaluation.response_profile import (
        compare_profiles,
        response_profile,
    )

    params = scaled_params(args.stream_len, seed=args.seed)
    training = generate_training_data(params)
    suite = build_suite(training=training)
    if args.size not in suite.anomaly_sizes:
        raise ReproError(
            f"anomaly size {args.size} outside the suite "
            f"{suite.anomaly_sizes}"
        )
    injected = suite.stream(args.size)
    detectors = args.detectors or ["stide", "markov", "lane-brodley"]
    unknown = [name for name in detectors if name not in available_detectors()]
    if unknown:
        raise ReproError(
            f"unknown detectors: {', '.join(unknown)}; "
            f"available: {', '.join(available_detectors())}"
        )
    profiles = []
    for name in detectors:
        detector = create_detector(name, args.window, params.alphabet_size)
        detector.fit(training.stream)
        profiles.append(response_profile(detector, injected))
    print(
        f"size-{args.size} MFS at position {injected.position}, "
        f"DW={args.window}"
    )
    print("levels: _ 0 | . - = ^ graded | # maximal; | | marks the span\n")
    print(compare_profiles(profiles))
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    from repro.datagen.suite import build_suite
    from repro.ensemble import AnomalyProfile, Coverage, select_detectors
    from repro.evaluation.performance_map import build_performance_map

    params = scaled_params(args.stream_len, seed=args.seed)
    training = generate_training_data(params)
    suite = build_suite(training=training)
    candidates = args.detectors or ["stide", "markov", "lane-brodley"]
    engine = _engine(args)
    checkpoint, resume_from = _checkpoint_paths(args)
    coverages = {
        name: Coverage.from_performance_map(
            build_performance_map(
                name,
                suite,
                engine=engine,
                checkpoint=checkpoint,
                resume_from=resume_from,
            )
        )
        for name in candidates
    }
    profile = AnomalyProfile(
        size=args.size, max_deployable_window=args.max_window
    )
    advice = select_detectors(coverages, profile)
    print(f"recommendation: {advice.describe()}")
    if advice.redundant:
        print(f"redundant: {', '.join(advice.redundant)}")
    print(f"rationale: {advice.rationale}")
    _emit_telemetry(args, engine)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime.resilience import ResiliencePolicy
    from repro.serve import (
        AdmissionPolicy,
        BatchPolicy,
        ChaosDirector,
        ScoringServer,
        ServeFaultSchedule,
    )

    resilience = ResiliencePolicy.from_args(args, default_retries=1)
    retries = resilience.retry.retries if resilience is not None else 1
    default_budget = 5.0
    if resilience is not None and resilience.task_timeout is not None:
        default_budget = resilience.task_timeout
    policy = AdmissionPolicy(
        queue_depth=args.queue_depth,
        default_budget=default_budget,
        max_budget=max(30.0, default_budget),
        breaker_failures=args.breaker_failures,
        breaker_reset=args.breaker_reset,
    )
    schedule = None
    if args.chaos_rate > 0:
        schedule = ServeFaultSchedule(rate=args.chaos_rate, seed=args.chaos_seed)
    models = None
    if args.models_dir:
        from repro.runtime.shardstore import ShardedStore
        from repro.runtime.store import ArtifactStore

        models = ShardedStore(
            args.models_dir,
            hot_cap_bytes=args.hot_cap_mb * 1024 * 1024,
            cold=ArtifactStore(Path(args.models_dir) / "cold"),
        )
    server = ScoringServer(
        args.state_dir,
        host=args.host,
        port=args.port,
        policy=policy,
        chaos=ChaosDirector(schedule),
        retries=retries,
        snapshot_every=args.snapshot_every,
        fsync=args.fsync,
        models=models,
        delta_verify_every=args.delta_verify_every,
        batching=BatchPolicy(
            max_batch=args.batch_max,
            max_wait_us=args.batch_wait_us,
            workers=args.score_workers,
            executor=args.score_executor,
        ),
    )

    async def run() -> None:
        await server.start()
        recovery = server.recovery
        assert recovery is not None
        print(
            f"serving on {args.host}:{server.port} "
            f"(state: {args.state_dir}; recovered {recovery.tenants} "
            f"tenant(s), {recovery.replayed_records} WAL record(s) "
            f"replayed, {len(recovery.quarantined)} quarantined)"
        )
        if args.ready_file:
            import pathlib

            pathlib.Path(args.ready_file).write_text(
                f"{server.port}\n", encoding="utf-8"
            )
        sys.stdout.flush()
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; tenant state is journaled", file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json as json_module

    from repro.serve import LoadPlan, run_load

    arrival_rate = None if args.closed else args.rate
    if args.quick:
        plan = LoadPlan.quick(seed=args.seed)
        if arrival_rate is not None:
            import dataclasses

            plan = dataclasses.replace(plan, arrival_rate=arrival_rate)
    else:
        plan = LoadPlan(
            tenants=args.tenants,
            train_chunks=args.train_chunks,
            scores_per_tenant=args.scores,
            seed=args.seed,
            arrival_rate=arrival_rate,
        )
    report = asyncio.run(
        run_load(args.host, args.port, plan, dump_scores=args.dump_scores)
    )
    summary = report.summary()
    print(json_module.dumps(summary, indent=2))
    if args.json:
        import pathlib

        pathlib.Path(args.json).write_text(
            json_module.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
    if report.violations:
        for violation in report.violations[:10]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        print(
            f"no-wrong-score invariant violated {len(report.violations)} "
            "time(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.runtime.telemetry import summarize_trace

    print(summarize_trace(args.path))
    return 0


def _cmd_trace_validate(args: argparse.Namespace) -> int:
    from repro.runtime.telemetry import check_trace_counters, read_trace

    headers, spans, counters, histograms = read_trace(args.path)
    print(
        f"{args.path}: {len(headers)} header(s), {len(spans)} span(s), "
        f"{len(counters)} counter(s), {len(histograms)} histogram(s) "
        "— schema ok"
    )
    problems = check_trace_counters(counters, spans)
    if problems:
        for problem in problems:
            print(f"inconsistent: {problem}", file=sys.stderr)
        return 1
    print("counters consistent")
    return 0


def _cmd_plan_validate(args: argparse.Namespace) -> int:
    from repro.plans import load_plan

    plan = load_plan(args.plan)
    order = plan.validate()
    fingerprints = plan.fingerprints()
    print(f"plan '{plan.name}': {len(order)} stage(s), order valid")
    for name in order:
        stage = plan.stage(name)
        needs = f" needs={','.join(stage.needs)}" if stage.needs else ""
        print(f"stage {name}: {stage.kind}{needs} {fingerprints[name][:16]}")
    return 0


def _cmd_plan_run(args: argparse.Namespace) -> int:
    from repro.plans import PlanRunner, load_plan
    from repro.runtime import ResiliencePolicy

    plan = load_plan(args.plan)
    collector = _telemetry(args)
    resilience = ResiliencePolicy.from_args(args)
    if resilience is None and (
        getattr(args, "retries", None) is not None
        or getattr(args, "task_timeout", None) is not None
    ):
        resilience = ResiliencePolicy()
    runner = PlanRunner(
        plan,
        run_dir=args.run_dir,
        store=args.store,
        jobs=args.jobs,
        executor=args.executor,
        resilience=resilience,
        telemetry=collector,
    )
    report = runner.run()
    print(report.summary())
    _emit_collector(args, collector)
    return 0


def _cmd_plan_status(args: argparse.Namespace) -> int:
    from repro.plans import run_status

    print(run_status(args.run_dir))
    return 0


def _cmd_plan_worker(args: argparse.Namespace) -> int:
    from repro.plans import Worker

    collector = _telemetry(args)
    worker = Worker(
        args.run_dir,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        jobs=args.jobs,
        executor=args.executor,
        telemetry=collector,
        crash_after_claims=args.crash_after_claims,
        max_seconds=args.max_seconds,
    )
    report = worker.run()
    print(report.summary())
    _emit_collector(args, collector)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Tan & Maxion (DSN 2005) from the command line.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    maps = subparsers.add_parser(
        "maps", help="print the Figure 3-6 performance maps"
    )
    _corpus_arguments(maps)
    _jobs_argument(maps)
    _resilience_arguments(maps)
    _store_arguments(maps)
    _telemetry_arguments(maps)
    maps.add_argument(
        "--quick",
        action="store_true",
        help="CI-scale run: a reduced 12k-element corpus over the full "
        "grid (overridden by an explicit --stream-len)",
    )
    maps.add_argument(
        "--detectors",
        nargs="+",
        metavar="NAME",
        help=f"detectors to chart (default: the paper's four; "
        f"available: {', '.join(available_detectors())})",
    )
    maps.set_defaults(func=_cmd_maps)

    suppression = subparsers.add_parser(
        "suppression", help="run the Section-7 suppression deployment"
    )
    suppression.add_argument("--program", default="sendmail")
    suppression.add_argument("--window", type=int, default=4)
    suppression.add_argument("--sessions", type=int, default=300)
    suppression.add_argument("--seed", type=int, default=None)
    suppression.set_defaults(func=_cmd_suppression)

    census = subparsers.add_parser(
        "census", help="count constructible minimal foreign sequences"
    )
    _corpus_arguments(census)
    census.add_argument(
        "--program",
        default=None,
        help="census a UNM-style program's traces instead of the paper corpus",
    )
    census.add_argument("--max-length", type=int, default=9)
    census.set_defaults(func=_cmd_census)

    anomaly = subparsers.add_parser(
        "anomaly", help="synthesize one minimal foreign sequence"
    )
    _corpus_arguments(anomaly)
    anomaly.add_argument("--size", type=int, default=6)
    anomaly.add_argument("--index", type=int, default=0)
    anomaly.set_defaults(func=_cmd_anomaly)

    atlas = subparsers.add_parser(
        "atlas", help="chart every registered detector on the suite grid"
    )
    _corpus_arguments(atlas)
    _jobs_argument(atlas)
    _resilience_arguments(atlas)
    _store_arguments(atlas)
    _telemetry_arguments(atlas)
    atlas.add_argument(
        "--detectors",
        nargs="+",
        metavar="NAME",
        help="families to chart (default: all but the neural network)",
    )
    atlas.set_defaults(func=_cmd_atlas)

    profile = subparsers.add_parser(
        "profile", help="render detector response sparklines around one MFS"
    )
    _corpus_arguments(profile)
    profile.add_argument("--size", type=int, default=6)
    profile.add_argument("--window", type=int, default=4)
    profile.add_argument("--detectors", nargs="+", metavar="NAME")
    profile.set_defaults(func=_cmd_profile)

    select = subparsers.add_parser(
        "select", help="recommend a detector combination for an anomaly profile"
    )
    _corpus_arguments(select)
    _jobs_argument(select)
    _resilience_arguments(select)
    _store_arguments(select)
    _telemetry_arguments(select)
    select.add_argument(
        "--size",
        type=int,
        default=None,
        help="expected anomaly size; omit when unknown",
    )
    select.add_argument("--max-window", type=int, default=8)
    select.add_argument("--detectors", nargs="+", metavar="NAME")
    select.set_defaults(func=_cmd_select)

    serve = subparsers.add_parser(
        "serve",
        help="run the fault-hardened multi-tenant scoring service",
    )
    serve.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="service state root (per-tenant WALs, manifests, snapshots)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (0 picks a free one; see --ready-file)",
    )
    _retry_arguments(serve)
    serve.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=16,
        metavar="N",
        help="per-tenant bounded queue depth; a full queue refuses (429)",
    )
    serve.add_argument(
        "--breaker-failures",
        type=_positive_int,
        default=5,
        metavar="N",
        help="consecutive failures that open a tenant's circuit breaker",
    )
    serve.add_argument(
        "--breaker-reset",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="cool-down before an open breaker admits a probe request",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        metavar="N",
        help="snapshot a tenant's stream every N ingests (0 disables)",
    )
    serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync WAL appends (power-loss durability; slower)",
    )
    serve.add_argument(
        "--models-dir",
        default=None,
        metavar="DIR",
        help="tiered fleet model store directory (hot LRU -> mmap "
        "shards -> cold); enables delta-fits on ingest",
    )
    serve.add_argument(
        "--hot-cap-mb",
        type=_positive_int,
        default=64,
        metavar="MB",
        help="hot-tier byte cap for live detector objects",
    )
    serve.add_argument(
        "--delta-verify-every",
        type=int,
        default=256,
        metavar="N",
        help="cross-check one delta-fitted model against a cold refit "
        "every N delta updates (0 disables)",
    )
    serve.add_argument(
        "--chaos-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="probability an eligible request draws an injected fault "
        "(latency, corrupt-event, store-read, worker-crash)",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=0, metavar="SEED",
        help="seed of the deterministic chaos schedule",
    )
    serve.add_argument(
        "--batch-max",
        type=_positive_int,
        default=32,
        metavar="N",
        help="max score jobs fused into one micro-batch kernel call "
        "(1 disables cross-tenant batching)",
    )
    serve.add_argument(
        "--batch-wait-us",
        type=float,
        default=250.0,
        metavar="US",
        help="max microseconds a forming batch waits for co-travellers "
        "(single-job batches bypass the wait entirely)",
    )
    serve.add_argument(
        "--score-workers",
        type=_positive_int,
        default=4,
        metavar="N",
        help="scoring worker pool size for fused batch dispatch",
    )
    serve.add_argument(
        "--score-executor",
        choices=("process", "thread", "serial"),
        default="thread",
        help="worker pool kind; degrades process->thread->serial on "
        "pool failure",
    )
    serve.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help="write the bound port here once listening (for harnesses)",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive seeded load at a serve instance and verify every score",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument(
        "--quick",
        action="store_true",
        help="CI-scale plan (2 tenants, 3 train chunks, 6 scores each)",
    )
    loadgen.add_argument("--tenants", type=_positive_int, default=3)
    loadgen.add_argument("--train-chunks", type=_positive_int, default=6)
    loadgen.add_argument("--scores", type=_positive_int, default=9)
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument(
        "--rate",
        type=float,
        default=200.0,
        metavar="RPS",
        help="open-loop Poisson arrival rate for the scoring phase; "
        "latency is measured from each request's scheduled arrival "
        "(coordinated-omission-safe)",
    )
    loadgen.add_argument(
        "--closed",
        action="store_true",
        help="closed-loop mode: each tenant sends its next request "
        "only after the previous completes (ignores --rate)",
    )
    loadgen.add_argument(
        "--dump-scores",
        default=None,
        metavar="PATH",
        help="write every verified score response as sorted JSONL "
        "(for byte-for-byte batched-vs-unbatched diffs)",
    )
    loadgen.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the report summary as JSON",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    trace = subparsers.add_parser(
        "trace", help="inspect a --trace telemetry file"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="per-phase time table plus the headline rates"
    )
    summarize.add_argument("path", help="JSONL trace written by --trace")
    summarize.set_defaults(func=_cmd_trace_summarize)
    validate = trace_sub.add_parser(
        "validate",
        help="schema-validate every line and cross-check the counters",
    )
    validate.add_argument("path", help="JSONL trace written by --trace")
    validate.set_defaults(func=_cmd_trace_validate)

    plan = subparsers.add_parser(
        "plan", help="validate and execute declarative experiment plans"
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)

    plan_validate = plan_sub.add_parser(
        "validate",
        help="parse a plan file, check the stage DAG, print fingerprints",
    )
    plan_validate.add_argument("plan", help="plan file (.toml or .json)")
    plan_validate.set_defaults(func=_cmd_plan_validate)

    def _plan_run_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("plan", help="plan file (.toml or .json)")
        sub.add_argument(
            "--run-dir",
            default=None,
            metavar="DIR",
            help="run directory for checkpoints, the journal and the "
            "canonical stage outputs; a re-run against the same "
            "directory resumes instead of recomputing",
        )
        sub.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help="ArtifactStore directory for stage payloads and fits "
            "(default: <run-dir>/store)",
        )
        sub.add_argument(
            "--jobs",
            type=_positive_int,
            default=1,
            metavar="N",
            help="engine workers inside each stage",
        )
        sub.add_argument(
            "--executor",
            choices=("thread", "process", "serial"),
            default=None,
            help="engine backend (default: serial for --jobs 1, "
            "thread otherwise)",
        )
        _retry_arguments(sub)
        _telemetry_arguments(sub)

    plan_run = plan_sub.add_parser(
        "run", help="execute every stage of a plan (exactly-once, cached)"
    )
    _plan_run_arguments(plan_run)
    plan_run.set_defaults(func=_cmd_plan_run)

    plan_resume = plan_sub.add_parser(
        "resume",
        help="continue an interrupted run: cached stages are adopted "
        "bit-identically, interrupted sweeps resume from their cell "
        "checkpoints",
    )
    _plan_run_arguments(plan_resume)
    plan_resume.set_defaults(func=_cmd_plan_run)

    plan_status = plan_sub.add_parser(
        "status", help="per-stage progress of a plan run directory"
    )
    plan_status.add_argument("run_dir", help="plan run directory")
    plan_status.set_defaults(func=_cmd_plan_status)

    plan_worker = plan_sub.add_parser(
        "worker",
        help="join a run directory as a file-queue worker (claim stages "
        "via atomic leases, heartbeat while executing, take over "
        "expired leases)",
    )
    plan_worker.add_argument("run_dir", help="shared plan run directory")
    plan_worker.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="unique worker id (default: w<pid>)",
    )
    plan_worker.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="heartbeat silence after which a lease is taken over",
    )
    plan_worker.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="engine workers inside this queue worker",
    )
    plan_worker.add_argument(
        "--executor",
        choices=("thread", "process", "serial"),
        default=None,
        help="engine backend for this worker's stages",
    )
    plan_worker.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up waiting for claimable work after this long",
    )
    plan_worker.add_argument(
        "--crash-after-claims",
        type=int,
        default=None,
        metavar="N",
        help="fault injection: die (os._exit) after the Nth successful "
        "claim, leaving the lease to expire",
    )
    _telemetry_arguments(plan_worker)
    plan_worker.set_defaults(func=_cmd_plan_worker)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
