"""Declarative experiment plans: typed stages compiled to a DAG.

An :class:`ExperimentPlan` is the declarative description of one
complete study — the performance-map sweep of Figures 3-6, a
seed-robustness grid, an ensemble-selection study, the rendered star
charts — as a set of named, typed stages wired by explicit ``needs``
edges.  A plan file (TOML or JSON) is data, not code::

    name = "smoke"
    description = "CI-scale plan"

    [[stages]]
    name = "maps"
    kind = "sweep"
    stream_len = 12000
    detectors = ["stide", "markov"]

    [[stages]]
    name = "charts"
    kind = "render"
    needs = ["maps"]

Compilation (:meth:`ExperimentPlan.toposort`) validates the graph —
unknown stage references and dependency cycles are rejected with a
*named-stage* :class:`~repro.exceptions.PlanError` rather than ever
reaching the executor — and yields a deterministic topological order.

Every stage has a **content fingerprint**
(:meth:`ExperimentPlan.fingerprints`): the sha256 of a canonical
recipe covering the plan schema version, the store schema version,
the stage's own configuration, the fingerprints of its dependencies
(so an upstream change invalidates everything downstream), and the
detector family fingerprints from
:meth:`~repro.detectors.base.AnomalyDetector.family_fingerprint` —
the same content-addressing discipline as
:func:`repro.runtime.store.fit_key`.  Identical plan → identical
fingerprints, across processes and machines; the fingerprint is what
makes a re-run with unchanged configuration compute nothing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.detectors.registry import available_detectors, create_detector
from repro.evaluation.experiment import DEFAULT_DETECTORS
from repro.evaluation.robustness import PAPER_SHAPES
from repro.exceptions import PlanError
from repro.params import PAPER_ALPHABET_SIZE, scaled_params

try:  # Python 3.11+; TOML plans degrade to a clear error on 3.10.
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.10 only
    tomllib = None  # type: ignore[assignment]

#: Bump when the plan recipe or stage payload layout changes: old
#: fingerprints (and therefore cached stage outputs) are invalidated.
#: v2: the effective training length (REPRO_STREAM_LEN resolution for
#: an unset ``stream_len``) became part of the recipe.
PLAN_SCHEMA_VERSION = 2

#: The stage vocabulary; :func:`stage_from_dict` rejects others.
STAGE_KINDS: tuple[str, ...] = ("sweep", "robustness", "ensemble", "render")


def _require_name(name: object, what: str) -> str:
    if not isinstance(name, str) or not name or "/" in name or name != name.strip():
        raise PlanError(
            f"{what} name must be a non-empty path-safe string, got {name!r}"
        )
    return name


def _int_field(stage: str, data: dict, key: str, default: int | None) -> int | None:
    value = data.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise PlanError(f"stage {stage!r}: {key} must be an integer, got {value!r}")
    return value


def _names_field(
    stage: str, data: dict, key: str, default: tuple[str, ...]
) -> tuple[str, ...]:
    value = data.get(key)
    if value is None:
        return default
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise PlanError(f"stage {stage!r}: {key} must be a list of strings")
    return tuple(value)


def _ints_field(
    stage: str, data: dict, key: str, default: tuple[int, ...] | None
) -> tuple[int, ...] | None:
    value = data.get(key)
    if value is None:
        return default
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, int) and not isinstance(item, bool) for item in value
    ):
        raise PlanError(f"stage {stage!r}: {key} must be a list of integers")
    return tuple(value)


def _check_detectors(stage: str, names: tuple[str, ...]) -> None:
    if not names:
        raise PlanError(f"stage {stage!r}: at least one detector is required")
    unknown = [name for name in names if name not in available_detectors()]
    if unknown:
        raise PlanError(
            f"stage {stage!r}: unknown detectors: {', '.join(unknown)}; "
            f"available: {', '.join(available_detectors())}"
        )


@dataclass(frozen=True)
class SweepStage:
    """One performance-map sweep over the (AS x DW) grid.

    The workhorse stage: builds the corpus from ``(stream_len, seed)``
    exactly as :func:`repro.params.scaled_params` would and charts
    every named detector, through the engine the runner carries.

    Attributes:
        name: stage label, unique within the plan.
        stream_len: training-stream length (``None`` = the
            ``scaled_params`` default, honoring ``REPRO_STREAM_LEN``).
        seed: corpus master seed (``None`` = the paper default).
        detectors: registered detector names to sweep.
        anomaly_sizes: grid rows (``None`` = the paper's 2..9).
        window_sizes: grid columns (``None`` = the paper's 2..15).
        needs: upstream stage names (sweeps are usually roots).
    """

    name: str
    stream_len: int | None = None
    seed: int | None = None
    detectors: tuple[str, ...] = DEFAULT_DETECTORS
    anomaly_sizes: tuple[int, ...] | None = None
    window_sizes: tuple[int, ...] | None = None
    needs: tuple[str, ...] = ()

    kind = "sweep"

    def __post_init__(self) -> None:
        _require_name(self.name, "stage")
        _check_detectors(self.name, self.detectors)
        if self.stream_len is not None and self.stream_len <= 0:
            raise PlanError(
                f"stage {self.name!r}: stream_len must be positive, "
                f"got {self.stream_len}"
            )


@dataclass(frozen=True)
class RobustnessStage:
    """A seed-robustness grid: do the paper's shapes replicate?

    Runs :func:`repro.evaluation.robustness.replicate_shapes` across
    ``seeds``, checking each detector's qualitative map shape
    (:data:`~repro.evaluation.robustness.PAPER_SHAPES`).

    Attributes:
        seeds: corpus seeds to replicate under (at least one).
        stream_len: training-stream length per replication.
        test_stream_len: injected test-stream length per case.
        detectors: subset of the paper-shape detectors to check
            (``None`` = all four figures).
    """

    name: str
    seeds: tuple[int, ...] = (1, 2, 3)
    stream_len: int | None = None
    test_stream_len: int = 1000
    detectors: tuple[str, ...] | None = None
    needs: tuple[str, ...] = ()

    kind = "robustness"

    def __post_init__(self) -> None:
        _require_name(self.name, "stage")
        if not self.seeds:
            raise PlanError(f"stage {self.name!r}: at least one seed is required")
        if self.stream_len is not None and self.stream_len <= 0:
            raise PlanError(
                f"stage {self.name!r}: stream_len must be positive, "
                f"got {self.stream_len}"
            )
        if self.test_stream_len <= 0:
            raise PlanError(
                f"stage {self.name!r}: test_stream_len must be positive, "
                f"got {self.test_stream_len}"
            )
        if self.detectors is not None:
            if not self.detectors:
                raise PlanError(
                    f"stage {self.name!r}: detectors must not be empty; "
                    "omit the key to check every paper-shape detector"
                )
            unknown = [n for n in self.detectors if n not in PAPER_SHAPES]
            if unknown:
                raise PlanError(
                    f"stage {self.name!r}: no paper shape for: "
                    f"{', '.join(unknown)}; available: "
                    f"{', '.join(sorted(PAPER_SHAPES))}"
                )


@dataclass(frozen=True)
class EnsembleStage:
    """An ensemble study over one sweep's maps.

    Computes coverage algebra and a detector-combination
    recommendation (:func:`repro.ensemble.select_detectors`) plus the
    pairwise map-agreement report from the maps of the single sweep
    stage this one ``needs``.

    Attributes:
        size: expected anomaly size for the selection profile
            (``None`` = unknown).
        max_window: largest deployable detector window.
    """

    name: str
    needs: tuple[str, ...] = ()
    size: int | None = None
    max_window: int = 8

    kind = "ensemble"

    def __post_init__(self) -> None:
        _require_name(self.name, "stage")
        if len(self.needs) != 1:
            raise PlanError(
                f"stage {self.name!r}: an ensemble stage needs exactly one "
                f"sweep stage, got needs={list(self.needs)}"
            )
        if self.max_window < 2:
            raise PlanError(
                f"stage {self.name!r}: max_window must be >= 2 (the "
                f"smallest detector window), got {self.max_window}"
            )


@dataclass(frozen=True)
class RenderStage:
    """Star charts + one-line summaries for one sweep's maps."""

    name: str
    needs: tuple[str, ...] = ()

    kind = "render"

    def __post_init__(self) -> None:
        _require_name(self.name, "stage")
        if len(self.needs) != 1:
            raise PlanError(
                f"stage {self.name!r}: a render stage needs exactly one "
                f"sweep stage, got needs={list(self.needs)}"
            )


Stage = SweepStage | RobustnessStage | EnsembleStage | RenderStage

_STAGE_TYPES: dict[str, type] = {
    "sweep": SweepStage,
    "robustness": RobustnessStage,
    "ensemble": EnsembleStage,
    "render": RenderStage,
}


def stage_from_dict(data: dict) -> Stage:
    """Build one typed stage from its plan-file table.

    Raises:
        PlanError: naming the stage, on an unknown kind, an unknown
            key, or a mistyped field.
    """
    if not isinstance(data, dict):
        raise PlanError(f"each stage must be a table/object, got {type(data).__name__}")
    name = _require_name(data.get("name"), "stage")
    kind = data.get("kind")
    if kind not in _STAGE_TYPES:
        raise PlanError(
            f"stage {name!r}: unknown kind {kind!r}; "
            f"expected one of: {', '.join(STAGE_KINDS)}"
        )
    cls = _STAGE_TYPES[kind]
    known = {f.name for f in fields(cls)} | {"kind"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise PlanError(
            f"stage {name!r}: unknown key(s): {', '.join(unknown)}; "
            f"a {kind} stage accepts: {', '.join(sorted(known - {'kind', 'name'}))}"
        )
    needs = _names_field(name, data, "needs", ())
    if kind == "sweep":
        return SweepStage(
            name=name,
            stream_len=_int_field(name, data, "stream_len", None),
            seed=_int_field(name, data, "seed", None),
            detectors=_names_field(name, data, "detectors", DEFAULT_DETECTORS),
            anomaly_sizes=_ints_field(name, data, "anomaly_sizes", None),
            window_sizes=_ints_field(name, data, "window_sizes", None),
            needs=needs,
        )
    if kind == "robustness":
        detectors = (
            _names_field(name, data, "detectors", ())
            if "detectors" in data
            else None
        )
        # Explicit falsy values (seeds = [], test_stream_len = 0) must
        # reach the dataclass validators and fail loudly there — only
        # an *absent* key falls back to its default.
        return RobustnessStage(
            name=name,
            seeds=_ints_field(name, data, "seeds", (1, 2, 3)),
            stream_len=_int_field(name, data, "stream_len", None),
            test_stream_len=_int_field(name, data, "test_stream_len", 1000),
            detectors=detectors,
            needs=needs,
        )
    if kind == "ensemble":
        return EnsembleStage(
            name=name,
            needs=needs,
            size=_int_field(name, data, "size", None),
            max_window=_int_field(name, data, "max_window", 8),
        )
    return RenderStage(name=name, needs=needs)


def _stage_to_dict(stage: Stage) -> dict:
    record: dict[str, object] = {"name": stage.name, "kind": stage.kind}
    for spec_field in fields(stage):
        if spec_field.name == "name":
            continue
        value = getattr(stage, spec_field.name)
        if value is None or value == ():
            continue
        record[spec_field.name] = list(value) if isinstance(value, tuple) else value
    return record


@dataclass(frozen=True)
class ExperimentPlan:
    """One declarative experiment: named typed stages wired by needs.

    Attributes:
        name: plan label (used for run directories and reports).
        stages: the typed stage tuple, in file order.
        description: free-form one-liner shown by ``plan status``.
    """

    name: str
    stages: tuple[Stage, ...]
    description: str = ""

    def __post_init__(self) -> None:
        _require_name(self.name, "plan")
        if not self.stages:
            raise PlanError(f"plan {self.name!r}: at least one stage is required")
        seen: set[str] = set()
        for stage in self.stages:
            if stage.name in seen:
                raise PlanError(
                    f"plan {self.name!r}: duplicate stage name {stage.name!r}"
                )
            seen.add(stage.name)

    def stage(self, name: str) -> Stage:
        """The stage registered under ``name``.

        Raises:
            PlanError: for names not in the plan.
        """
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise PlanError(
            f"plan {self.name!r}: no stage named {name!r}; "
            f"stages: {', '.join(s.name for s in self.stages)}"
        )

    def toposort(self) -> tuple[str, ...]:
        """Compile the stage graph into a deterministic execution order.

        Kahn's algorithm with sorted tie-breaking, so the order is a
        pure function of the plan.  This is the validation gate the
        executor relies on: a stage naming an unknown dependency or a
        dependency cycle raises here, with the offending stage(s)
        named — it can never hang the DAG executor downstream.

        Raises:
            PlanError: on an unknown ``needs`` reference or a cycle.
        """
        known = {stage.name for stage in self.stages}
        for stage in self.stages:
            for need in stage.needs:
                if need not in known:
                    raise PlanError(
                        f"plan {self.name!r}: stage {stage.name!r} needs "
                        f"unknown stage {need!r}; stages: "
                        f"{', '.join(sorted(known))}"
                    )
                if need == stage.name:
                    raise PlanError(
                        f"plan {self.name!r}: stage {stage.name!r} "
                        "depends on itself"
                    )
        remaining = {stage.name: set(stage.needs) for stage in self.stages}
        order: list[str] = []
        while remaining:
            ready = sorted(
                name for name, needs in remaining.items() if not needs
            )
            if not ready:
                cycle = " -> ".join(sorted(remaining))
                raise PlanError(
                    f"plan {self.name!r}: dependency cycle among stages: "
                    f"{cycle}"
                )
            for name in ready:
                del remaining[name]
                order.append(name)
            for needs in remaining.values():
                needs.difference_update(ready)
        return tuple(order)

    def validate(self) -> tuple[str, ...]:
        """Full validation: graph + per-kind dependency typing.

        Returns the topological order on success.

        Raises:
            PlanError: naming the offending stage.
        """
        order = self.toposort()
        for stage in self.stages:
            if stage.kind in ("ensemble", "render"):
                upstream = self.stage(stage.needs[0])
                if upstream.kind != "sweep":
                    raise PlanError(
                        f"plan {self.name!r}: stage {stage.name!r} needs a "
                        f"sweep stage, but {upstream.name!r} is a "
                        f"{upstream.kind} stage"
                    )
        return order

    def fingerprints(self) -> dict[str, str]:
        """Content fingerprint per stage, dependency-chained.

        Stable across processes and machines: the recipe is canonical
        JSON over the stage's configuration (resolved through the
        dataclass fields, not the file text), prefixed with the plan
        and store schema versions, the detector family fingerprints,
        and the fingerprints of every dependency in ``needs`` order.
        The stage *name* is deliberately excluded — renaming a stage
        must not invalidate its cached output.

        Environment-dependent defaults are resolved *into* the recipe:
        a stage with ``stream_len`` unset trains at the length
        :func:`~repro.params.scaled_params` derives from
        ``REPRO_STREAM_LEN``, so that effective length is part of the
        computation's identity — runs under different environments
        must not share a fingerprint (a store hit has to prove this
        exact stage already ran).
        """
        from repro.runtime.store import STORE_SCHEMA_VERSION

        order = self.validate()
        fingerprints: dict[str, str] = {}
        for name in order:
            stage = self.stage(name)
            config = _stage_to_dict(stage)
            config.pop("name")
            config.pop("needs", None)
            if getattr(stage, "stream_len", 0) is None:
                config["stream_len"] = scaled_params().training_length
            detectors = config.get("detectors")
            if detectors:
                config["families"] = [
                    create_detector(
                        detector, 2, PAPER_ALPHABET_SIZE
                    ).family_fingerprint()
                    for detector in detectors
                ]
            recipe = (
                f"repro-plan/{PLAN_SCHEMA_VERSION}\n"
                f"store={STORE_SCHEMA_VERSION}\n"
                f"config={json.dumps(config, sort_keys=True)}\n"
            )
            for index, need in enumerate(stage.needs):
                recipe += f"need[{index}]={fingerprints[need]}\n"
            fingerprints[name] = hashlib.sha256(
                recipe.encode("utf-8")
            ).hexdigest()
        return fingerprints

    def to_dict(self) -> dict:
        """The plan as plain data (the JSON plan-file layout)."""
        record: dict[str, object] = {"name": self.name}
        if self.description:
            record["description"] = self.description
        record["stages"] = [_stage_to_dict(stage) for stage in self.stages]
        return record


def plan_from_dict(data: object) -> ExperimentPlan:
    """Build a validated plan from parsed plan-file data.

    Raises:
        PlanError: on any structural violation, naming the stage.
    """
    if not isinstance(data, dict):
        raise PlanError(f"a plan must be a table/object, got {type(data).__name__}")
    unknown = sorted(set(data) - {"name", "description", "stages"})
    if unknown:
        raise PlanError(f"unknown top-level plan key(s): {', '.join(unknown)}")
    stages = data.get("stages")
    if not isinstance(stages, list) or not stages:
        raise PlanError("a plan requires a non-empty 'stages' list")
    description = data.get("description", "")
    if not isinstance(description, str):
        raise PlanError("plan description must be a string")
    plan = ExperimentPlan(
        name=_require_name(data.get("name"), "plan"),
        description=description,
        stages=tuple(stage_from_dict(stage) for stage in stages),
    )
    plan.validate()
    return plan


def load_plan(path: str | Path) -> ExperimentPlan:
    """Load and validate a ``.toml`` or ``.json`` plan file.

    TOML needs :mod:`tomllib` (Python 3.11+); on 3.10 a TOML plan is
    a clear :class:`PlanError` while JSON plans always work.

    Raises:
        PlanError: on a missing file, a parse error, or an invalid plan.
    """
    source = Path(path)
    if not source.exists():
        raise PlanError(f"plan file not found: {source}")
    text = source.read_text(encoding="utf-8")
    if source.suffix == ".toml":
        if tomllib is None:
            raise PlanError(
                f"{source}: TOML plans require Python 3.11+ (no tomllib); "
                "convert the plan to JSON for older interpreters"
            )
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise PlanError(f"{source}: invalid TOML: {error}") from error
    elif source.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise PlanError(f"{source}: invalid JSON: {error}") from error
    else:
        raise PlanError(
            f"{source}: unsupported plan extension {source.suffix!r} "
            "(expected .toml or .json)"
        )
    try:
        return plan_from_dict(data)
    except PlanError as error:
        raise PlanError(f"{source}: {error}") from None


def stage_key(fingerprint: str) -> str:
    """ArtifactStore key for one stage's output payload.

    Mirrors :func:`repro.runtime.store.fit_key`: the sha256 of a
    versioned recipe over the stage's content fingerprint, so plan
    outputs and detector fits share one store without collisions.
    """
    recipe = f"repro-plan-output/{PLAN_SCHEMA_VERSION}\nstage={fingerprint}\n"
    return hashlib.sha256(recipe.encode("utf-8")).hexdigest()
