"""Declarative experiment plans: spec, DAG runner, file-queue dispatch.

``repro.plans`` turns the runtime substrate (SweepEngine, ArtifactStore,
JSONL checkpoints, telemetry) into a schedulable experiment system:

* :mod:`repro.plans.spec` — typed plan dataclasses, TOML/JSON loading,
  validation (cycles and unknown references fail with a named-stage
  error), and content-addressed stage fingerprints.
* :mod:`repro.plans.runner` — the :class:`PlanRunner`: topological
  execution with exactly-once stage semantics, resumable bit-identically
  after a kill, computing nothing whose fingerprint is unchanged.
* :mod:`repro.plans.dispatch` — N worker processes draining a shared
  run directory via atomic rename leases with heartbeat and
  lease-expiry takeover.
"""

from repro.plans.dispatch import (
    DEFAULT_LEASE_TTL,
    Worker,
    WorkerReport,
    prepare_run,
    run_dispatch,
    run_status,
)
from repro.plans.runner import (
    PlanReport,
    PlanRunner,
    StageOutcome,
    SweepOutput,
    paper_plan,
    payload_digest,
    run_plan_file,
)
from repro.plans.spec import (
    PLAN_SCHEMA_VERSION,
    STAGE_KINDS,
    EnsembleStage,
    ExperimentPlan,
    RenderStage,
    RobustnessStage,
    SweepStage,
    load_plan,
    plan_from_dict,
    stage_from_dict,
    stage_key,
)

__all__ = [
    "DEFAULT_LEASE_TTL",
    "PLAN_SCHEMA_VERSION",
    "STAGE_KINDS",
    "EnsembleStage",
    "ExperimentPlan",
    "PlanReport",
    "PlanRunner",
    "RenderStage",
    "RobustnessStage",
    "StageOutcome",
    "SweepOutput",
    "SweepStage",
    "Worker",
    "WorkerReport",
    "load_plan",
    "paper_plan",
    "payload_digest",
    "plan_from_dict",
    "prepare_run",
    "run_dispatch",
    "run_plan_file",
    "run_status",
    "stage_from_dict",
    "stage_key",
]
