"""File-queue dispatch: N workers claim plan stages via atomic leases.

The dispatcher turns a plan's run directory into a work queue that any
number of worker processes — on one machine or on several sharing the
directory — can drain cooperatively, with no coordinator process:

* **Claim** — a worker claims a ready stage by creating
  ``leases/<stage>.lock`` with ``O_CREAT | O_EXCL``.  Creation is
  atomic, so exactly one worker wins a contested stage.
* **Heartbeat** — while executing, a daemon thread refreshes the lock's
  mtime every third of the lease TTL.  A live worker's lease never
  looks stale.
* **Takeover** — a lock whose mtime is older than the TTL belongs to a
  dead worker.  A contender *renames* it to a tombstone
  (``<stage>.lock.stale.<worker>``); rename of one source path admits a
  single winner, which then claims fresh.  The killed stage re-runs
  from its JSONL cell checkpoint, so takeover recomputes at most the
  cells in flight when the worker died.
* **Done** — completion is the atomic ``done/<stage>.json`` marker
  written by the :class:`~repro.plans.runner.PlanRunner` (after the
  payload is in the store), so a stage observed done is durably done.

Exactly-once therefore holds at stage granularity: a stage's work may
be *attempted* more than once across crashes, but it *completes* once —
the journal records one completion, and every attempt converges on the
same fingerprint-keyed payload.

Telemetry: each worker emits ``plan.lease.claim`` / ``released`` /
``takeover`` / ``plan.stage.*`` counters and ``plan`` spans into its
own trace file, which ``repro trace validate`` checks.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import PlanError
from repro.plans.runner import (
    DONE_DIR,
    LEASES_DIR,
    PLAN_FILE,
    PlanRunner,
    StageOutcome,
    decode_payload,
    load_journal,
    read_done_marker,
    write_json_atomic,
)
from repro.plans.spec import ExperimentPlan, plan_from_dict, stage_key
from repro.runtime import telemetry

#: Default lease time-to-live in seconds.  A worker silent this long is
#: presumed dead and its stage is taken over.
DEFAULT_LEASE_TTL = 30.0

#: Delay between queue polls when nothing is claimable.
POLL_INTERVAL = 0.2


def prepare_run(plan: ExperimentPlan, run_dir: str | Path) -> Path:
    """Materialize the run directory workers share.

    Validates the plan (a malformed plan must fail here, before any
    worker starts) and writes ``plan.json`` — workers need only the
    directory path.
    """
    plan.validate()
    run_dir = Path(run_dir)
    for sub in (LEASES_DIR, DONE_DIR):
        (run_dir / sub).mkdir(parents=True, exist_ok=True)
    write_json_atomic(run_dir / PLAN_FILE, plan.to_dict())
    return run_dir


def load_run(run_dir: str | Path) -> ExperimentPlan:
    """Load the compiled plan from a run directory."""
    path = Path(run_dir) / PLAN_FILE
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise PlanError(f"not a plan run directory: {run_dir} ({error})") from error
    except ValueError as error:
        raise PlanError(f"corrupt plan file {path}: {error}") from error
    return plan_from_dict(data)


class _Heartbeat:
    """Refreshes a held lease's mtime from a daemon thread."""

    def __init__(self, lock_path: Path, interval: float) -> None:
        self._path = lock_path
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                os.utime(self._path)
            except FileNotFoundError:
                return  # released or taken over; nothing left to refresh
            except OSError:
                # Transient (e.g. EIO on a shared filesystem): keep
                # beating.  Going permanently silent here would make a
                # live worker's lease look abandoned, invite takeover,
                # and run the stage concurrently in two processes.
                continue

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval + 1.0)


@dataclass(frozen=True)
class WorkerReport:
    """One worker process's tally over its lifetime."""

    worker_id: str
    completed: tuple[StageOutcome, ...]
    takeovers: int

    def summary(self) -> str:
        """One line per worker for logs and CI greps."""
        names = ",".join(outcome.name for outcome in self.completed) or "-"
        return (
            f"worker {self.worker_id}: {len(self.completed)} stage(s) "
            f"[{names}], {self.takeovers} takeover(s)"
        )


class Worker:
    """One queue worker: claim, execute, release, repeat until drained.

    Args:
        run_dir: the shared run directory from :func:`prepare_run`.
        worker_id: unique id; lands in lease files and the journal.
        lease_ttl: seconds of heartbeat silence before a lease is
            considered abandoned.
        jobs: engine workers inside this process (the ResilientRunner
            ladder and WindowArena live *inside* each queue worker).
        executor: engine backend for this worker's stages.
        telemetry: collector for ``plan.*`` spans and counters.
        crash_after_claims: fault injection — die with ``os._exit``
            immediately after the Nth successful claim, leaving the
            lease to go stale (simulates SIGKILL mid-stage).
        max_seconds: give up waiting for claimable work after this long
            (guards CI against a wedged queue).
    """

    def __init__(
        self,
        run_dir: str | Path,
        worker_id: str | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        jobs: int = 1,
        executor: str | None = None,
        telemetry: "object | None" = None,
        crash_after_claims: int | None = None,
        max_seconds: float | None = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.worker_id = worker_id or f"w{os.getpid()}"
        self.lease_ttl = float(lease_ttl)
        self.telemetry = telemetry
        self.crash_after_claims = crash_after_claims
        self.max_seconds = max_seconds
        self.plan = load_run(self.run_dir)
        self.order = self.plan.validate()
        self.fingerprints = self.plan.fingerprints()
        self.runner = PlanRunner(
            self.plan,
            run_dir=self.run_dir,
            jobs=jobs,
            executor=executor,
            telemetry=telemetry,
        )
        self._claims = 0

    # -- lease primitives ---------------------------------------------------

    def _lock_path(self, stage_name: str) -> Path:
        return self.run_dir / LEASES_DIR / f"{stage_name}.lock"

    def _claim(self, stage_name: str) -> bool:
        """Atomically claim a stage; ``False`` when another worker holds it."""
        path = self._lock_path(stage_name)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(
                {"worker": self.worker_id, "pid": os.getpid(), "stage": stage_name},
                handle,
            )
            handle.flush()
        telemetry.count("plan.lease.claim")
        self._claims += 1
        if (
            self.crash_after_claims is not None
            and self._claims >= self.crash_after_claims
        ):
            # Fault injection: die holding the lease, exactly as a
            # SIGKILLed worker would — no release, no trace flush.
            os._exit(137)
        return True

    def _release(self, stage_name: str) -> None:
        try:
            self._lock_path(stage_name).unlink()
        except OSError:
            pass
        telemetry.count("plan.lease.released")

    def _try_takeover(self, stage_name: str) -> bool:
        """Steal an abandoned lease.  ``True`` when this worker won."""
        path = self._lock_path(stage_name)
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return False  # released or stolen meanwhile
        if age <= self.lease_ttl:
            return False
        tombstone = path.with_name(f"{path.name}.stale.{self.worker_id}")
        try:
            os.rename(path, tombstone)
        except OSError:
            return False  # another contender won the rename
        return True

    # -- queue scan ---------------------------------------------------------

    def _done(self, stage_name: str) -> bool:
        marker = read_done_marker(self.run_dir, stage_name)
        return (
            marker is not None
            and marker.get("fingerprint") == self.fingerprints[stage_name]
        )

    def _ready(self) -> list[str]:
        """Stages whose dependencies are durably done, in topo order."""
        return [
            name
            for name in self.order
            if not self._done(name)
            and all(self._done(need) for need in self.plan.stage(name).needs)
        ]

    def _upstream_results(self, stage_name: str) -> dict[str, object]:
        """Decode completed dependencies' payloads for a claimed stage."""
        results: dict[str, object] = {}
        for need in self.plan.stage(stage_name).needs:
            need_stage = self.plan.stage(need)
            payload = self.runner._cached_payload(stage_key(self.fingerprints[need]))
            if payload is None:
                payload = self._payload_from_outputs(need)
            if payload is None:
                raise PlanError(
                    f"stage {stage_name!r}: dependency {need!r} is marked "
                    "done but its payload is missing from store and outputs"
                )
            results[need] = decode_payload(need_stage, payload)
        return results

    def _payload_from_outputs(self, stage_name: str) -> dict | None:
        path = self.run_dir / "outputs" / f"{stage_name}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- main loop ----------------------------------------------------------

    def _execute(self, stage_name: str) -> StageOutcome:
        stage = self.plan.stage(stage_name)
        results = self._upstream_results(stage_name)
        heartbeat = _Heartbeat(
            self._lock_path(stage_name), max(self.lease_ttl / 3.0, 0.05)
        )
        with heartbeat:
            outcome, _live = self.runner.run_stage(
                stage, self.fingerprints[stage_name], results
            )
        return outcome

    def run(self) -> WorkerReport:
        """Drain the queue; returns once every stage is durably done."""
        completed: list[StageOutcome] = []
        takeovers = 0
        deadline = (
            time.monotonic() + self.max_seconds
            if self.max_seconds is not None
            else None
        )
        with telemetry.activated(self.telemetry):
            while True:
                ready = self._ready()
                if not ready and all(self._done(name) for name in self.order):
                    break
                progressed = False
                for name in ready:
                    claimed = self._claim(name)
                    if not claimed and self._try_takeover(name):
                        # The stale lock is renamed away; only the
                        # follow-up claim makes the takeover real (and
                        # keeps takeover <= claim in this trace even if
                        # a third worker wins the re-claim race).
                        claimed = self._claim(name)
                        if claimed:
                            takeovers += 1
                            telemetry.count("plan.lease.takeover")
                    if not claimed:
                        continue
                    try:
                        completed.append(self._execute(name))
                    finally:
                        self._release(name)
                    progressed = True
                if progressed:
                    continue
                if deadline is not None and time.monotonic() > deadline:
                    raise PlanError(
                        f"worker {self.worker_id!r} timed out after "
                        f"{self.max_seconds:.0f}s with stages still pending"
                    )
                time.sleep(POLL_INTERVAL)
        return WorkerReport(
            worker_id=self.worker_id,
            completed=tuple(completed),
            takeovers=takeovers,
        )


# -- multi-process driver ---------------------------------------------------


def worker_command(
    run_dir: str | Path,
    worker_id: str,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    jobs: int = 1,
    trace: str | Path | None = None,
    crash_after_claims: int | None = None,
    max_seconds: float | None = None,
) -> list[str]:
    """The ``repro plan worker`` argv for one subprocess."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "plan",
        "worker",
        str(run_dir),
        "--worker-id",
        worker_id,
        "--lease-ttl",
        str(lease_ttl),
        "--jobs",
        str(jobs),
    ]
    if trace is not None:
        argv += ["--trace", str(trace)]
    if crash_after_claims is not None:
        argv += ["--crash-after-claims", str(crash_after_claims)]
    if max_seconds is not None:
        argv += ["--max-seconds", str(max_seconds)]
    return argv


def run_dispatch(
    plan: ExperimentPlan,
    run_dir: str | Path,
    workers: int = 2,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    jobs: int = 1,
    trace_dir: str | Path | None = None,
    crash_worker: int | None = None,
    crash_after_claims: int = 1,
    max_seconds: float | None = None,
    stagger: float = 0.0,
) -> list[subprocess.CompletedProcess]:
    """Run a plan across N worker subprocesses sharing a run directory.

    Args:
        plan: the plan to dispatch.
        run_dir: shared queue directory (created if absent).
        workers: number of worker processes to spawn.
        lease_ttl: lease TTL handed to every worker.
        jobs: in-process engine workers per queue worker.
        trace_dir: when given, worker ``i`` writes
            ``<trace_dir>/trace-w<i>.jsonl``.
        crash_worker: index of one worker to crash via
            ``--crash-after-claims`` (fault injection for tests/CI).
        crash_after_claims: claim count after which that worker dies.
        max_seconds: per-worker deadline.
        stagger: seconds between worker spawns.  With fault injection,
            a head start for the crash worker makes the takeover
            deterministic: it has claimed (and died holding) a lease
            before later workers finish scanning the queue.
    """
    run_dir = prepare_run(plan, run_dir)
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2]
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else str(src)
    procs = []
    for index in range(workers):
        if index and stagger:
            time.sleep(stagger)
        worker_id = f"w{index}"
        trace = None
        if trace_dir is not None:
            trace = Path(trace_dir) / f"trace-{worker_id}.jsonl"
        argv = worker_command(
            run_dir,
            worker_id,
            lease_ttl=lease_ttl,
            jobs=jobs,
            trace=trace,
            crash_after_claims=(
                crash_after_claims if index == crash_worker else None
            ),
            max_seconds=max_seconds,
        )
        procs.append(subprocess.Popen(argv, env=env))
    return [
        subprocess.CompletedProcess(proc.args, proc.wait())
        for proc in procs
    ]


# -- status -----------------------------------------------------------------


def run_status(run_dir: str | Path) -> str:
    """Human- and CI-readable status of a plan run directory.

    Ends with a ``duplicates: N`` line — the count of stages journaled
    as completed more than once, which must be 0 for an exactly-once
    run (the dispatch-smoke CI job asserts exactly that).
    """
    run_dir = Path(run_dir)
    plan = load_run(run_dir)
    order = plan.validate()
    fingerprints = plan.fingerprints()
    events = load_journal(run_dir)
    completions: dict[str, int] = {}
    for event in events:
        if event.get("event") == "completed":
            stage = str(event.get("stage"))
            completions[stage] = completions.get(stage, 0) + 1
    lines = [f"plan '{plan.name}': {len(order)} stage(s)"]
    done = 0
    for name in order:
        marker = read_done_marker(run_dir, name)
        if marker is not None and marker.get("fingerprint") == fingerprints[name]:
            done += 1
            status = "done"
        elif (run_dir / LEASES_DIR / f"{name}.lock").exists():
            status = "leased"
        else:
            status = "pending"
        lines.append(f"stage {name}: {status}")
    lines.append(f"done: {done}/{len(order)}")
    duplicates = sum(count - 1 for count in completions.values() if count > 1)
    lines.append(f"duplicates: {duplicates}")
    return "\n".join(lines)
