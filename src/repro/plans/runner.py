"""Plan execution: exactly-once stages, ArtifactStore outputs, resume.

The :class:`PlanRunner` walks a validated plan in topological order and
gives every stage **exactly-once** semantics built from two existing
primitives:

* the stage's output payload — canonical, sorted-key JSON carrying the
  full result bit-exactly (floats round-trip through ``repr``, the
  same property the sweep checkpoints rely on) — lands in the
  :class:`~repro.runtime.store.ArtifactStore` under
  :func:`~repro.plans.spec.stage_key` of the stage's content
  fingerprint;
* progress streams into JSONL: the per-stage **cell checkpoints** of
  the sweep engine (so a SIGKILL mid-sweep resumes bit-identically at
  cell granularity) and an append-only run **journal** recording every
  stage completion.

A re-run therefore computes nothing whose fingerprint is unchanged: a
store hit under the fingerprint-derived key *is* the proof that this
exact stage already ran, and the payload is decoded instead of
recomputed.  A killed run resumes mid-stage from the cell checkpoint
and downstream of the kill from the store — and the final artifacts in
``<run_dir>/outputs/`` are byte-identical to an uninterrupted run's.

Run-directory layout (shared with :mod:`repro.plans.dispatch`)::

    run_dir/
      plan.json        # compiled plan (workers need only the run dir)
      journal.jsonl    # append-only events: one line per completion
      cells/           # per-stage JSONL cell checkpoints
      outputs/<stage>.json   # canonical payloads (byte-comparable)
      done/<stage>.json      # atomic per-stage completion markers
      leases/          # dispatcher claim locks (atomic rename leases)
      store/           # default ArtifactStore when none is given
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.evaluation.experiment import ExperimentResult, run_paper_experiment
from repro.evaluation.performance_map import PerformanceMap
from repro.evaluation.render import render_map_summary, render_performance_map
from repro.evaluation.robustness import (
    PAPER_SHAPES,
    ReplicationOutcome,
    RobustnessReport,
    replicate_shapes,
)
from repro.exceptions import PlanError
from repro.io import cell_to_record, read_jsonl_tolerant, record_to_cell
from repro.params import scaled_params
from repro.plans.spec import ExperimentPlan, Stage, load_plan, stage_key
from repro.runtime import telemetry

#: File names of the run-directory protocol.
PLAN_FILE = "plan.json"
JOURNAL_FILE = "journal.jsonl"
OUTPUTS_DIR = "outputs"
DONE_DIR = "done"
CELLS_DIR = "cells"
LEASES_DIR = "leases"
STORE_DIR = "store"


# -- canonical payloads -----------------------------------------------------


def payload_bytes(payload: dict) -> bytes:
    """The canonical byte encoding of one stage payload.

    Sorted keys, fixed separators, one trailing newline: a pure
    function of the payload's content, so byte-comparing two runs'
    ``outputs/`` directories is a correctness check.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def payload_digest(payload: dict) -> str:
    """sha256 over :func:`payload_bytes` — the stage's output digest."""
    return hashlib.sha256(payload_bytes(payload)).hexdigest()


def sweep_payload(maps: dict[str, PerformanceMap]) -> dict:
    """Encode performance maps as the sweep stage's canonical payload."""
    return {
        "kind": "sweep",
        "cells": {
            name: [
                cell_to_record(name, result) for result in maps[name]
            ]
            for name in sorted(maps)
        },
    }


def maps_from_payload(payload: dict) -> dict[str, PerformanceMap]:
    """Invert :func:`sweep_payload` bit-identically."""
    maps: dict[str, PerformanceMap] = {}
    for name, records in payload["cells"].items():
        cells = {}
        for record in records:
            _detector, result = record_to_cell(record)
            cells[(result.anomaly_size, result.window_length)] = result
        maps[name] = PerformanceMap(name, cells)
    return maps


def robustness_payload(report: RobustnessReport) -> dict:
    """Encode a robustness report as its canonical payload."""
    return {
        "kind": "robustness",
        "outcomes": [
            {
                "seed": outcome.seed,
                "training_length": outcome.training_length,
                "shape_held": dict(sorted(outcome.shape_held.items())),
            }
            for outcome in report.outcomes
        ],
    }


def robustness_from_payload(payload: dict) -> RobustnessReport:
    """Invert :func:`robustness_payload`."""
    return RobustnessReport(
        outcomes=tuple(
            ReplicationOutcome(
                seed=int(record["seed"]),
                training_length=int(record["training_length"]),
                shape_held={
                    str(name): bool(held)
                    for name, held in record["shape_held"].items()
                },
            )
            for record in payload["outcomes"]
        )
    )


# -- run-directory protocol -------------------------------------------------


def write_json_atomic(path: Path, payload: dict) -> None:
    """Write canonical JSON via temp file + :func:`os.replace`.

    The same atomicity discipline as the ArtifactStore: a reader never
    observes a torn file, and re-writing identical content is
    idempotent byte-for-byte.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(payload_bytes(payload))
    os.replace(tmp, path)


def append_journal(run_dir: Path, record: dict) -> None:
    """Append one event line to the run journal (O_APPEND, flushed)."""
    path = run_dir / JOURNAL_FILE
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True) + "\n"
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()


def load_journal(run_dir: Path) -> list[dict]:
    """Parsed journal events, tolerating a torn tail (SIGKILL mid-append)."""
    path = Path(run_dir) / JOURNAL_FILE
    if not path.exists():
        return []
    return [
        record
        for _line, record in read_jsonl_tolerant(
            path, strict=False, torn_tail_counter="plan.journal.torn_tail"
        )
    ]


def read_done_marker(run_dir: Path, stage_name: str) -> dict | None:
    """The stage's completion marker, or ``None`` (corrupt = absent)."""
    path = Path(run_dir) / DONE_DIR / f"{stage_name}.json"
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return record if isinstance(record, dict) else None


# -- stage execution --------------------------------------------------------


@dataclass(frozen=True)
class SweepOutput:
    """A sweep stage's live result handed to downstream stages.

    ``suite``/``run_report`` are populated only when the sweep actually
    ran in this process (a cached stage decodes maps alone — rebuilding
    the corpus would be recomputation).
    """

    maps: dict[str, PerformanceMap] = field(repr=False)
    suite: "object | None" = field(default=None, repr=False)
    run_report: "object | None" = field(default=None, repr=False)


def _sweep_params(stage: Stage):
    kwargs = {}
    if stage.anomaly_sizes:
        kwargs["anomaly_sizes"] = tuple(stage.anomaly_sizes)
    if stage.window_sizes:
        kwargs["window_sizes"] = tuple(stage.window_sizes)
    params = scaled_params(stage.stream_len, seed=stage.seed)
    return replace(params, **kwargs) if kwargs else params


def execute_stage(
    stage: Stage,
    results: dict[str, object],
    engine: "object | None" = None,
    store: "object | None" = None,
    cells_dir: "Path | None" = None,
    checkpoint: "str | None" = None,
    resume_from: "str | None" = None,
) -> tuple[dict, object]:
    """Run one stage and return ``(payload, live_result)``.

    Args:
        stage: the typed stage to execute.
        results: live results of already-executed stages, by name
            (``ensemble``/``render`` read their sweep dependency here).
        engine: a shared :class:`~repro.runtime.SweepEngine`
            (``None`` = the serial reference path).
        store: an :class:`~repro.runtime.store.ArtifactStore` for the
            serial path's fits (an engine carries its own).
        cells_dir: directory for the stage's JSONL cell checkpoints;
            ``None`` disables cell-level resume.
        checkpoint: explicit cell-checkpoint path overriding
            ``cells_dir`` (the thin-wrapper mode of ``repro maps``).
        resume_from: explicit resume path overriding ``cells_dir``.
    """
    if stage.kind == "sweep":
        if cells_dir is not None and checkpoint is None:
            path = cells_dir / f"{stage.name}.cells.jsonl"
            checkpoint = str(path)
            if resume_from is None and path.exists():
                resume_from = checkpoint
        result = run_paper_experiment(
            params=_sweep_params(stage),
            detectors=list(stage.detectors),
            engine=engine,
            checkpoint=checkpoint,
            resume_from=resume_from,
            store=store if engine is None else None,
        )
        return sweep_payload(result.maps), SweepOutput(
            maps=result.maps, suite=result.suite, run_report=result.run_report
        )
    if stage.kind == "robustness":
        predicates = None
        if stage.detectors is not None:
            predicates = {name: PAPER_SHAPES[name] for name in stage.detectors}
        checkpoint_dir = None
        if cells_dir is not None:
            checkpoint_dir = cells_dir / stage.name
        report = replicate_shapes(
            base_params=scaled_params(stage.stream_len),
            seeds=stage.seeds,
            detectors=predicates,
            stream_length=stage.test_stream_len,
            engine=engine,
            checkpoint_dir=checkpoint_dir,
            store=store if engine is None else None,
        )
        return robustness_payload(report), report
    upstream = results.get(stage.needs[0])
    if not isinstance(upstream, SweepOutput):
        raise PlanError(
            f"stage {stage.name!r}: dependency {stage.needs[0]!r} produced "
            "no sweep output"
        )
    maps = upstream.maps
    if stage.kind == "ensemble":
        from repro.analysis.report import map_agreement_report
        from repro.ensemble import AnomalyProfile, Coverage, select_detectors

        coverages = {
            name: Coverage.from_performance_map(maps[name])
            for name in sorted(maps)
        }
        advice = select_detectors(
            coverages,
            AnomalyProfile(
                size=stage.size, max_deployable_window=stage.max_window
            ),
        )
        payload = {
            "kind": "ensemble",
            "recommendation": advice.describe(),
            "redundant": sorted(advice.redundant),
            "rationale": advice.rationale,
            "agreement": (
                map_agreement_report(maps) if len(maps) >= 2 else ""
            ),
        }
        return payload, payload
    if stage.kind == "render":
        payload = {
            "kind": "render",
            "charts": {
                name: render_performance_map(maps[name])
                for name in sorted(maps)
            },
            "summary": "\n".join(
                render_map_summary(maps[name]) for name in sorted(maps)
            ),
        }
        return payload, payload
    raise PlanError(f"stage {stage.name!r}: unknown kind {stage.kind!r}")


def decode_payload(stage: Stage, payload: dict) -> object:
    """Rebuild a cached stage's live result from its stored payload."""
    if stage.kind == "sweep":
        return SweepOutput(maps=maps_from_payload(payload))
    if stage.kind == "robustness":
        return robustness_from_payload(payload)
    return payload


# -- the runner -------------------------------------------------------------


@dataclass(frozen=True)
class StageOutcome:
    """One stage's fate in one run."""

    name: str
    kind: str
    status: str  # "ran" | "cached"
    fingerprint: str
    key: str
    digest: str
    wall: float = 0.0


@dataclass(frozen=True)
class PlanReport:
    """One :meth:`PlanRunner.run`'s outcome across all stages."""

    plan: str
    outcomes: tuple[StageOutcome, ...]
    results: dict[str, object] = field(repr=False)

    @property
    def executed(self) -> int:
        """Stages actually computed in this run."""
        return sum(1 for outcome in self.outcomes if outcome.status == "ran")

    @property
    def cached(self) -> int:
        """Stages adopted from the store without recomputation."""
        return sum(
            1 for outcome in self.outcomes if outcome.status == "cached"
        )

    def summary(self) -> str:
        """The headline line CI asserts on, plus one line per stage."""
        lines = [
            f"plan '{self.plan}': {self.executed} executed / "
            f"{self.cached} cached / {len(self.outcomes)} total"
        ]
        lines.extend(
            f"stage {outcome.name}: {outcome.status} {outcome.kind} "
            f"(digest {outcome.digest[:12]}, {outcome.wall:.1f}s)"
            for outcome in self.outcomes
        )
        return "\n".join(lines)


class PlanRunner:
    """Executes a plan with exactly-once stage semantics.

    Args:
        plan: the validated plan to run.
        run_dir: run directory for checkpoints, journal and canonical
            outputs; ``None`` runs fully in memory (the thin-wrapper
            mode behind ``repro maps``).
        store: an :class:`~repro.runtime.store.ArtifactStore` or its
            directory path; defaults to ``<run_dir>/store`` when a run
            directory is given, else no caching.
        engine: a pre-built :class:`~repro.runtime.SweepEngine`; when
            omitted one is assembled from ``jobs``/``executor``/
            ``resilience`` (serial reference path when all defaults).
        jobs: engine worker count for the assembled engine.
        executor: engine backend (default: serial for 1 job, thread
            otherwise).
        resilience: a :class:`~repro.runtime.resilience.ResiliencePolicy`
            for the assembled engine.
        telemetry: a :class:`~repro.runtime.telemetry.Telemetry`
            collector; ``plan.*`` spans and counters land here.
        checkpoint: single-sweep cell-checkpoint override (wrapper mode).
        resume_from: single-sweep resume override (wrapper mode).
    """

    def __init__(
        self,
        plan: ExperimentPlan,
        run_dir: str | Path | None = None,
        store: "object | None" = None,
        engine: "object | None" = None,
        jobs: int = 1,
        executor: str | None = None,
        resilience: "object | None" = None,
        telemetry: "object | None" = None,
        checkpoint: str | None = None,
        resume_from: str | None = None,
    ) -> None:
        self.plan = plan
        self.run_dir = Path(run_dir) if run_dir is not None else None
        if store is None and self.run_dir is not None:
            store = self.run_dir / STORE_DIR
        if store is not None and not hasattr(store, "get"):
            from repro.runtime.store import ArtifactStore

            store = ArtifactStore(store)
        self.store = store
        self.telemetry = telemetry
        self._checkpoint = checkpoint
        self._resume_from = resume_from
        if engine is None and (
            jobs > 1
            or executor is not None
            or resilience is not None
            or store is not None
            or telemetry is not None
        ):
            from repro.runtime import SweepEngine

            engine = SweepEngine(
                max_workers=jobs,
                executor=executor or ("serial" if jobs <= 1 else "thread"),
                resilience=resilience,
                store=self.store,
                telemetry=telemetry,
            )
        elif engine is not None and telemetry is not None:
            if getattr(engine, "_telemetry", None) is None:
                engine.attach_telemetry(telemetry)
        self.engine = engine

    def _cells_dir(self) -> Path | None:
        return None if self.run_dir is None else self.run_dir / CELLS_DIR

    def _cached_payload(self, key: str) -> dict | None:
        """The stage payload stored under ``key``, if present and sound."""
        if self.store is None:
            return None
        arrays = self.store.get(key, kind="plan")
        if arrays is None or "payload" not in arrays:
            return None
        try:
            payload = json.loads(str(arrays["payload"][()]))
        except (KeyError, IndexError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _persist(
        self, stage: Stage, fingerprint: str, key: str, payload: dict, wall: float
    ) -> str:
        digest = payload_digest(payload)
        if self.store is not None:
            text = payload_bytes(payload).decode("utf-8")
            self.store.put(key, {"payload": np.asarray(text)})
        if self.run_dir is not None:
            write_json_atomic(
                self.run_dir / OUTPUTS_DIR / f"{stage.name}.json", payload
            )
            write_json_atomic(
                self.run_dir / DONE_DIR / f"{stage.name}.json",
                {
                    "stage": stage.name,
                    "kind": stage.kind,
                    "fingerprint": fingerprint,
                    "key": key,
                    "digest": digest,
                },
            )
            append_journal(
                self.run_dir,
                {
                    "event": "completed",
                    "stage": stage.name,
                    "kind": stage.kind,
                    "fingerprint": fingerprint,
                    "digest": digest,
                    "wall": round(wall, 6),
                    "pid": os.getpid(),
                },
            )
        return digest

    def _adopt(
        self, stage: Stage, fingerprint: str, key: str, payload: dict
    ) -> StageOutcome:
        """Adopt a cached stage: decode, repair missing run-dir files."""
        digest = payload_digest(payload)
        if self.run_dir is not None:
            output_path = self.run_dir / OUTPUTS_DIR / f"{stage.name}.json"
            if not output_path.exists():
                write_json_atomic(output_path, payload)
            marker = read_done_marker(self.run_dir, stage.name)
            if marker is None or marker.get("fingerprint") != fingerprint:
                write_json_atomic(
                    self.run_dir / DONE_DIR / f"{stage.name}.json",
                    {
                        "stage": stage.name,
                        "kind": stage.kind,
                        "fingerprint": fingerprint,
                        "key": key,
                        "digest": digest,
                    },
                )
        telemetry.count("plan.stage.cached")
        return StageOutcome(
            name=stage.name,
            kind=stage.kind,
            status="cached",
            fingerprint=fingerprint,
            key=key,
            digest=digest,
        )

    def run_stage(
        self,
        stage: Stage,
        fingerprint: str,
        results: dict[str, object],
    ) -> tuple[StageOutcome, object]:
        """Execute (or adopt) one stage; returns its outcome + result.

        The exactly-once pivot: a store hit under the fingerprint's
        :func:`~repro.plans.spec.stage_key` proves this exact stage
        configuration already completed, so its payload is decoded and
        nothing is computed.
        """
        key = stage_key(fingerprint)
        telemetry.count("plan.stage.visited")
        cached = self._cached_payload(key)
        if cached is not None:
            telemetry.event("plan", stage.name, kind=stage.kind, cached=True)
            outcome = self._adopt(stage, fingerprint, key, cached)
            return outcome, decode_payload(stage, cached)
        started = time.perf_counter()
        try:
            with telemetry.span("plan", stage.name, kind=stage.kind):
                payload, live = execute_stage(
                    stage,
                    results,
                    engine=self.engine,
                    store=self.store,
                    cells_dir=self._cells_dir(),
                    checkpoint=self._checkpoint if stage.kind == "sweep" else None,
                    resume_from=self._resume_from if stage.kind == "sweep" else None,
                )
        except Exception:
            telemetry.count("plan.stage.failed")
            raise
        wall = time.perf_counter() - started
        digest = self._persist(stage, fingerprint, key, payload, wall)
        telemetry.count("plan.stage.run")
        outcome = StageOutcome(
            name=stage.name,
            kind=stage.kind,
            status="ran",
            fingerprint=fingerprint,
            key=key,
            digest=digest,
            wall=wall,
        )
        return outcome, live

    def run(self) -> PlanReport:
        """Run every stage in topological order; resumable, idempotent."""
        order = self.plan.validate()
        fingerprints = self.plan.fingerprints()
        if self.run_dir is not None:
            write_json_atomic(
                self.run_dir / PLAN_FILE, self.plan.to_dict()
            )
        outcomes: list[StageOutcome] = []
        results: dict[str, object] = {}
        with telemetry.activated(self.telemetry):
            for name in order:
                stage = self.plan.stage(name)
                outcome, live = self.run_stage(
                    stage, fingerprints[name], results
                )
                outcomes.append(outcome)
                results[name] = live
        return PlanReport(
            plan=self.plan.name, outcomes=tuple(outcomes), results=results
        )


def paper_plan(
    stream_len: int | None = None,
    seed: int | None = None,
    detectors: tuple[str, ...] | None = None,
) -> ExperimentPlan:
    """The committed ``plans/paper.toml`` experiment, parameterized.

    The imperative entry points (``repro maps``, the examples) compile
    this plan and hand it to a :class:`PlanRunner`, so a CLI run and a
    plan-file run of the same parameters share one execution path —
    and therefore identical fingerprints and identical outputs to
    :func:`~repro.evaluation.experiment.run_paper_experiment`.
    """
    from repro.evaluation.experiment import DEFAULT_DETECTORS
    from repro.plans.spec import RenderStage, SweepStage

    sweep = SweepStage(
        name="maps",
        stream_len=stream_len,
        seed=seed,
        detectors=tuple(detectors) if detectors else DEFAULT_DETECTORS,
    )
    return ExperimentPlan(
        name="paper",
        description="Tan & Maxion (DSN 2005): the Figure 3-6 performance maps",
        stages=(sweep, RenderStage(name="charts", needs=("maps",))),
    )


def run_plan_file(path: str | Path, **runner_kwargs: object) -> PlanReport:
    """Load, validate and run a plan file in one call."""
    return PlanRunner(load_plan(path), **runner_kwargs).run()
