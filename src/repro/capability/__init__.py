"""Attack-detectability analysis (Figure 1 of the paper).

Whether an anomaly detector detects an *attack* decomposes into five
questions (A-E): does the attack manifest in monitored data; is the
detector analyzing that data; is the manifestation anomalous; is that
kind of anomaly detectable by the detector at all; and is the detector
correctly tuned to detect it.  The paper's evaluation addresses D and
E; this subpackage implements the full decision chain so deployments
can diagnose *why* an attack was missed.
"""

from repro.capability.pipeline import (
    AttackScenario,
    CapabilityQuestion,
    CapabilityReport,
    CapabilityVerdict,
    assess_attack,
)

__all__ = [
    "AttackScenario",
    "CapabilityQuestion",
    "CapabilityReport",
    "CapabilityVerdict",
    "assess_attack",
]
