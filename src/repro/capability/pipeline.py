"""The Figure-1 decision chain: from attack to detectability verdict.

The chain asks, in order:

    A. Does the attack manifest in monitored data?
    B. Is the anomaly detector analyzing the data containing the
       manifestation?
    C. Is the manifestation anomalous?
    D. Is the anomalous manifestation detectable by the anomaly
       detector in question?
    E. Is the anomaly detector correctly tuned to detect the anomalous
       manifestation?

A "no" at any step terminates the chain with the corresponding
not-detectable verdict; five "yes" answers mean the attack is detected.
Questions D and E are answered from a detector's performance map: D
asks whether *any* evaluated window length is capable on anomalies of
the manifestation's size; E asks whether the *deployed* window length
is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.evaluation.performance_map import PerformanceMap
from repro.exceptions import EvaluationError
from repro.sequences.foreign import ForeignSequenceAnalyzer


class CapabilityQuestion(enum.Enum):
    """The five questions of Figure 1, in order."""

    MANIFESTS = "A: does the attack manifest in monitored data?"
    ANALYZED = "B: is the detector analyzing the data containing the manifestation?"
    ANOMALOUS = "C: is the manifestation anomalous?"
    DETECTABLE = "D: is the anomalous manifestation detectable by the detector?"
    TUNED = "E: is the detector correctly tuned to detect the manifestation?"


class CapabilityVerdict(enum.Enum):
    """Terminal outcomes of the decision chain."""

    DETECTED = "attack detected"
    NO_MANIFESTATION = "attack does not manifest in monitored data"
    NOT_ANALYZED = "detector is not analyzing the manifestation's data"
    NOT_ANOMALOUS = "manifestation is not anomalous"
    NOT_DETECTABLE = "manifestation's anomaly type is outside detector coverage"
    MISTUNED = "detector parameters blind it to the manifestation"


@dataclass(frozen=True)
class AttackScenario:
    """One attack against one monitored deployment.

    Attributes:
        name: label for reports.
        manifestation: the event subsequence the attack leaves in the
            monitored stream, as alphabet codes; ``None`` when the
            attack leaves no trace in monitored data (question A fails).
        detector_analyzes_data: whether the deployed detector consumes
            the stream containing the manifestation (question B).
        deployed_window_length: the detector window in production.
    """

    name: str
    manifestation: tuple[int, ...] | None
    detector_analyzes_data: bool
    deployed_window_length: int

    def __post_init__(self) -> None:
        if self.deployed_window_length < 2:
            raise EvaluationError(
                f"deployed window length must be >= 2, got "
                f"{self.deployed_window_length}"
            )
        if self.manifestation is not None and len(self.manifestation) < 1:
            raise EvaluationError("manifestation, when present, must be non-empty")


@dataclass(frozen=True)
class CapabilityReport:
    """Answers to the five questions plus the terminal verdict.

    Attributes:
        scenario: the assessed scenario.
        detector_name: the detector family under assessment.
        answers: question -> yes/no, for every question actually asked
            (the chain stops at the first "no").
        verdict: the terminal outcome.
    """

    scenario: AttackScenario
    detector_name: str
    answers: dict[CapabilityQuestion, bool] = field(repr=False)
    verdict: CapabilityVerdict

    @property
    def detected(self) -> bool:
        """Whether the chain reached the detected terminal."""
        return self.verdict is CapabilityVerdict.DETECTED

    def explain(self) -> str:
        """Multi-line, figure-style walk through the chain."""
        lines = [f"Attack {self.scenario.name!r} vs {self.detector_name}:"]
        for question in CapabilityQuestion:
            if question not in self.answers:
                break
            answer = "yes" if self.answers[question] else "NO"
            lines.append(f"  {question.value}  ->  {answer}")
        lines.append(f"  verdict: {self.verdict.value}")
        return "\n".join(lines)


def assess_attack(
    scenario: AttackScenario,
    analyzer: ForeignSequenceAnalyzer,
    performance_map: PerformanceMap,
) -> CapabilityReport:
    """Run the Figure-1 chain for one scenario.

    Question C (is the manifestation anomalous?) is answered against
    the training corpus: the manifestation is anomalous when it is
    foreign or rare.  Questions D and E are answered from the
    detector's performance map at the manifestation's size — the
    operational knowledge the paper's evaluation produces.

    Args:
        scenario: the attack and deployment facts.
        analyzer: foreign/rare oracle over the training data.
        performance_map: the deployed detector family's coverage grid.

    Raises:
        EvaluationError: when the manifestation size or deployed window
            falls outside the evaluated grid (the map cannot answer
            D/E for it).
    """
    answers: dict[CapabilityQuestion, bool] = {}

    manifests = scenario.manifestation is not None
    answers[CapabilityQuestion.MANIFESTS] = manifests
    if not manifests:
        return CapabilityReport(
            scenario=scenario,
            detector_name=performance_map.detector_name,
            answers=answers,
            verdict=CapabilityVerdict.NO_MANIFESTATION,
        )
    assert scenario.manifestation is not None

    answers[CapabilityQuestion.ANALYZED] = scenario.detector_analyzes_data
    if not scenario.detector_analyzes_data:
        return CapabilityReport(
            scenario=scenario,
            detector_name=performance_map.detector_name,
            answers=answers,
            verdict=CapabilityVerdict.NOT_ANALYZED,
        )

    anomalous = analyzer.is_foreign(scenario.manifestation) or analyzer.is_rare(
        scenario.manifestation
    )
    answers[CapabilityQuestion.ANOMALOUS] = anomalous
    if not anomalous:
        return CapabilityReport(
            scenario=scenario,
            detector_name=performance_map.detector_name,
            answers=answers,
            verdict=CapabilityVerdict.NOT_ANOMALOUS,
        )

    size = len(scenario.manifestation)
    if size not in performance_map.anomaly_sizes:
        raise EvaluationError(
            f"manifestation size {size} outside the evaluated grid "
            f"{performance_map.anomaly_sizes}; extend the performance map"
        )
    detectable = any(
        (size, window) in performance_map.capable_cells()
        for window in performance_map.window_lengths
    )
    answers[CapabilityQuestion.DETECTABLE] = detectable
    if not detectable:
        return CapabilityReport(
            scenario=scenario,
            detector_name=performance_map.detector_name,
            answers=answers,
            verdict=CapabilityVerdict.NOT_DETECTABLE,
        )

    deployed = scenario.deployed_window_length
    if deployed not in performance_map.window_lengths:
        raise EvaluationError(
            f"deployed window {deployed} outside the evaluated grid "
            f"{performance_map.window_lengths}; extend the performance map"
        )
    tuned = (size, deployed) in performance_map.capable_cells()
    answers[CapabilityQuestion.TUNED] = tuned
    verdict = (
        CapabilityVerdict.DETECTED if tuned else CapabilityVerdict.MISTUNED
    )
    return CapabilityReport(
        scenario=scenario,
        detector_name=performance_map.detector_name,
        answers=answers,
        verdict=verdict,
    )
