"""Foreignness, rarity, and minimal-foreign-sequence analysis.

This module implements the anomaly vocabulary of Tan & Maxion
(Section 5.1):

* a **foreign sequence** of length *N* is composed entirely of
  training-alphabet symbols but does not itself occur in the training
  data;
* a **rare sequence** occurs with relative frequency below a threshold
  (the paper uses 0.5%);
* a **minimal foreign sequence (MFS)** is a foreign sequence whose every
  proper contiguous subsequence occurs in the training data — a foreign
  sequence containing no smaller foreign sequence.

The key structural fact used throughout: a sequence ``s`` of length
``n >= 2`` is an MFS iff ``s`` is foreign *and* both of its
length-``n-1`` windows (the prefix ``s[:-1]`` and the suffix ``s[1:]``)
occur in training.  Every shorter subsequence of ``s`` is contained in
one of those two windows, and any substring of a string occurring in
the training stream itself occurs in the training stream.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import WindowError
from repro.sequences.ngram_store import NgramStore

Ngram = tuple[int, ...]


def is_foreign(sequence: Sequence[int], store: NgramStore) -> bool:
    """Whether ``sequence`` never occurs in the data indexed by ``store``.

    Raises:
        WindowError: if the store does not index ``len(sequence)``.
    """
    return not store.contains(sequence)

def is_rare(sequence: Sequence[int], store: NgramStore, threshold: float) -> bool:
    """Whether ``sequence`` occurs, but with relative frequency below ``threshold``.

    A foreign sequence (frequency zero) is *not* rare under the paper's
    usage: rarity presumes occurrence.
    """
    count = store.count(sequence)
    if count == 0:
        return False
    return store.relative_frequency(sequence) < threshold


def is_common(sequence: Sequence[int], store: NgramStore, threshold: float) -> bool:
    """Whether ``sequence`` occurs with relative frequency >= ``threshold``."""
    return store.relative_frequency(sequence) >= threshold


def is_minimal_foreign(sequence: Sequence[int], store: NgramStore) -> bool:
    """Whether ``sequence`` is a minimal foreign sequence.

    Requires the store to index both ``len(sequence)`` and
    ``len(sequence) - 1``.

    Raises:
        WindowError: if either required length is not indexed, or the
            sequence is shorter than 2 (a length-1 MFS cannot exist when
            composed of training-alphabet symbols, see Section 6).
    """
    key = tuple(int(code) for code in sequence)
    if len(key) < 2:
        raise WindowError(
            "minimal foreign sequences have length >= 2; a length-1 sequence "
            "over the training alphabet cannot be foreign"
        )
    if store.contains(key):
        return False
    return store.contains(key[:-1]) and store.contains(key[1:])


def proper_subsequences(sequence: Sequence[int]) -> Iterator[Ngram]:
    """Yield every proper contiguous subsequence of ``sequence`` (length >= 1)."""
    key = tuple(int(code) for code in sequence)
    for length in range(1, len(key)):
        for start in range(len(key) - length + 1):
            yield key[start : start + length]


class ForeignSequenceAnalyzer:
    """Foreign/rare/MFS queries over a fixed training stream.

    The analyzer owns an :class:`NgramStore` over the training stream
    and lazily extends it with new window lengths as queries require,
    so callers never need to predeclare which lengths they will ask
    about.

    Args:
        training_stream: the encoded training data.
        rare_threshold: relative-frequency bound defining rarity.
    """

    def __init__(
        self, training_stream: Sequence[int] | np.ndarray, rare_threshold: float = 0.005
    ) -> None:
        self._stream = np.asarray(training_stream)
        if self._stream.ndim != 1:
            raise WindowError(
                f"training stream must be one-dimensional, got shape {self._stream.shape}"
            )
        if len(self._stream) == 0:
            raise WindowError("training stream must be non-empty")
        if not 0.0 < rare_threshold < 1.0:
            raise WindowError(
                f"rare_threshold must lie in (0, 1), got {rare_threshold}"
            )
        self._rare_threshold = float(rare_threshold)
        self._store = NgramStore.from_stream(self._stream, (1,))

    @property
    def rare_threshold(self) -> float:
        """Relative-frequency bound below which a sequence is rare."""
        return self._rare_threshold

    @property
    def training_length(self) -> int:
        """Number of elements in the analyzed training stream."""
        return len(self._stream)

    def store_for(self, *lengths: int) -> NgramStore:
        """Return the backing store, indexing ``lengths`` (building as needed)."""
        missing = [length for length in lengths if length not in self._store.lengths]
        if missing:
            self._store.merge_disjoint(NgramStore.from_stream(self._stream, missing))
        return self._store

    # -- single-sequence queries ----------------------------------------------

    def count(self, sequence: Sequence[int]) -> int:
        """Occurrences of ``sequence`` in the training stream."""
        return self.store_for(len(tuple(sequence))).count(sequence)

    def is_foreign(self, sequence: Sequence[int]) -> bool:
        """Whether ``sequence`` does not occur in training."""
        return is_foreign(sequence, self.store_for(len(tuple(sequence))))

    def is_rare(self, sequence: Sequence[int]) -> bool:
        """Whether ``sequence`` occurs but below the rarity threshold."""
        return is_rare(sequence, self.store_for(len(tuple(sequence))), self._rare_threshold)

    def is_common(self, sequence: Sequence[int]) -> bool:
        """Whether ``sequence`` occurs at or above the rarity threshold."""
        return is_common(sequence, self.store_for(len(tuple(sequence))), self._rare_threshold)

    def is_minimal_foreign(self, sequence: Sequence[int]) -> bool:
        """Whether ``sequence`` is an MFS with respect to training."""
        length = len(tuple(sequence))
        return is_minimal_foreign(sequence, self.store_for(length, length - 1))

    def verify_minimal_foreign(self, sequence: Sequence[int]) -> None:
        """Exhaustively verify the MFS property, raising on violation.

        Unlike :meth:`is_minimal_foreign` (which uses the two-window
        shortcut), this checks *every* proper contiguous subsequence,
        serving as an independent oracle for tests.

        Raises:
            WindowError: if the sequence is not foreign, or some proper
                subsequence is itself foreign.
        """
        key = tuple(int(code) for code in sequence)
        store = self.store_for(*range(1, len(key) + 1))
        if store.contains(key):
            raise WindowError(f"sequence {key} occurs in training; not foreign")
        for sub in proper_subsequences(key):
            if not store.contains(sub):
                raise WindowError(
                    f"proper subsequence {sub} of {key} is foreign; {key} is not minimal"
                )

    # -- enumeration ----------------------------------------------------------

    def minimal_foreign_sequences(
        self, length: int, rare_parts_only: bool = False, limit: int | None = None
    ) -> list[Ngram]:
        """Enumerate MFSs of ``length`` constructible over this training data.

        An MFS of length ``n`` is the overlap-join of two observed
        ``(n-1)``-grams ``a`` and ``b`` with ``a[1:] == b[:-1]`` whose
        join ``a + (b[-1],)`` is unobserved.  The enumeration walks all
        such joins in deterministic (sorted) order.

        Args:
            length: the MFS length ``n >= 2``.
            rare_parts_only: if true, only joins of two *rare*
                ``(n-1)``-grams are returned — the paper composes its
                anomalies exclusively from rare subsequences.
            limit: optional cap on the number of results.

        Returns:
            MFS tuples in lexicographic order (possibly empty).
        """
        if length < 2:
            raise WindowError(f"MFS length must be >= 2, got {length}")
        store = self.store_for(length, length - 1)
        part_length = length - 1
        if rare_parts_only:
            parts = set(store.rare_ngrams(part_length, self._rare_threshold))
        else:
            parts = set(store.ngrams(part_length))
        # Index candidate right-parts by their (n-2)-prefix for O(1) joins.
        by_prefix: dict[Ngram, list[Ngram]] = {}
        for part in parts:
            by_prefix.setdefault(part[:-1], []).append(part)
        results: list[Ngram] = []
        for left in sorted(parts):
            for right in sorted(by_prefix.get(left[1:], ())):
                candidate = left + (right[-1],)
                if not store.contains(candidate):
                    results.append(candidate)
                    if limit is not None and len(results) >= limit:
                        return results
        return results


def minimal_foreign_sequences(
    training_stream: Sequence[int] | np.ndarray,
    length: int,
    rare_threshold: float = 0.005,
    rare_parts_only: bool = False,
    limit: int | None = None,
) -> list[Ngram]:
    """Convenience wrapper: enumerate MFSs directly from a stream.

    See :meth:`ForeignSequenceAnalyzer.minimal_foreign_sequences`.
    """
    analyzer = ForeignSequenceAnalyzer(training_stream, rare_threshold=rare_threshold)
    return analyzer.minimal_foreign_sequences(
        length, rare_parts_only=rare_parts_only, limit=limit
    )
