"""Bidirectional mapping between categorical symbols and integer codes.

All detectors in the library operate on streams of dense integer codes
(``0 .. size-1``).  :class:`Alphabet` owns the mapping between those
codes and the caller's symbols — system-call names, user-command
strings, audit-record labels, or (as in the paper's synthetic corpus)
the digits ``1`` through ``8``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence

from repro.exceptions import AlphabetError

Symbol = Hashable


class Alphabet:
    """An immutable, ordered set of categorical symbols.

    The alphabet assigns each symbol a dense integer code equal to its
    position in the constructor iterable.  Encoding and decoding are
    O(1) per symbol.

    Args:
        symbols: the symbols in code order.  Must be non-empty, hashable
            and free of duplicates.

    Raises:
        AlphabetError: if ``symbols`` is empty or contains duplicates.
    """

    __slots__ = ("_symbols", "_codes")

    def __init__(self, symbols: Iterable[Symbol]) -> None:
        symbol_list = list(symbols)
        if not symbol_list:
            raise AlphabetError("an alphabet requires at least one symbol")
        codes: dict[Symbol, int] = {}
        for code, symbol in enumerate(symbol_list):
            if symbol in codes:
                raise AlphabetError(f"duplicate symbol in alphabet: {symbol!r}")
            codes[symbol] = code
        self._symbols: tuple[Symbol, ...] = tuple(symbol_list)
        self._codes: dict[Symbol, int] = codes

    @classmethod
    def of_size(cls, size: int) -> "Alphabet":
        """Build the integer alphabet ``1..size`` used by the paper.

        The paper's synthetic corpus uses eight symbols written
        ``1 2 3 4 5 6 7 8``; this constructor reproduces that naming.

        Args:
            size: number of symbols; must be positive.
        """
        if size <= 0:
            raise AlphabetError(f"alphabet size must be positive, got {size}")
        return cls(range(1, size + 1))

    @classmethod
    def from_stream(cls, stream: Iterable[Symbol]) -> "Alphabet":
        """Build an alphabet from the distinct symbols of a stream.

        Symbols are assigned codes in order of first appearance, which
        keeps encodings stable for a fixed stream.
        """
        seen: dict[Symbol, None] = {}
        for symbol in stream:
            if symbol not in seen:
                seen[symbol] = None
        return cls(seen.keys())

    @property
    def size(self) -> int:
        """Number of symbols in the alphabet."""
        return len(self._symbols)

    @property
    def symbols(self) -> tuple[Symbol, ...]:
        """All symbols, in code order."""
        return self._symbols

    def encode_symbol(self, symbol: Symbol) -> int:
        """Return the integer code of ``symbol``.

        Raises:
            AlphabetError: if the symbol is not in the alphabet.
        """
        try:
            return self._codes[symbol]
        except KeyError:
            raise AlphabetError(f"symbol not in alphabet: {symbol!r}") from None
        except TypeError:
            raise AlphabetError(f"unhashable symbol: {symbol!r}") from None

    def decode_code(self, code: int) -> Symbol:
        """Return the symbol with integer code ``code``.

        Raises:
            AlphabetError: if ``code`` is out of range.
        """
        if not 0 <= code < len(self._symbols):
            raise AlphabetError(
                f"code {code} out of range for alphabet of size {len(self._symbols)}"
            )
        return self._symbols[code]

    def encode(self, stream: Iterable[Symbol]) -> tuple[int, ...]:
        """Encode a stream of symbols into integer codes."""
        return tuple(self.encode_symbol(symbol) for symbol in stream)

    def decode(self, codes: Sequence[int]) -> tuple[Symbol, ...]:
        """Decode a sequence of integer codes back into symbols."""
        return tuple(self.decode_code(code) for code in codes)

    def __contains__(self, symbol: object) -> bool:
        try:
            return symbol in self._codes
        except TypeError:
            return False

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        if len(self._symbols) <= 12:
            inner = ", ".join(repr(symbol) for symbol in self._symbols)
        else:
            head = ", ".join(repr(symbol) for symbol in self._symbols[:12])
            inner = f"{head}, ... ({len(self._symbols)} symbols)"
        return f"Alphabet([{inner}])"
