"""Corpus statistics over categorical streams.

The paper's data design is driven by n-gram statistics: a dominant
deterministic cycle, a controlled rare tail, and the rarity threshold
separating them.  This module computes the statistics that make such
structure visible — frequency spectra, conditional entropy, and
n-gram-space saturation — for corpus diagnostics, the examples, and
the data-design ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import WindowError
from repro.sequences.ngram_store import NgramStore


@dataclass(frozen=True)
class FrequencySpectrum:
    """The frequency structure of one window length.

    Attributes:
        length: the window length analyzed.
        distinct: number of distinct n-grams observed.
        total: total windows counted.
        common: n-grams at or above the rarity threshold.
        rare: n-grams below the threshold.
        common_mass: fraction of windows carried by common n-grams.
        rare_mass: fraction of windows carried by rare n-grams.
    """

    length: int
    distinct: int
    total: int
    common: int
    rare: int
    common_mass: float
    rare_mass: float

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"n={self.length}: {self.distinct} distinct "
            f"({self.common} common carrying {self.common_mass:.1%}, "
            f"{self.rare} rare carrying {self.rare_mass:.1%})"
        )


def frequency_spectrum(
    store: NgramStore, length: int, rare_threshold: float
) -> FrequencySpectrum:
    """Split one length's n-grams into common/rare and weigh each side.

    Raises:
        WindowError: if the store does not index ``length``.
    """
    total = store.total(length)
    counts = store.counts(length)
    if total == 0:
        return FrequencySpectrum(length, 0, 0, 0, 0, 0.0, 0.0)
    bound = rare_threshold * total
    common_count = sum(1 for n in counts.values() if n >= bound)
    rare_count = len(counts) - common_count
    common_mass = sum(n for n in counts.values() if n >= bound) / total
    return FrequencySpectrum(
        length=length,
        distinct=len(counts),
        total=total,
        common=common_count,
        rare=rare_count,
        common_mass=common_mass,
        rare_mass=1.0 - common_mass,
    )


def conditional_entropy(store: NgramStore, context_length: int) -> float:
    """H(next symbol | context) in bits, from training counts.

    Requires the store to index ``context_length`` and
    ``context_length + 1``.  Near-zero entropy signals the almost
    deterministic structure of the paper's corpus; natural data sits
    substantially higher.

    Raises:
        WindowError: if the required lengths are not indexed.
    """
    if context_length < 1:
        raise WindowError(
            f"context_length must be >= 1, got {context_length}"
        )
    store.counts(context_length)  # raises WindowError when unindexed
    joint_counts = store.counts(context_length + 1)
    total = store.total(context_length + 1)
    if total == 0:
        return 0.0
    # Context totals derived from the joint table, so contexts at a
    # stream's end (with no successor) do not skew the conditionals.
    context_totals: dict[tuple[int, ...], int] = {}
    for ngram, joint in joint_counts.items():
        key = ngram[:-1]
        context_totals[key] = context_totals.get(key, 0) + joint
    entropy = 0.0
    for ngram, joint in joint_counts.items():
        context = context_totals[ngram[:-1]]
        probability = joint / total
        conditional = joint / context
        entropy -= probability * math.log2(conditional)
    return max(0.0, entropy)


def ngram_space_saturation(
    store: NgramStore, length: int, alphabet_size: int
) -> float:
    """Observed fraction of the ``alphabet_size ** length`` n-gram space.

    Low saturation means most same-length sequences are foreign —
    the precondition for Stide-style detection to have anything to
    detect.  Saturation 1.0 means no foreign sequence of that length
    exists at all.
    """
    if alphabet_size < 2:
        raise WindowError(f"alphabet_size must be >= 2, got {alphabet_size}")
    space = float(alphabet_size) ** length
    return min(1.0, store.distinct(length) / space)


def symbol_distribution(stream: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Relative frequency of each symbol code in a stream."""
    data = np.asarray(stream)
    if data.ndim != 1:
        raise WindowError(f"stream must be 1-D, got shape {data.shape}")
    if len(data) == 0:
        return np.zeros(alphabet_size)
    counts = np.bincount(data, minlength=alphabet_size).astype(float)
    if len(counts) > alphabet_size:
        raise WindowError("stream contains codes outside the alphabet")
    return counts / len(data)
