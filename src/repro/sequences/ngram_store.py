"""Exact n-gram occurrence counts over categorical streams.

An :class:`NgramStore` records, for one or more window lengths, how many
times each fixed-length sequence occurs in a stream.  It answers the
three questions the paper's machinery asks constantly:

* *does this sequence exist in training?* (foreignness, Stide's test);
* *how often, relative to all windows of its length?* (rarity — the
  paper defines rare as relative frequency below 0.5%);
* *what follows this context, and with what probability?* (the Markov
  detector's conditional probabilities).

Counting is vectorized with NumPy: all windows of a length are
materialized as a strided 2-D view and reduced with ``np.unique``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import WindowError
from repro.sequences.windows import windows_array

Ngram = tuple[int, ...]


def _count_windows(stream: np.ndarray, length: int) -> dict[Ngram, int]:
    """Return exact occurrence counts of every ``length``-window."""
    if len(stream) < length:
        return {}
    view = windows_array(stream, length)
    unique_rows, counts = np.unique(view, axis=0, return_counts=True)
    return {
        tuple(int(code) for code in row): int(count)
        for row, count in zip(unique_rows, counts)
    }


class NgramStore:
    """Occurrence counts of fixed-length sequences at selected lengths.

    The store indexes a set of window lengths; queries at an unindexed
    length raise :class:`~repro.exceptions.WindowError` rather than
    silently returning zero, because "never counted" and "counted zero
    times" mean very different things for foreignness tests.

    Use :meth:`from_stream` to build a store, or construct an empty one
    and feed it with :meth:`update`.

    Args:
        lengths: the window lengths to index; each must be positive.
    """

    def __init__(self, lengths: Iterable[int]) -> None:
        length_tuple = tuple(sorted(set(int(length) for length in lengths)))
        if not length_tuple:
            raise WindowError("an NgramStore requires at least one window length")
        if length_tuple[0] <= 0:
            raise WindowError(f"window lengths must be positive, got {length_tuple[0]}")
        self._counts: dict[int, dict[Ngram, int]] = {length: {} for length in length_tuple}
        self._totals: dict[int, int] = {length: 0 for length in length_tuple}

    @classmethod
    def from_stream(
        cls, stream: Sequence[int] | np.ndarray, lengths: Iterable[int]
    ) -> "NgramStore":
        """Build a store by counting all windows of ``lengths`` in ``stream``."""
        store = cls(lengths)
        store.update(stream)
        return store

    def update(self, stream: Sequence[int] | np.ndarray) -> None:
        """Add the windows of another stream to the counts.

        Streams added separately are treated as independent traces: no
        windows spanning the junction between two streams are counted,
        matching how multiple traces (e.g. per-process system-call
        traces) are conventionally pooled.
        """
        data = np.asarray(stream)
        if data.ndim != 1:
            raise WindowError(f"stream must be one-dimensional, got shape {data.shape}")
        for length in self._counts:
            fresh = _count_windows(data, length)
            if not fresh:
                continue
            bucket = self._counts[length]
            for ngram, count in fresh.items():
                bucket[ngram] = bucket.get(ngram, 0) + count
            self._totals[length] += max(0, len(data) - length + 1)

    def merge_disjoint(self, other: "NgramStore") -> None:
        """Absorb another store's tables for lengths this store lacks.

        Both stores must have counted the *same* underlying data for
        the merge to be meaningful; the caller owns that contract.
        Used to extend a store with new window lengths without
        re-counting the lengths it already indexes.

        Raises:
            WindowError: if the stores share any indexed length.
        """
        shared = set(self._counts) & set(other._counts)
        if shared:
            raise WindowError(
                f"cannot merge stores sharing indexed lengths {sorted(shared)}"
            )
        self._counts.update(other._counts)
        self._totals.update(other._totals)
        self._counts = dict(sorted(self._counts.items()))
        self._totals = dict(sorted(self._totals.items()))

    # -- basic introspection -------------------------------------------------

    @property
    def lengths(self) -> tuple[int, ...]:
        """The indexed window lengths, ascending."""
        return tuple(self._counts)

    def _bucket(self, length: int) -> dict[Ngram, int]:
        try:
            return self._counts[length]
        except KeyError:
            raise WindowError(
                f"length {length} is not indexed by this store (indexed: {self.lengths})"
            ) from None

    def total(self, length: int) -> int:
        """Total number of windows of ``length`` counted so far."""
        self._bucket(length)
        return self._totals[length]

    def distinct(self, length: int) -> int:
        """Number of distinct ``length``-grams observed."""
        return len(self._bucket(length))

    def ngrams(self, length: int) -> Iterable[Ngram]:
        """Iterate over the distinct ``length``-grams observed."""
        return iter(self._bucket(length))

    def counts(self, length: int) -> Mapping[Ngram, int]:
        """Read-only view of the count table for ``length``."""
        return dict(self._bucket(length))

    # -- membership, frequency, rarity ---------------------------------------

    def count(self, ngram: Sequence[int]) -> int:
        """Occurrences of ``ngram`` (0 if never observed)."""
        key = tuple(int(code) for code in ngram)
        return self._bucket(len(key)).get(key, 0)

    def contains(self, ngram: Sequence[int]) -> bool:
        """Whether ``ngram`` occurred at least once (i.e. is not foreign)."""
        return self.count(ngram) > 0

    def __contains__(self, ngram: object) -> bool:
        if not isinstance(ngram, (tuple, list)):
            return False
        try:
            return self.contains(ngram)  # type: ignore[arg-type]
        except WindowError:
            return False

    def relative_frequency(self, ngram: Sequence[int]) -> float:
        """Occurrences of ``ngram`` divided by all same-length windows.

        Returns 0.0 when no windows of that length have been counted.
        """
        key = tuple(int(code) for code in ngram)
        total = self.total(len(key))
        if total == 0:
            return 0.0
        return self.count(key) / total

    def rare_ngrams(self, length: int, threshold: float) -> list[Ngram]:
        """Observed ``length``-grams with relative frequency below ``threshold``.

        This is the paper's rarity criterion (Section 5.3): a rare
        sequence has relative frequency under 0.5% in training.
        """
        total = self.total(length)
        if total == 0:
            return []
        bound = threshold * total
        return [ngram for ngram, count in self._bucket(length).items() if count < bound]

    def common_ngrams(self, length: int, threshold: float) -> list[Ngram]:
        """Observed ``length``-grams at or above the rarity ``threshold``."""
        total = self.total(length)
        if total == 0:
            return []
        bound = threshold * total
        return [ngram for ngram, count in self._bucket(length).items() if count >= bound]

    # -- conditional structure (Markov support) ------------------------------

    def successor_counts(self, context: Sequence[int]) -> dict[int, int]:
        """Counts of each symbol observed immediately after ``context``.

        Requires the store to index length ``len(context) + 1``; the
        distribution is read off the ``(len(context)+1)``-gram table.

        Raises:
            WindowError: if ``len(context) + 1`` is not indexed.
        """
        prefix = tuple(int(code) for code in context)
        span = len(prefix) + 1
        bucket = self._bucket(span)
        successors: dict[int, int] = {}
        for ngram, count in bucket.items():
            if ngram[:-1] == prefix:
                successors[ngram[-1]] = successors.get(ngram[-1], 0) + count
        return successors

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{length}:{len(bucket)}" for length, bucket in self._counts.items()
        )
        return f"NgramStore(lengths->distinct: {{{sizes}}})"
