"""Fixed-length sliding windows over categorical streams.

The fixed-length sequence obtained by sliding a *detector window* of
length ``DW`` across a data stream is the basic event analyzed by every
detector in Tan & Maxion's study (Section 4.2).  This module provides
the window iteration primitives shared by detectors, generators and the
evaluation harness.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import WindowError

Window = tuple[int, ...]

#: Signed 64-bit integers leave 63 usable bits for packed window keys.
PACK_BIT_BUDGET = 63


def symbol_bits(alphabet_size: int) -> int:
    """Bits needed to hold one symbol code in ``0..alphabet_size-1``.

    ``ceil(log2(alphabet_size))``, with a floor of 1 bit so the
    degenerate two-symbol alphabet still occupies a lane.  The paper's
    AS=8 alphabet packs at 3 bits per symbol.

    Raises:
        WindowError: if ``alphabet_size`` < 2.
    """
    if alphabet_size < 2:
        raise WindowError(f"alphabet_size must be >= 2, got {alphabet_size}")
    return max(1, int(alphabet_size - 1).bit_length())


def packable(alphabet_size: int, window_length: int) -> bool:
    """Whether ``window_length`` symbols fit one 63-bit packed key.

    Bit-width budget: ``window_length * symbol_bits(alphabet_size) <= 63``.
    For AS=8 this admits every DW up to 21; AS=32/DW=13 needs 65 bits
    and stays unpackable (tuple/bisect fallback paths).
    """
    _check_window_length(window_length)
    return window_length * symbol_bits(alphabet_size) <= PACK_BIT_BUDGET


def _check_window_length(window_length: int) -> None:
    if window_length <= 0:
        raise WindowError(f"window length must be positive, got {window_length}")


def window_count(stream_length: int, window_length: int) -> int:
    """Number of windows of ``window_length`` in a stream of ``stream_length``.

    Returns 0 when the stream is shorter than the window.
    """
    _check_window_length(window_length)
    if stream_length < 0:
        raise WindowError(f"stream length must be non-negative, got {stream_length}")
    return max(0, stream_length - window_length + 1)


def iter_windows(stream: Sequence[int], window_length: int) -> Iterator[Window]:
    """Yield every contiguous window of ``window_length`` as a tuple.

    Windows are yielded in stream order; the window starting at index
    ``i`` covers ``stream[i : i + window_length]``.

    Args:
        stream: the categorical stream (any integer sequence).
        window_length: length of the sliding window; must be positive.

    Raises:
        WindowError: if ``window_length`` is not positive.
    """
    _check_window_length(window_length)
    stream_tuple = tuple(stream)
    for start in range(len(stream_tuple) - window_length + 1):
        yield stream_tuple[start : start + window_length]


def windows_array(stream: Sequence[int] | np.ndarray, window_length: int) -> np.ndarray:
    """Return all windows as a 2-D NumPy view-like array.

    The result has shape ``(window_count, window_length)``; row ``i`` is
    the window starting at stream position ``i``.  Uses stride tricks,
    so no data is copied for array input.

    Args:
        stream: the categorical stream.
        window_length: length of the sliding window; must be positive
            and no longer than the stream.

    Raises:
        WindowError: if the window does not fit in the stream.
    """
    _check_window_length(window_length)
    data = np.asarray(stream)
    if data.ndim != 1:
        raise WindowError(f"stream must be one-dimensional, got shape {data.shape}")
    if len(data) < window_length:
        raise WindowError(
            f"stream of length {len(data)} is shorter than window length {window_length}"
        )
    return np.lib.stride_tricks.sliding_window_view(data, window_length)


def pack_windows(windows: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Pack integer windows into single integers for O(1) hashing.

    Each window ``(c_0, ..., c_{k-1})`` with codes in ``0..alphabet_size-1``
    occupies ``symbol_bits(alphabet_size)`` bit lanes of one signed
    64-bit key: ``sum c_i << (bits * (k-1-i))``.  Bit-width packing is
    injective for windows of a fixed length and preserves lexicographic
    order (the first symbol owns the highest lane), so sorting packed
    keys sorts the underlying windows — which is what lets the
    membership kernels bisect packed databases and the automaton derive
    shorter-window keys by right-shifting longer ones.  For power-of-two
    alphabets the values coincide with the historical base-``AS``
    encoding; for other alphabets the budget is strictly wider
    (``k * ceil(log2 AS) <= 63`` instead of ``k * log2 AS < 63``).

    Args:
        windows: 2-D array of shape ``(n, k)`` with codes in range.
        alphabet_size: number of symbols; must exceed every code.

    Raises:
        WindowError: if codes are out of range or packing would overflow
            the 63-bit signed integer budget.
    """
    if windows.ndim != 2:
        raise WindowError(f"windows must be 2-D, got shape {windows.shape}")
    length = windows.shape[1]
    bits = symbol_bits(alphabet_size)
    if length * bits > PACK_BIT_BUDGET:
        raise WindowError(
            f"packing windows of length {length} over alphabet {alphabet_size} "
            "would overflow 63-bit integers"
        )
    if windows.size and (windows.min() < 0 or windows.max() >= alphabet_size):
        raise WindowError("window codes out of range for the given alphabet size")
    weights = np.left_shift(
        np.int64(1), bits * np.arange(length - 1, -1, -1, dtype=np.int64)
    )
    return windows.astype(np.int64) @ weights


def pack_window(window: Sequence[int], alphabet_size: int) -> int:
    """Pack a single window into an integer (see :func:`pack_windows`)."""
    packed = pack_windows(np.asarray([tuple(window)], dtype=np.int64), alphabet_size)
    return int(packed[0])
