"""Categorical-sequence substrate.

This subpackage provides the data representations shared by every
detector and generator in the library:

* :class:`~repro.sequences.alphabet.Alphabet` — bidirectional mapping
  between categorical symbols (syscall names, audit-event labels, ...)
  and dense integer codes;
* :mod:`~repro.sequences.windows` — sliding fixed-length windows, the
  basic event analyzed by all four detectors in the paper;
* :class:`~repro.sequences.ngram_store.NgramStore` — exact n-gram
  occurrence counts over one or more window lengths;
* :class:`~repro.sequences.trie.SequenceTrie` — prefix trie with counts,
  used where prefix/extension queries are needed;
* :mod:`~repro.sequences.foreign` — foreignness, rarity, and
  minimal-foreign-sequence (MFS) analysis, the anomaly vocabulary of
  Tan & Maxion.
"""

from repro.sequences.alphabet import Alphabet
from repro.sequences.foreign import (
    ForeignSequenceAnalyzer,
    is_foreign,
    is_minimal_foreign,
    is_rare,
    minimal_foreign_sequences,
)
from repro.sequences.ngram_store import NgramStore
from repro.sequences.stats import (
    FrequencySpectrum,
    conditional_entropy,
    frequency_spectrum,
    ngram_space_saturation,
    symbol_distribution,
)
from repro.sequences.trie import SequenceTrie
from repro.sequences.windows import iter_windows, window_count, windows_array

__all__ = [
    "Alphabet",
    "ForeignSequenceAnalyzer",
    "FrequencySpectrum",
    "NgramStore",
    "SequenceTrie",
    "conditional_entropy",
    "frequency_spectrum",
    "is_foreign",
    "is_minimal_foreign",
    "is_rare",
    "iter_windows",
    "minimal_foreign_sequences",
    "ngram_space_saturation",
    "symbol_distribution",
    "window_count",
    "windows_array",
]
