"""Prefix trie over categorical sequences, with occurrence counts.

The trie complements :class:`~repro.sequences.ngram_store.NgramStore`:
the store answers exact-length membership/frequency queries, while the
trie supports *prefix* queries — "which symbols can extend this
context, and how often?" — in time proportional to the prefix length.
It backs the minimal-foreign-sequence search and the system-call
program models.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.exceptions import WindowError
from repro.sequences.windows import iter_windows


class _TrieNode:
    """One trie node: children by symbol plus visit/terminal counts."""

    __slots__ = ("children", "pass_count", "end_count")

    def __init__(self) -> None:
        self.children: dict[int, "_TrieNode"] = {}
        self.pass_count = 0  # sequences inserted through this node
        self.end_count = 0  # sequences inserted ending at this node


class SequenceTrie:
    """A counting prefix trie over integer sequences.

    Sequences of any length can be inserted.  ``pass`` counts record how
    many inserted sequences travel through a node (i.e. have the node's
    path as a prefix), enabling conditional-frequency queries.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._total_insertions = 0

    @classmethod
    def from_stream(cls, stream: Sequence[int], window_length: int) -> "SequenceTrie":
        """Build a trie from all ``window_length``-windows of a stream."""
        trie = cls()
        for window in iter_windows(stream, window_length):
            trie.insert(window)
        return trie

    @property
    def total_insertions(self) -> int:
        """Number of sequences inserted so far (with multiplicity)."""
        return self._total_insertions

    def insert(self, sequence: Sequence[int], count: int = 1) -> None:
        """Insert ``sequence`` with multiplicity ``count``.

        Raises:
            WindowError: if ``sequence`` is empty or ``count`` is not
                positive.
        """
        if not len(sequence):
            raise WindowError("cannot insert an empty sequence")
        if count <= 0:
            raise WindowError(f"insertion count must be positive, got {count}")
        node = self._root
        node.pass_count += count
        for symbol in sequence:
            node = node.children.setdefault(int(symbol), _TrieNode())
            node.pass_count += count
        node.end_count += count
        self._total_insertions += count

    def _walk(self, sequence: Sequence[int]) -> _TrieNode | None:
        node = self._root
        for symbol in sequence:
            node = node.children.get(int(symbol))
            if node is None:
                return None
        return node

    def count(self, sequence: Sequence[int]) -> int:
        """Multiplicity with which ``sequence`` was inserted (exact match)."""
        node = self._walk(sequence)
        return 0 if node is None else node.end_count

    def prefix_count(self, prefix: Sequence[int]) -> int:
        """Number of inserted sequences having ``prefix`` as a prefix."""
        node = self._walk(prefix)
        return 0 if node is None else node.pass_count

    def contains(self, sequence: Sequence[int]) -> bool:
        """Whether ``sequence`` was inserted at least once."""
        return self.count(sequence) > 0

    def has_prefix(self, prefix: Sequence[int]) -> bool:
        """Whether any inserted sequence starts with ``prefix``."""
        return self.prefix_count(prefix) > 0

    def successors(self, prefix: Sequence[int]) -> dict[int, int]:
        """Symbols that extend ``prefix``, with pass counts.

        The returned counts are the number of inserted sequences whose
        path continues from ``prefix`` through each symbol.
        """
        node = self._walk(prefix)
        if node is None:
            return {}
        return {symbol: child.pass_count for symbol, child in node.children.items()}

    def iter_sequences(self) -> Iterator[tuple[tuple[int, ...], int]]:
        """Yield every inserted sequence with its end count."""

        def _emit(node: _TrieNode, path: list[int]) -> Iterator[tuple[tuple[int, ...], int]]:
            if node.end_count:
                yield tuple(path), node.end_count
            for symbol in sorted(node.children):
                path.append(symbol)
                yield from _emit(node.children[symbol], path)
                path.pop()

        yield from _emit(self._root, [])

    def __len__(self) -> int:
        return sum(1 for _sequence in self.iter_sequences())

    def __repr__(self) -> str:
        return (
            f"SequenceTrie(distinct={len(self)}, insertions={self._total_insertions})"
        )
