"""Detector-selection strategy driven by measured coverage.

Littlewood & Strigini observed that the security community lacked
strategies "by which to choose amongst diverse designs and by which to
evaluate the effectiveness of the designs once selected"; Tan & Maxion
answer with performance maps.  This module operationalizes the paper's
guidance: given the maps and a characterization of the expected
anomaly, recommend a detector — or a combination — and say why.

The encoded rules are the paper's own (Sections 7-8):

* anomaly size known and a window at least that size deployable — a
  foreign-sequence-only detector (Stide) suffices and minimizes false
  alarms;
* anomaly size unknown (or larger than any deployable window) — a
  probability-based detector (Markov) is required, and if a
  subset-coverage detector exists it should gate the alarms to win
  back the false-alarm rate;
* a candidate whose coverage adds nothing over the current selection
  is reported as redundant (the Stide + L&B lesson).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ensemble.coverage import Coverage
from repro.exceptions import EvaluationError


@dataclass(frozen=True)
class AnomalyProfile:
    """What the defender knows about the expected anomalous event.

    Attributes:
        size: the anomaly length, if known; ``None`` when the attack's
            manifestation size is unknown (the paper's motivating case
            for the Markov + Stide pairing).
        max_deployable_window: the largest detector window the
            deployment can afford.
    """

    size: int | None
    max_deployable_window: int

    def __post_init__(self) -> None:
        if self.size is not None and self.size < 2:
            raise EvaluationError(f"anomaly size must be >= 2, got {self.size}")
        if self.max_deployable_window < 2:
            raise EvaluationError(
                "max_deployable_window must be >= 2, got "
                f"{self.max_deployable_window}"
            )


@dataclass(frozen=True)
class SelectionAdvice:
    """A recommendation with its coverage justification.

    Attributes:
        primary: detector carrying the detection duty.
        gate: detector suppressing the primary's false alarms, if any.
        redundant: candidates whose coverage added nothing.
        rationale: human-readable explanation, paper-style.
    """

    primary: str
    gate: str | None
    redundant: tuple[str, ...]
    rationale: str

    def describe(self) -> str:
        """One-line summary of the recommendation."""
        if self.gate:
            return f"deploy {self.primary} gated by {self.gate}"
        return f"deploy {self.primary}"


def _covers_profile(coverage: Coverage, profile: AnomalyProfile) -> bool:
    """Whether some deployable window detects the profiled anomaly size."""
    if profile.size is None:
        # Unknown size: require coverage of every anomaly size at some
        # deployable window.
        sizes = {anomaly_size for anomaly_size, _w in coverage.grid}
        return all(
            any(
                (anomaly_size, window) in coverage.cells
                for (size_cell, window) in coverage.grid
                if size_cell == anomaly_size
                and window <= profile.max_deployable_window
            )
            for anomaly_size in sizes
        )
    return any(
        (profile.size, window) in coverage.cells
        for (anomaly_size, window) in coverage.grid
        if anomaly_size == profile.size
        and window <= profile.max_deployable_window
    )


def select_detectors(
    coverages: dict[str, Coverage], profile: AnomalyProfile
) -> SelectionAdvice:
    """Recommend a detector or combination for an anomaly profile.

    Args:
        coverages: measured coverage per candidate detector (all over
            the same grid).
        profile: what is known about the expected anomaly.

    Returns:
        The recommendation, its optional suppression gate, and any
        redundant candidates.

    Raises:
        EvaluationError: if no candidate covers the profile, or the
            candidate set is empty.
    """
    if not coverages:
        raise EvaluationError("at least one candidate coverage is required")
    capable = {
        name: coverage
        for name, coverage in coverages.items()
        if _covers_profile(coverage, profile)
    }
    if not capable:
        raise EvaluationError(
            "no candidate detector covers the anomaly profile "
            f"(size={profile.size}, max window={profile.max_deployable_window}); "
            "the attack is not detectable by this detector set (Figure 1, D)"
        )
    # Prefer the capable candidate with the SMALLEST total coverage:
    # narrower coverage means fewer alarm-worthy events and hence fewer
    # false alarms (Stide over Markov when the size is known).
    primary = min(capable, key=lambda name: (len(capable[name]), name))
    primary_coverage = coverages[primary]

    gate: str | None = None
    rationale_parts = []
    if profile.size is not None:
        rationale_parts.append(
            f"anomaly size {profile.size} is known and within reach of a "
            f"window <= {profile.max_deployable_window}, so the narrowest "
            f"capable detector ({primary}) detects it with the fewest "
            "alarm-worthy events"
        )
    else:
        rationale_parts.append(
            f"anomaly size is unknown, so only a detector capable across "
            f"all sizes at deployable windows qualifies ({primary})"
        )
        # Find a strict-subset detector to gate false alarms, the
        # paper's Markov-gated-by-Stide recipe.
        subsets = {
            name: coverage
            for name, coverage in coverages.items()
            if name != primary
            and len(coverage) > 0
            and coverage.is_subset_of(primary_coverage)
        }
        if subsets:
            gate = max(subsets, key=lambda name: (len(subsets[name]), name))
            rationale_parts.append(
                f"{gate}'s coverage is a subset of {primary}'s, so alarms "
                f"raised by {primary} and not by {gate} may be ignored as "
                "false alarms (Section 7)"
            )
    redundant = tuple(
        sorted(
            name
            for name, coverage in coverages.items()
            if name not in {primary, gate}
            and len((primary_coverage | coverage).cells)
            == len(primary_coverage.cells)
        )
    )
    if redundant:
        rationale_parts.append(
            "adding "
            + ", ".join(redundant)
            + " would gain no detection coverage (the Stide + L&B lesson, "
            "Section 8)"
        )
    return SelectionAdvice(
        primary=primary,
        gate=gate,
        redundant=redundant,
        rationale="; ".join(rationale_parts) + ".",
    )
