"""Alarm-combination rules for diverse detectors.

Combination operates on per-window *alarm* vectors — the thresholded
outputs of individual detectors — because that is the level at which
the paper reasons about diversity ("alarms raised by the Markov-based
detector, and not raised by Stide, may be ignored as false alarms").

All rules require equal-length alarm vectors: combine detectors with
the same window length over the same test stream.

Rules:

* :func:`or_alarms` — union: alarm when any member alarms (maximum
  coverage, maximum false alarms);
* :func:`and_alarms` — intersection: alarm only when every member
  alarms;
* :func:`majority_alarms` — alarm when more than half the members do;
* :func:`gated_alarms` — the paper's suppression scheme: the primary
  detector's alarms pass only where the gate detector also alarms.
  With Markov as primary and Stide as gate this keeps hits wherever
  Stide is capable while discarding Markov's rare-sequence false
  alarms (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EvaluationError


def _validated(alarm_vectors: list[np.ndarray]) -> np.ndarray:
    if not alarm_vectors:
        raise EvaluationError("at least one alarm vector is required")
    arrays = [np.asarray(v, dtype=bool) for v in alarm_vectors]
    length = len(arrays[0])
    for i, array in enumerate(arrays):
        if array.ndim != 1:
            raise EvaluationError(f"alarm vector {i} must be 1-D")
        if len(array) != length:
            raise EvaluationError(
                f"alarm vector {i} has length {len(array)}, expected {length}; "
                "combine detectors with equal window lengths"
            )
    return np.stack(arrays, axis=0)


def or_alarms(alarm_vectors: list[np.ndarray]) -> np.ndarray:
    """Union of member alarms."""
    return _validated(alarm_vectors).any(axis=0)


def and_alarms(alarm_vectors: list[np.ndarray]) -> np.ndarray:
    """Intersection of member alarms."""
    return _validated(alarm_vectors).all(axis=0)


def majority_alarms(alarm_vectors: list[np.ndarray]) -> np.ndarray:
    """Alarm where strictly more than half the members alarm."""
    stacked = _validated(alarm_vectors)
    return stacked.sum(axis=0) * 2 > stacked.shape[0]


def gated_alarms(primary: np.ndarray, gate: np.ndarray) -> np.ndarray:
    """Primary alarms that the gate confirms (the suppression scheme).

    Args:
        primary: alarms of the sensitive detector (e.g. Markov).
        gate: alarms of the specific detector (e.g. Stide).

    Returns:
        Boolean vector: ``primary AND gate``.
    """
    return and_alarms([primary, gate])


@dataclass(frozen=True)
class CombinedAlarms:
    """A combination result with per-member provenance.

    Attributes:
        alarms: the combined boolean alarm vector.
        member_names: labels of the combined detectors, in input order.
        rule: the combination rule name.
        suppressed: number of windows where some member alarmed but the
            combination did not (the false alarms discarded, under the
            suppression reading).
    """

    alarms: np.ndarray
    member_names: tuple[str, ...]
    rule: str
    suppressed: int

    @classmethod
    def combine(
        cls,
        named_alarms: list[tuple[str, np.ndarray]],
        rule: str = "or",
    ) -> "CombinedAlarms":
        """Combine labeled alarm vectors under a named rule.

        Args:
            named_alarms: ``(label, alarm_vector)`` pairs.  For the
                ``"gated"`` rule the first pair is the primary and the
                second the gate.
            rule: ``"or"``, ``"and"``, ``"majority"`` or ``"gated"``.

        Raises:
            EvaluationError: for unknown rules or arity mismatches.
        """
        if not named_alarms:
            raise EvaluationError("at least one labeled alarm vector is required")
        names = tuple(name for name, _vector in named_alarms)
        vectors = [vector for _name, vector in named_alarms]
        if rule == "or":
            combined = or_alarms(vectors)
        elif rule == "and":
            combined = and_alarms(vectors)
        elif rule == "majority":
            combined = majority_alarms(vectors)
        elif rule == "gated":
            if len(vectors) != 2:
                raise EvaluationError(
                    f"gated combination takes exactly 2 members, got {len(vectors)}"
                )
            combined = gated_alarms(vectors[0], vectors[1])
        else:
            raise EvaluationError(
                f"unknown combination rule {rule!r}; "
                "use 'or', 'and', 'majority' or 'gated'"
            )
        any_member = or_alarms(vectors)
        suppressed = int((any_member & ~combined).sum())
        return cls(
            alarms=combined, member_names=names, rule=rule, suppressed=suppressed
        )
