"""Quantifying how diverse two detectors actually are.

"Diversity" in the paper is qualitative — different similarity metrics
— but its *effect* is measurable: how differently the detectors cover
the anomaly space, and how often their window-level judgments disagree.
Two detectors with very different mechanisms can still be redundant
(Stide and L&B share a blind region), so combination decisions should
be driven by these measurements rather than by design provenance —
Littlewood & Strigini's missing selection strategy.
"""

from __future__ import annotations

import numpy as np

from repro.ensemble.coverage import Coverage
from repro.exceptions import EvaluationError


def coverage_diversity(first: Coverage, second: Coverage) -> float:
    """Jaccard distance between two coverages over the same grid.

    0.0 means identical coverage (combination adds nothing); 1.0 means
    fully disjoint coverage (combination doubles the covered region).
    When both coverages are empty the distance is defined as 0.0.
    """
    union = first.union(second)
    if len(union) == 0:
        return 0.0
    intersection = first.intersection(second)
    return 1.0 - len(intersection) / len(union)


def coverage_redundancy(first: Coverage, second: Coverage) -> float:
    """Fraction of the smaller coverage contained in the larger.

    1.0 signals full redundancy — the subset relation under which one
    detector can gate the other (the Stide/Markov case).
    """
    smaller, larger = sorted((first, second), key=len)
    if len(smaller) == 0:
        return 1.0
    return len(smaller.intersection(larger)) / len(smaller)


def response_disagreement(
    first_responses: np.ndarray,
    second_responses: np.ndarray,
    first_level: float = 1.0,
    second_level: float = 1.0,
) -> float:
    """Fraction of windows on which thresholded judgments disagree.

    Args:
        first_responses: per-window responses of the first detector.
        second_responses: per-window responses of the second detector
            (same test stream and window length).
        first_level: alarm level of the first detector.
        second_level: alarm level of the second detector.

    Raises:
        EvaluationError: on length mismatch.
    """
    a = np.asarray(first_responses, dtype=float)
    b = np.asarray(second_responses, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise EvaluationError(
            f"response arrays must be 1-D and equal length, got {a.shape} vs {b.shape}"
        )
    if len(a) == 0:
        return 0.0
    return float(((a >= first_level) != (b >= second_level)).mean())
