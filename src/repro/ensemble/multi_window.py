"""Multi-window detector banks: coverage without probabilities.

The paper's motivating deployment problem: an attack manifests as a
minimal foreign sequence "but the size of this foreign sequence is
unknown (making Stide unreliable as the main detector since Stide
would only detect such a manifestation if its detector window is set
to at least the known size)".  The paper's answer is the Markov
detector; the brute-force alternative is a *bank* of Stide instances
at every affordable window length, alarming when any member does.

:class:`MultiWindowBank` implements the bank for any registered
detector family.  Member responses at different window lengths are
aligned on the **window start index** and combined per start with a
maximum, so the bank exposes the same response-array contract as a
single detector with the bank's minimum window length.

The bank's coverage equals the union of its members' map rows — for
Stide with windows up to ``W`` that is every anomaly size up to ``W``
— at the cost of one normal database per window and the members'
summed false alarms (the E20 bench quantifies both sides against the
Markov-gated-by-Stide pairing).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import create_detector
from repro.exceptions import DetectorConfigurationError
from repro.sequences.windows import window_count


class MultiWindowBank(AnomalyDetector):
    """One detector family deployed at several window lengths at once.

    The bank subclasses :class:`AnomalyDetector` with
    ``window_length = min(window_lengths)``: every window start that
    the shortest member scores gets a combined response (longer
    members simply contribute nothing at the trailing starts they
    cannot reach).

    Args:
        window_lengths: member window lengths (>= 2, at least one).
        alphabet_size: number of symbol codes.
        family: registered detector name to instantiate per window.
        **family_kwargs: forwarded to each member's constructor.
    """

    name = "multi-window"

    def __init__(
        self,
        window_lengths: Iterable[int],
        alphabet_size: int,
        family: str = "stide",
        **family_kwargs: object,
    ) -> None:
        lengths = tuple(sorted(set(int(w) for w in window_lengths)))
        if not lengths:
            raise DetectorConfigurationError(
                "a multi-window bank needs at least one window length"
            )
        if lengths[0] < 2:
            raise DetectorConfigurationError(
                f"window lengths must be >= 2, got {lengths[0]}"
            )
        members = [
            create_detector(family, length, alphabet_size, **family_kwargs)
            for length in lengths
        ]
        tolerance = max(member.response_tolerance for member in members)
        super().__init__(lengths[0], alphabet_size, response_tolerance=tolerance)
        self._lengths = lengths
        self._members = members
        self._family = family
        self.name = f"multi-window-{family}"

    def attach_cache(self, cache: object | None) -> "MultiWindowBank":
        """Share a window cache with the bank and every member.

        The members slide the same streams at different window
        lengths; a shared :class:`repro.runtime.WindowCache` derives
        each (stream, window length) artifact once across repeated
        fits and scores — and across any other detectors attached to
        the same cache.
        """
        super().attach_cache(cache)
        for member in self._members:
            member.attach_cache(cache)
        return self

    @property
    def member_window_lengths(self) -> tuple[int, ...]:
        """The bank's window lengths, ascending."""
        return self._lengths

    @property
    def members(self) -> tuple[AnomalyDetector, ...]:
        """The member detectors (fitted iff the bank is fitted)."""
        return tuple(self._members)

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        for member in self._members:
            member.fit_many(training_streams)

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        combined = np.zeros(
            window_count(len(test_stream), self._lengths[0]), dtype=np.float64
        )
        for member in self._members:
            if len(test_stream) < member.window_length:
                continue
            responses = member.score_stream(test_stream)
            np.maximum(
                combined[: len(responses)],
                responses,
                out=combined[: len(responses)],
            )
        return combined

    def member_responses(
        self, test_stream: Sequence[int] | np.ndarray
    ) -> dict[int, np.ndarray]:
        """Per-member response arrays, keyed by window length."""
        self._require_fitted()
        data = self._validated(test_stream)
        return {
            member.window_length: member.score_stream(data)
            for member in self._members
            if len(data) >= member.window_length
        }
