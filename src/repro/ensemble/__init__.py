"""Detector diversity: combination rules and coverage algebra.

The paper's punchline is that diverse detectors can be *combined*, but
the gains depend on how their coverages relate (Sections 7-8):

* Stide's coverage is a strict subset of the Markov detector's, so
  Stide can gate Markov's alarms to suppress false alarms without
  losing the detections Stide is capable of;
* Stide and L&B share their blind region, so combining them affords
  no improvement at all.

:mod:`~repro.ensemble.coverage` expresses such statements as set
algebra over performance-map cells; :mod:`~repro.ensemble.combiners`
implements the alarm-combination rules; and
:mod:`~repro.ensemble.diversity` quantifies how diverse two detectors'
behaviors actually are.
"""

from repro.ensemble.combiners import (
    CombinedAlarms,
    and_alarms,
    gated_alarms,
    majority_alarms,
    or_alarms,
)
from repro.ensemble.coverage import Coverage, coverage_gain
from repro.ensemble.diversity import coverage_diversity, response_disagreement
from repro.ensemble.multi_window import MultiWindowBank
from repro.ensemble.selection import (
    AnomalyProfile,
    SelectionAdvice,
    select_detectors,
)

__all__ = [
    "AnomalyProfile",
    "CombinedAlarms",
    "Coverage",
    "MultiWindowBank",
    "SelectionAdvice",
    "and_alarms",
    "coverage_diversity",
    "coverage_gain",
    "gated_alarms",
    "majority_alarms",
    "or_alarms",
    "response_disagreement",
    "select_detectors",
]
