"""Coverage algebra over performance-map cells.

A detector's *coverage* is the set of (anomaly size, detector window)
cells where it is capable.  The paper's diversity findings are set
statements over coverages:

* ``coverage(stide)`` is a strict subset of ``coverage(markov)`` — so
  every alarm Stide raises, Markov raises too, enabling suppression;
* ``coverage(stide) | coverage(lane-brodley) == coverage(stide)`` — the
  L&B detector adds nothing (shared blind region).

Coverages are only comparable over the same grid; mixing grids raises
:class:`~repro.exceptions.CoverageError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.performance_map import PerformanceMap
from repro.exceptions import CoverageError

Cell = tuple[int, int]


@dataclass(frozen=True)
class Coverage:
    """A set of capable cells over a fixed (AS x DW) grid.

    Attributes:
        cells: the capable grid positions.
        grid: every position of the evaluation grid (the domain).
        label: human-readable origin (detector or expression).
    """

    cells: frozenset[Cell]
    grid: frozenset[Cell]
    label: str

    def __post_init__(self) -> None:
        if not self.grid:
            raise CoverageError("coverage grid must be non-empty")
        if not self.cells <= self.grid:
            raise CoverageError("coverage cells must lie within the grid")

    @classmethod
    def from_performance_map(cls, performance_map: PerformanceMap) -> "Coverage":
        """Capable cells of a performance map, over the map's grid."""
        grid = frozenset(
            (anomaly_size, window_length)
            for anomaly_size in performance_map.anomaly_sizes
            for window_length in performance_map.window_lengths
        )
        return cls(
            cells=performance_map.capable_cells(),
            grid=grid,
            label=performance_map.detector_name,
        )

    def _check_same_grid(self, other: "Coverage") -> None:
        if self.grid != other.grid:
            raise CoverageError(
                f"coverages {self.label!r} and {other.label!r} were computed over "
                "different grids and cannot be combined"
            )

    def union(self, other: "Coverage") -> "Coverage":
        """Cells covered by either coverage (the OR combination)."""
        self._check_same_grid(other)
        return Coverage(
            cells=self.cells | other.cells,
            grid=self.grid,
            label=f"({self.label} | {other.label})",
        )

    def intersection(self, other: "Coverage") -> "Coverage":
        """Cells covered by both coverages (the AND combination)."""
        self._check_same_grid(other)
        return Coverage(
            cells=self.cells & other.cells,
            grid=self.grid,
            label=f"({self.label} & {other.label})",
        )

    def difference(self, other: "Coverage") -> "Coverage":
        """Cells covered here but not by ``other``."""
        self._check_same_grid(other)
        return Coverage(
            cells=self.cells - other.cells,
            grid=self.grid,
            label=f"({self.label} - {other.label})",
        )

    def __or__(self, other: "Coverage") -> "Coverage":
        return self.union(other)

    def __and__(self, other: "Coverage") -> "Coverage":
        return self.intersection(other)

    def __sub__(self, other: "Coverage") -> "Coverage":
        return self.difference(other)

    def is_subset_of(self, other: "Coverage") -> bool:
        """Whether every covered cell here is covered by ``other``."""
        self._check_same_grid(other)
        return self.cells <= other.cells

    def is_strict_subset_of(self, other: "Coverage") -> bool:
        """Subset with at least one cell missing."""
        return self.is_subset_of(other) and self.cells != other.cells

    @property
    def fraction(self) -> float:
        """Covered fraction of the grid."""
        return len(self.cells) / len(self.grid)

    def blind_region(self) -> frozenset[Cell]:
        """Grid cells *not* covered."""
        return self.grid - self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, cell: object) -> bool:
        return cell in self.cells

    def __repr__(self) -> str:
        return (
            f"Coverage({self.label!r}, {len(self.cells)}/{len(self.grid)} cells)"
        )


def coverage_gain(base: Coverage, addition: Coverage) -> frozenset[Cell]:
    """Cells gained by adding ``addition`` to ``base``.

    An empty result is the paper's "no detection advantage" verdict
    (Stide + L&B); a non-empty result quantifies where diversity pays.
    """
    return (base | addition).cells - base.cells
