"""repro — reproduction of Tan & Maxion (DSN 2005).

*The Effects of Algorithmic Diversity on Anomaly Detector Performance.*

The library implements the paper's four sequence-based anomaly
detectors (Stide, Markov, Lane & Brodley, neural network), its
synthetic evaluation corpus (minimal foreign sequences composed of rare
subsequences, boundary-clean injection), the incident-span scoring that
yields the blind/weak/capable performance maps of Figures 3-6, and the
coverage algebra behind its detector-diversity conclusions.

Quick start::

    from repro import run_paper_experiment, scaled_params

    result = run_paper_experiment(params=scaled_params())
    print(result.render_all())

See DESIGN.md for the complete system inventory and EXPERIMENTS.md for
paper-versus-measured results.
"""

from repro.datagen import (
    AnomalySynthesizer,
    EvaluationSuite,
    InjectedStream,
    InjectionPolicy,
    TrainingData,
    build_suite,
    generate_training_data,
    inject_anomaly,
)
from repro.detectors import (
    AnomalyDetector,
    LaneBrodleyDetector,
    MarkovDetector,
    NeuralDetector,
    StideDetector,
    TStideDetector,
    available_detectors,
    create_detector,
)
from repro.ensemble import Coverage, coverage_gain
from repro.evaluation import (
    PerformanceMap,
    ResponseClass,
    build_performance_map,
    render_performance_map,
    run_paper_experiment,
    score_injected,
)
from repro.exceptions import ReproError
from repro.params import PaperParams, paper_params, scaled_params
from repro.plans import ExperimentPlan, PlanRunner, load_plan
from repro.sequences import Alphabet, ForeignSequenceAnalyzer

__version__ = "1.0.0"

__all__ = [
    "Alphabet",
    "AnomalyDetector",
    "AnomalySynthesizer",
    "Coverage",
    "EvaluationSuite",
    "ExperimentPlan",
    "ForeignSequenceAnalyzer",
    "InjectedStream",
    "InjectionPolicy",
    "LaneBrodleyDetector",
    "MarkovDetector",
    "NeuralDetector",
    "PaperParams",
    "PerformanceMap",
    "PlanRunner",
    "ReproError",
    "ResponseClass",
    "StideDetector",
    "TStideDetector",
    "TrainingData",
    "available_detectors",
    "build_performance_map",
    "build_suite",
    "coverage_gain",
    "create_detector",
    "generate_training_data",
    "inject_anomaly",
    "load_plan",
    "paper_params",
    "render_performance_map",
    "run_paper_experiment",
    "scaled_params",
    "score_injected",
]
