"""Neural-network anomaly detector (Debar et al., 1992).

The detector employs the sequential ordering of events via a multilayer
feed-forward network that predicts the next categorical element from
the current context of ``DW - 1`` elements.  It uses no explicit
probabilistic concepts, but its function approximation mimics the
conditional probabilities of the Markov detector — exactly the paper's
characterization (Sections 5.2 and 7).

For a window ``w`` the response is ``1 - P_net(w[-1] | w[:-1])``.  The
network emits *graded* responses: a rare transition yields a response
close to, but not exactly, 1.  The detector therefore carries a nonzero
``response_tolerance`` (default 0.1): responses within the tolerance of
1 are treated as maximal by the evaluation harness, the thresholding
role the paper assigns to the NN's critical detection-threshold
parameter.  With a well-tuned network the resulting coverage mimics the
Markov detector (Figure 6); degrading the tuning (few hidden units, a
poor learning constant, too few epochs) weakens the anomaly signal and
opens blind/weak regions — the paper's reliability caveat, exercised by
the ablation bench E10.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.detectors.mlp import MlpConfig, NextSymbolMlp
from repro.exceptions import DetectorConfigurationError


class NeuralDetector(AnomalyDetector):
    """Feed-forward next-symbol predictor with graded responses.

    Args:
        window_length: the detector window ``DW`` (>= 2); the network
            conditions on the ``DW - 1`` preceding elements.
        alphabet_size: number of symbol codes.
        config: network hyperparameters (defaults are the well-tuned
            configuration used for Figure 6).
        response_tolerance: slack under which a response counts as
            maximal (the detection-threshold setting; default 0.1).
    """

    name = "neural-network"

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        config: MlpConfig | None = None,
        response_tolerance: float = 0.1,
    ) -> None:
        super().__init__(
            window_length, alphabet_size, response_tolerance=response_tolerance
        )
        self._config = config or MlpConfig()
        self._network: NextSymbolMlp | None = None
        self._final_loss: float | None = None

    @property
    def config(self) -> MlpConfig:
        """The network hyperparameters."""
        return self._config

    @property
    def final_training_loss(self) -> float:
        """Weighted cross-entropy at the end of training."""
        self._require_fitted()
        assert self._final_loss is not None
        return self._final_loss

    def _one_hot_contexts(self, contexts: np.ndarray) -> np.ndarray:
        """Encode (n, DW-1) integer contexts as flat one-hot vectors."""
        n, context_length = contexts.shape
        encoded = np.zeros((n, context_length * self.alphabet_size))
        offsets = np.arange(context_length) * self.alphabet_size
        flat_index = (contexts + offsets[None, :]).ravel()
        rows = np.repeat(np.arange(n), context_length)
        encoded[rows, flat_index] = 1.0
        return encoded

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        row_parts, count_parts = [], []
        for stream in training_streams:
            shared = self._shared_unique_counts(stream)
            if shared is not None:
                rows, counts = shared
            else:
                view = self._windows_view(stream)
                rows, counts = np.unique(view, axis=0, return_counts=True)
            row_parts.append(rows)
            count_parts.append(counts)
        if len(row_parts) == 1:
            # Distinct rows already arrive in lexicographic order —
            # exactly the sorted-tuple order the training set uses.
            windows, counts = row_parts[0], count_parts[0]
        else:
            stacked = np.concatenate(row_parts, axis=0)
            windows, inverse = np.unique(stacked, axis=0, return_inverse=True)
            counts = np.zeros(len(windows), dtype=np.int64)
            np.add.at(counts, inverse.reshape(-1), np.concatenate(count_parts))
        if not len(windows):
            raise DetectorConfigurationError("no training windows available")
        windows = windows.astype(np.int64, copy=False)
        weights = counts.astype(float)
        contexts = windows[:, :-1]
        targets = windows[:, -1]
        network = NextSymbolMlp(
            input_dim=(self.window_length - 1) * self.alphabet_size,
            output_dim=self.alphabet_size,
            config=self._config,
        )
        self._final_loss = network.train(
            self._one_hot_contexts(contexts), targets, weights
        )
        self._network = network

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        view = self._windows_view(test_stream)
        return self._score_windows(view)

    def _score_windows(self, windows: np.ndarray) -> np.ndarray:
        assert self._network is not None
        # Deduplicate windows: the network only needs one forward pass
        # per distinct window.
        unique_rows, inverse = np.unique(windows, axis=0, return_inverse=True)
        probabilities = self._network.predict_proba(
            self._one_hot_contexts(unique_rows[:, :-1])
        )
        predicted = probabilities[np.arange(len(unique_rows)), unique_rows[:, -1]]
        responses = np.clip(1.0 - predicted, 0.0, 1.0)
        return responses[inverse.reshape(-1)]
