"""Neural-network anomaly detector (Debar et al., 1992).

The detector employs the sequential ordering of events via a multilayer
feed-forward network that predicts the next categorical element from
the current context of ``DW - 1`` elements.  It uses no explicit
probabilistic concepts, but its function approximation mimics the
conditional probabilities of the Markov detector — exactly the paper's
characterization (Sections 5.2 and 7).

For a window ``w`` the response is ``1 - P_net(w[-1] | w[:-1])``.  The
network emits *graded* responses: a rare transition yields a response
close to, but not exactly, 1.  The detector therefore carries a nonzero
``response_tolerance`` (default 0.1): responses within the tolerance of
1 are treated as maximal by the evaluation harness, the thresholding
role the paper assigns to the NN's critical detection-threshold
parameter.  With a well-tuned network the resulting coverage mimics the
Markov detector (Figure 6); degrading the tuning (few hidden units, a
poor learning constant, too few epochs) weakens the anomaly signal and
opens blind/weak regions — the paper's reliability caveat, exercised by
the ablation bench E10.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.detectors.mlp import MlpConfig, NextSymbolMlp
from repro.exceptions import DetectorConfigurationError
from repro.runtime.fitindex import FitRecord
from repro.runtime.store import fit_key


class NeuralDetector(AnomalyDetector):
    """Feed-forward next-symbol predictor with graded responses.

    Args:
        window_length: the detector window ``DW`` (>= 2); the network
            conditions on the ``DW - 1`` preceding elements.
        alphabet_size: number of symbol codes.
        config: network hyperparameters (defaults are the well-tuned
            configuration used for Figure 6).
        response_tolerance: slack under which a response counts as
            maximal (the detection-threshold setting; default 0.1).
    """

    name = "neural-network"
    _warm_capable = True

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        config: MlpConfig | None = None,
        response_tolerance: float = 0.1,
    ) -> None:
        super().__init__(
            window_length, alphabet_size, response_tolerance=response_tolerance
        )
        self._config = config or MlpConfig()
        self._network: NextSymbolMlp | None = None
        self._final_loss: float | None = None

    @property
    def config(self) -> MlpConfig:
        """The network hyperparameters."""
        return self._config

    @property
    def final_training_loss(self) -> float:
        """Weighted cross-entropy at the end of training."""
        self._require_fitted()
        assert self._final_loss is not None
        return self._final_loss

    def _one_hot_contexts(self, contexts: np.ndarray) -> np.ndarray:
        """Encode (n, DW-1) integer contexts as flat one-hot vectors."""
        n, context_length = contexts.shape
        encoded = np.zeros((n, context_length * self.alphabet_size))
        offsets = np.arange(context_length) * self.alphabet_size
        flat_index = (contexts + offsets[None, :]).ravel()
        rows = np.repeat(np.arange(n), context_length)
        encoded[rows, flat_index] = 1.0
        return encoded

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        row_parts, count_parts = [], []
        for stream in training_streams:
            shared = self._shared_unique_counts(stream)
            if shared is not None:
                rows, counts = shared
            else:
                view = self._windows_view(stream)
                rows, counts = np.unique(view, axis=0, return_counts=True)
            row_parts.append(rows)
            count_parts.append(counts)
        if len(row_parts) == 1:
            # Distinct rows already arrive in lexicographic order —
            # exactly the sorted-tuple order the training set uses.
            windows, counts = row_parts[0], count_parts[0]
        else:
            stacked = np.concatenate(row_parts, axis=0)
            windows, inverse = np.unique(stacked, axis=0, return_inverse=True)
            counts = np.zeros(len(windows), dtype=np.int64)
            np.add.at(counts, inverse.reshape(-1), np.concatenate(count_parts))
        if not len(windows):
            raise DetectorConfigurationError("no training windows available")
        windows = windows.astype(np.int64, copy=False)
        weights = counts.astype(float)
        contexts = windows[:, :-1]
        targets = windows[:, -1]
        encoded = self._one_hot_contexts(contexts)
        network = self._warm_fit(encoded, targets, weights)
        if network is None:
            network = NextSymbolMlp(
                input_dim=(self.window_length - 1) * self.alphabet_size,
                output_dim=self.alphabet_size,
                config=self._config,
            )
            self._final_loss = network.train(encoded, targets, weights)
        self._network = network
        self._offer_donor()

    # -- warm-start machinery --------------------------------------------------

    def _extra_fingerprint(self) -> str:
        c = self._config
        return (
            f"hidden={c.hidden_units};lr={c.learning_rate!r};"
            f"mom={c.momentum!r};epochs={c.epochs};seed={c.seed};"
            f"init={c.init_scale!r}"
        )

    def _fit_state(self) -> dict[str, np.ndarray] | None:
        if self._network is None or self._final_loss is None:
            return None
        state = self._network.export_weights()
        state["final_loss"] = np.asarray(self._final_loss, dtype=np.float64)
        return state

    def _load_fit_state(self, state: dict[str, np.ndarray]) -> bool:
        if "final_loss" not in state:
            return False
        network = NextSymbolMlp(
            input_dim=(self.window_length - 1) * self.alphabet_size,
            output_dim=self.alphabet_size,
            config=self._config,
        )
        if not network.load_weights(state):
            return False
        self._network = network
        self._final_loss = float(np.asarray(state["final_loss"]))
        return True

    def _adapt_donor(
        self, state: dict[str, np.ndarray], donor_window: int
    ) -> dict[str, np.ndarray] | None:
        """Reshape donor first-layer weights from an adjacent DW.

        Context one-hot layout is per-position blocks of size ``AS``,
        position ``DW - 2`` adjacent to the predicted symbol.  Blocks
        are aligned by distance to the target: growing the window
        prepends a zero block for the new most-distant position, so
        the adapted network initially computes exactly the donor's
        function of the shared context suffix; shrinking drops the
        donor's most-distant block.
        """
        hidden = self._config.hidden_units
        target_rows = (self.window_length - 1) * self.alphabet_size
        try:
            w1 = np.asarray(state["w1"], dtype=np.float64)
            b1 = np.asarray(state["b1"], dtype=np.float64)
            w2 = np.asarray(state["w2"], dtype=np.float64)
            b2 = np.asarray(state["b2"], dtype=np.float64)
        except (KeyError, TypeError, ValueError):
            return None
        if w1.ndim != 2 or w1.shape != ((donor_window - 1) * self.alphabet_size, hidden):
            return None
        if w2.shape != (hidden, self.alphabet_size):
            return None
        adapted = np.zeros((target_rows, hidden))
        keep = min(len(w1), target_rows)
        adapted[target_rows - keep :] = w1[len(w1) - keep :]
        return {"w1": adapted, "b1": b1, "w2": w2, "b2": b2}

    def _find_donor(self) -> tuple[int, dict[str, np.ndarray], float] | None:
        """An adjacent-DW donor: in-process registry first, then store."""
        registry = self._warm_registry
        digest = self._training_digest
        if digest is None:
            return None
        if registry is not None:
            held = registry.donor(
                digest, self.family_fingerprint(), self.window_length
            )
            if held is not None:
                return held
        store = self._store
        if store is None:
            return None
        for neighbor in (self.window_length - 1, self.window_length + 1):
            if neighbor < 2:
                continue
            key = fit_key(digest, self.config_fingerprint(window_length=neighbor))
            # Donor-kind lookups count under separate telemetry names
            # (store.donor.*) so store.hit keeps mirroring fit traffic.
            state = store.get(key, kind="donor")  # type: ignore[attr-defined]
            if state is not None and "final_loss" in state:
                return neighbor, state, float(np.asarray(state["final_loss"]))
        return None

    def _warm_fit(
        self, encoded: np.ndarray, targets: np.ndarray, weights: np.ndarray
    ) -> NextSymbolMlp | None:
        """A gated warm-started network, or ``None`` for the cold path.

        Reports through ``self._fit_hint``: a gate rejection records
        ``warm_disabled`` (surfaced by ``RunReport``) and returns
        ``None`` so the caller refits cold with the full budget.
        """
        policy = self._warm_policy
        if policy is None:
            return None
        donor = self._find_donor()
        if donor is None:
            return None
        donor_window, state, donor_loss = donor
        adapted = self._adapt_donor(state, donor_window)
        if adapted is None:
            return None
        network = NextSymbolMlp(
            input_dim=(self.window_length - 1) * self.alphabet_size,
            output_dim=self.alphabet_size,
            config=self._config,
        )
        if not network.load_weights(adapted):
            return None
        warm_loss = network.train(
            encoded, targets, weights,
            epochs=policy.warm_epochs(self._config.epochs),
        )
        if warm_loss > donor_loss + policy.loss_tolerance:
            self._fit_hint = FitRecord(
                origin="computed",
                warm_disabled=(
                    f"warm loss {warm_loss:.4f} exceeded donor "
                    f"(DW={donor_window}) loss {donor_loss:.4f} "
                    f"+ tolerance {policy.loss_tolerance}"
                ),
            )
            return None
        self._final_loss = warm_loss
        self._fit_hint = FitRecord(origin="warm", warm_donor_window=donor_window)
        return network

    def _offer_donor(self) -> None:
        """Publish this fit to the in-process warm-start registry."""
        registry = self._warm_registry
        digest = self._training_digest
        if registry is None or digest is None or self._network is None:
            return
        registry.publish(
            digest,
            self.family_fingerprint(),
            self.window_length,
            self._network.export_weights(),
            float(self._final_loss),
        )

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        view = self._windows_view(test_stream)
        return self._score_windows(view)

    def _score_windows(self, windows: np.ndarray) -> np.ndarray:
        assert self._network is not None
        # Deduplicate windows: the network only needs one forward pass
        # per distinct window.
        unique_rows, inverse = np.unique(windows, axis=0, return_inverse=True)
        probabilities = self._network.predict_proba(
            self._one_hot_contexts(unique_rows[:, :-1])
        )
        predicted = probabilities[np.arange(len(unique_rows)), unique_rows[:, -1]]
        responses = np.clip(1.0 - predicted, 0.0, 1.0)
        return responses[inverse.reshape(-1)]
