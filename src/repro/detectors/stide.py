"""Stide: sequence time-delay embedding (Forrest et al., 1996).

Stide is completely dependent upon the sequential ordering of
categorical elements.  Training slides a window of length ``DW`` over
the training data and stores every distinct window in a *normal
database*.  At test time each window either matches a database entry
(response 0, normal) or does not (response 1, anomalous).  No
frequencies or probabilities are involved, which is precisely why Stide
is blind to rare-but-present sequences and to any minimal foreign
sequence shorter than its window (Figure 5 of the paper).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.exceptions import DetectorConfigurationError
from repro.runtime import telemetry
from repro.runtime.kernels import merge_sorted_unique, sorted_membership
from repro.sequences.windows import pack_windows, packable as _packable

__all__ = ["StideDetector", "sorted_membership"]


class StideDetector(AnomalyDetector):
    """Exact-match sequence detector with a binary response.

    Args:
        window_length: the detector window ``DW`` (>= 2).
        alphabet_size: number of symbol codes.
    """

    name = "stide"

    def __init__(self, window_length: int, alphabet_size: int) -> None:
        super().__init__(window_length, alphabet_size, response_tolerance=0.0)
        self._packed_db: np.ndarray | None = None
        self._tuple_db: set[tuple[int, ...]] | None = None

    @property
    def database_size(self) -> int:
        """Number of distinct normal windows stored."""
        self._require_fitted()
        if self._packed_db is not None:
            return int(len(self._packed_db))
        assert self._tuple_db is not None
        return len(self._tuple_db)

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        if _packable(self.alphabet_size, self.window_length):
            parts = []
            for stream in training_streams:
                cached = self._packed_database(stream)
                if cached is not None:
                    # One shared table per (stream, DW): the same array
                    # the automaton ladder bisects (lexicographic rows
                    # pack sorted — identical to np.unique(packed)).
                    parts.append(cached)
                else:
                    parts.append(np.unique(self._packed_view(stream)))
            self._packed_db = (
                parts[0]
                if len(parts) == 1
                else np.unique(np.concatenate(parts))
            )
            self._tuple_db = None
        else:
            database: set[tuple[int, ...]] = set()
            for stream in training_streams:
                view = self._windows_view(stream)
                # One C pass over the batch instead of per-element int().
                database.update(map(tuple, view.tolist()))
            self._tuple_db = database
            self._packed_db = None

    @property
    def supports_delta_fit(self) -> bool:
        return self.is_fitted and self._packed_db is not None

    def update_batch(
        self,
        new_events: Sequence[int] | np.ndarray,
        prior_tail: Sequence[int] | np.ndarray,
    ) -> "StideDetector":
        """Merge the appended windows into the packed normal database.

        The new distinct windows are exactly the distinct ``DW``-grams
        of ``prior_tail ++ new_events``; packing preserves
        lexicographic order, so one ``np.unique`` over the packed
        batch plus a bisection splice into the sorted database
        (:func:`~repro.runtime.kernels.merge_sorted_unique`)
        reproduces a cold refit's ``np.unique`` over the full stream
        bit for bit.  A batch with no unseen windows — the saturated
        steady state — leaves the database array untouched.
        """
        combined = self._delta_combined(new_events, prior_tail)
        if self._packed_db is None:
            raise DetectorConfigurationError(
                "stide delta fits require the packed database (this fit "
                "exceeded the 63-bit packing budget)"
            )
        delta = np.unique(self._delta_packed(combined))
        self._packed_db = merge_sorted_unique(self._packed_db, delta)
        self._note_delta_update()
        return self

    def _fit_state(self) -> dict[str, np.ndarray] | None:
        if self._packed_db is not None:
            return {"packed_db": self._packed_db}
        if self._tuple_db is not None:
            rows = np.asarray(sorted(self._tuple_db), dtype=np.int64)
            return {"rows_db": rows.reshape(len(self._tuple_db), self.window_length)}
        return None

    def _load_fit_state(self, state: dict[str, np.ndarray]) -> bool:
        if "packed_db" in state:
            packed = np.asarray(state["packed_db"])
            if packed.ndim != 1 or not np.issubdtype(packed.dtype, np.integer):
                return False
            self._packed_db = packed.astype(np.int64, copy=False)
            self._tuple_db = None
            return True
        if "rows_db" in state:
            rows = np.asarray(state["rows_db"])
            if rows.ndim != 2 or rows.shape[1] != self.window_length:
                return False
            self._tuple_db = set(map(tuple, rows.tolist()))
            self._packed_db = None
            return True
        return False

    def _known(self, view: np.ndarray, packed: np.ndarray | None) -> np.ndarray:
        """Database membership for each window row."""
        if self._packed_db is not None:
            assert packed is not None
            return sorted_membership(packed, self._packed_db)
        assert self._tuple_db is not None
        return np.fromiter(
            (key in self._tuple_db for key in map(tuple, view.tolist())),
            dtype=bool,
            count=len(view),
        )

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        count = len(test_stream) - self.window_length + 1
        telemetry.count("kernel.membership.windows", count)
        telemetry.count("kernel.membership.cells")
        if self._packed_db is not None:
            context = self._membership_context(test_stream)
            if context is not None:
                # Automaton tier: known exactly when the match length
                # at the window's start reaches DW (prefix closure).
                profile, _codes = context
                telemetry.count("kernel.automaton.windows", count)
                telemetry.count("kernel.automaton.cells")
                return (profile[:count] < self.window_length).astype(np.float64)
            packed = self._packed_view(test_stream)
            known = sorted_membership(packed, self._packed_db)
        else:
            view = self._windows_view(test_stream)
            known = self._known(view, None)
        telemetry.count("kernel.bisect.windows", count)
        telemetry.count("kernel.bisect.cells")
        return (~known).astype(np.float64)

    def _score_windows(self, windows: np.ndarray) -> np.ndarray:
        packed = (
            pack_windows(windows, self.alphabet_size)
            if self._packed_db is not None
            else None
        )
        return (~self._known(windows, packed)).astype(np.float64)

    def score_packed(self, packed: np.ndarray) -> np.ndarray:
        """Responses for pre-packed window keys (fused-batch entry).

        The serving batcher packs many tenants' test streams in one
        pass (:class:`~repro.runtime.automaton.BatchStreamCodes`) and
        hands each detector its own key slice; this skips re-sliding
        and re-packing while running the identical bisection the
        bisect tier of ``_score`` runs — bit-identical responses.

        Raises:
            NotFittedError: if the detector is unfitted.
            DetectorConfigurationError: if this fit has no packed
                database (it exceeded the 63-bit packing budget).
        """
        self._require_fitted()
        if self._packed_db is None:
            raise DetectorConfigurationError(
                "score_packed requires the packed database (this fit "
                "exceeded the 63-bit packing budget)"
            )
        telemetry.count("kernel.membership.windows", len(packed))
        telemetry.count("kernel.membership.cells")
        telemetry.count("kernel.bisect.windows", len(packed))
        telemetry.count("kernel.bisect.cells")
        return (~sorted_membership(packed, self._packed_db)).astype(np.float64)

    def contains(self, window: tuple[int, ...]) -> bool:
        """Whether ``window`` is in the normal database."""
        return self.score_window(window) == 0.0
