"""Stide: sequence time-delay embedding (Forrest et al., 1996).

Stide is completely dependent upon the sequential ordering of
categorical elements.  Training slides a window of length ``DW`` over
the training data and stores every distinct window in a *normal
database*.  At test time each window either matches a database entry
(response 0, normal) or does not (response 1, anomalous).  No
frequencies or probabilities are involved, which is precisely why Stide
is blind to rare-but-present sequences and to any minimal foreign
sequence shorter than its window (Figure 5 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.sequences.windows import pack_windows, windows_array


def _packable(alphabet_size: int, window_length: int) -> bool:
    """Whether windows fit in 63-bit packed integers."""
    return window_length * np.log2(alphabet_size) < 63


class StideDetector(AnomalyDetector):
    """Exact-match sequence detector with a binary response.

    Args:
        window_length: the detector window ``DW`` (>= 2).
        alphabet_size: number of symbol codes.
    """

    name = "stide"

    def __init__(self, window_length: int, alphabet_size: int) -> None:
        super().__init__(window_length, alphabet_size, response_tolerance=0.0)
        self._packed_db: np.ndarray | None = None
        self._tuple_db: set[tuple[int, ...]] | None = None

    @property
    def database_size(self) -> int:
        """Number of distinct normal windows stored."""
        self._require_fitted()
        if self._packed_db is not None:
            return int(len(self._packed_db))
        assert self._tuple_db is not None
        return len(self._tuple_db)

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        if _packable(self.alphabet_size, self.window_length):
            parts = [
                pack_windows(
                    windows_array(stream, self.window_length), self.alphabet_size
                )
                for stream in training_streams
            ]
            self._packed_db = np.unique(np.concatenate(parts))
            self._tuple_db = None
        else:
            database: set[tuple[int, ...]] = set()
            for stream in training_streams:
                view = windows_array(stream, self.window_length)
                database.update(tuple(int(c) for c in row) for row in view)
            self._tuple_db = database
            self._packed_db = None

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        view = windows_array(test_stream, self.window_length)
        if self._packed_db is not None:
            packed = pack_windows(view, self.alphabet_size)
            known = np.isin(packed, self._packed_db)
        else:
            assert self._tuple_db is not None
            known = np.fromiter(
                (tuple(int(c) for c in row) in self._tuple_db for row in view),
                dtype=bool,
                count=len(view),
            )
        return (~known).astype(np.float64)

    def contains(self, window: tuple[int, ...]) -> bool:
        """Whether ``window`` is in the normal database."""
        return self.score_window(window) == 0.0
