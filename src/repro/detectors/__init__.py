"""The four sequence-based anomaly detectors of Tan & Maxion, plus extensions.

All detectors share the generic three-component anatomy of Section 4.2:

1. a model of normal behavior, acquired by sliding a fixed-length
   *detector window* (``DW``) over the training data;
2. a similarity metric measuring deviation from the model — the one
   component in which the four detectors are *diverse*;
3. a thresholding mechanism turning graded responses into decisions
   (see :mod:`repro.detectors.threshold`).

Responses are normalized to ``[0, 1]`` with 0 meaning completely normal
and 1 maximally anomalous, exactly as in the paper's scoring.

Detectors:

* :class:`~repro.detectors.stide.StideDetector` — exact window match
  against the normal database (Forrest et al.);
* :class:`~repro.detectors.tstide.TStideDetector` — Stide extended with
  the rare-window criterion (Warrender et al.'s t-stide);
* :class:`~repro.detectors.markov.MarkovDetector` — conditional
  transition probabilities (Jha et al. / Teng et al.);
* :class:`~repro.detectors.lane_brodley.LaneBrodleyDetector` —
  adjacency-weighted positional similarity (Lane & Brodley);
* :class:`~repro.detectors.neural.NeuralDetector` — multilayer
  feed-forward next-symbol predictor (Debar et al.).
"""

from repro.detectors.base import AnomalyDetector, FittedState
from repro.detectors.lane_brodley import LaneBrodleyDetector
from repro.detectors.hamming import HammingDetector
from repro.detectors.histogram import HistogramDetector
from repro.detectors.lfc import locality_frame_counts
from repro.detectors.markov import MarkovDetector
from repro.detectors.markov_chain import MarkovChainDetector
from repro.detectors.neural import NeuralDetector
from repro.detectors.registry import available_detectors, create_detector
from repro.detectors.stide import StideDetector
from repro.detectors.threshold import FixedThreshold, MaximalResponseThreshold
from repro.detectors.tstide import TStideDetector

__all__ = [
    "AnomalyDetector",
    "FittedState",
    "FixedThreshold",
    "HammingDetector",
    "HistogramDetector",
    "LaneBrodleyDetector",
    "MarkovChainDetector",
    "MarkovDetector",
    "MaximalResponseThreshold",
    "NeuralDetector",
    "StideDetector",
    "TStideDetector",
    "available_detectors",
    "create_detector",
    "locality_frame_counts",
]
