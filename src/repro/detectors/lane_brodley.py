"""Lane & Brodley adjacency-weighted similarity detector (AAAI-97).

The L&B similarity between two equal-length sequences compares elements
at the same positions.  A mismatch contributes 0; a match contributes a
weight that grows with the length of the current run of adjacent
matches:

    w_i = 0            if x_i != y_i
    w_i = w_{i-1} + 1  if x_i == y_i        (w_{-1} = 0)

    Sim(x, y) = sum_i w_i

Identical sequences score ``DW (DW+1) / 2`` (15 for ``DW = 5``); a
single mismatch at the final position scores ``DW (DW-1) / 2`` (10 for
``DW = 5``) — the two worked examples of the paper's Figure 7.

A test window's similarity to *normal* is its maximum similarity over
the normal database; the response is ``1 - Sim / Sim_max``.  The
maximal response 1 requires a window matching **no** database sequence
at **any** position — essentially impossible when the database covers
every phase of the training cycle, which is why the paper finds L&B
blind across the entire performance map (Figure 3) and biased in favor
of foreign sequences whose single mismatching element sits at the
window edge (Section 7).
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.runtime.kernels import lb_batch_similarity


def lb_similarity(first: np.ndarray | list[int], second: np.ndarray | list[int]) -> int:
    """The L&B similarity of two equal-length sequences (Figure 7).

    The run-weight recurrence ``w_i = (w_{i-1} + 1) [x_i == y_i]`` is
    evaluated in closed form: at a matching position ``i`` the weight
    equals the distance to the most recent mismatch, so a cumulative
    maximum over mismatch positions replaces the element loop.

    The paper's two Figure 7 worked examples, at ``DW = 5``:
    identical sequences score ``5 * 6 / 2``,

    >>> lb_similarity([0, 1, 2, 3, 4], [0, 1, 2, 3, 4])
    15

    and a single mismatch at the final position scores ``5 * 4 / 2``:

    >>> lb_similarity([0, 1, 2, 3, 4], [0, 1, 2, 3, 9])
    10

    Raises:
        ValueError: if the sequences differ in length.
    """
    x = np.asarray(first)
    y = np.asarray(second)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(
            f"sequences must be 1-D and equal length, got {x.shape} vs {y.shape}"
        )
    matches = x == y
    positions = np.arange(len(matches))
    last_mismatch = np.maximum.accumulate(np.where(matches, -1, positions))
    weights = np.where(matches, positions - last_mismatch, 0)
    return int(weights.sum())


def lb_max_similarity(window_length: int) -> int:
    """Similarity of identical sequences: ``DW (DW+1) / 2``."""
    return window_length * (window_length + 1) // 2


class LaneBrodleyDetector(AnomalyDetector):
    """Maximum adjacency-weighted similarity against the normal database.

    Args:
        window_length: the detector window ``DW`` (>= 2).
        alphabet_size: number of symbol codes.
        chunk_elements: soft bound on the ``windows x database x DW``
            comparison tensor per scoring chunk (memory control).
    """

    name = "lane-brodley"

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        chunk_elements: int = 8_000_000,
    ) -> None:
        super().__init__(window_length, alphabet_size, response_tolerance=0.0)
        self._chunk_elements = max(chunk_elements, window_length)
        self._database: np.ndarray | None = None

    @property
    def database_size(self) -> int:
        """Number of distinct normal windows stored."""
        self._require_fitted()
        assert self._database is not None
        return int(len(self._database))

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        parts, all_shared = [], True
        for stream in training_streams:
            shared = self._shared_unique_counts(stream)
            if shared is not None:
                parts.append(shared[0])
            else:
                all_shared = False
                parts.append(self._windows_view(stream))
        if all_shared and len(parts) == 1:
            # Already the distinct rows in lexicographic order.
            self._database = parts[0]
        else:
            self._database = np.unique(np.concatenate(parts, axis=0), axis=0)

    def _fit_state(self) -> dict[str, np.ndarray] | None:
        if self._database is None:
            return None
        return {"database": np.ascontiguousarray(self._database)}

    def _load_fit_state(self, state: dict[str, np.ndarray]) -> bool:
        database = np.asarray(state.get("database"))
        if database.ndim != 2 or database.shape[1] != self.window_length:
            return False
        self._database = database.astype(np.int64, copy=False)
        return True

    def similarity_to_normal(self, window: tuple[int, ...] | np.ndarray) -> int:
        """Maximum L&B similarity of ``window`` over the normal database."""
        self._require_fitted()
        assert self._database is not None
        row = np.asarray(window).reshape(1, -1)
        return int(self._chunk_similarities(row)[0])

    def _chunk_similarities(self, windows: np.ndarray) -> np.ndarray:
        """Best similarity against the database for each window row.

        Delegates to the shared
        :func:`~repro.runtime.kernels.lb_batch_similarity` kernel.
        """
        assert self._database is not None
        return lb_batch_similarity(windows, self._database, self._chunk_elements)

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        view = self._windows_view(test_stream)
        best = self._chunk_similarities(view)
        return 1.0 - best / lb_max_similarity(self.window_length)

    def _score_windows(self, windows: np.ndarray) -> np.ndarray:
        best = self._chunk_similarities(windows)
        return 1.0 - best / lb_max_similarity(self.window_length)
