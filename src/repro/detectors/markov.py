"""Markov conditional-probability detector (Jha et al. / Teng et al.).

For every window of size ``DW`` from the test data the detector
calculates the probability that the window's final element follows its
preceding ``DW - 1`` elements, estimated from training counts:

    P(x | ctx) = count(ctx + x) / count(ctx)

and reports ``1 - P`` — a score between 0 (very probable, normal) and 1
(improbable, anomalous).  A window of 2 therefore conditions on a
single element, which is why the paper's Markov results start at
``DW = 2`` (the Markov assumption).

Two estimation details govern coverage, and both are exposed:

* ``rare_floor`` — transitions whose joint ``DW``-gram relative
  frequency in training falls below this bound are assigned
  probability 0, i.e. the maximal response.  The paper's Figure 4
  (full-space coverage, including ``DW < AS``) and its statement that
  the Markov detector "will detect foreign sequences as well as a
  variety of rare sequences" correspond to flooring at the corpus
  rarity threshold (0.5%).  Setting ``rare_floor=0`` gives the
  unfloored estimator, under which the detector's maximal-response
  coverage collapses to roughly Stide's (ablation E11 in DESIGN.md).
* ``unseen_context_response`` — the response emitted when the context
  itself never occurred in training (the conditional is undefined).
  A foreign context is itself maximally anomalous, so the default is 1.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.exceptions import DetectorConfigurationError


class MarkovDetector(AnomalyDetector):
    """Conditional-probability detector over fixed-length windows.

    Args:
        window_length: the detector window ``DW`` (>= 2); the context
            length is ``DW - 1``.
        alphabet_size: number of symbol codes.
        rare_floor: joint-frequency bound below which a transition is
            treated as probability 0 (default 0.005, the paper's rarity
            threshold).  Use 0.0 for the exact empirical estimator.
        unseen_context_response: response for windows whose context is
            foreign to training (default 1.0).
    """

    name = "markov"

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        rare_floor: float = 0.005,
        unseen_context_response: float = 1.0,
    ) -> None:
        super().__init__(window_length, alphabet_size, response_tolerance=0.0)
        if not 0.0 <= rare_floor < 1.0:
            raise DetectorConfigurationError(
                f"rare_floor must lie in [0, 1), got {rare_floor}"
            )
        if not 0.0 <= unseen_context_response <= 1.0:
            raise DetectorConfigurationError(
                "unseen_context_response must lie in [0, 1], got "
                f"{unseen_context_response}"
            )
        self._rare_floor = float(rare_floor)
        self._unseen_context_response = float(unseen_context_response)
        self._window_counts: dict[tuple[int, ...], int] = {}
        self._context_counts: dict[tuple[int, ...], int] = {}
        self._total_windows = 0

    @property
    def rare_floor(self) -> float:
        """Joint-frequency bound for the probability floor."""
        return self._rare_floor

    def _count(self, streams: list[np.ndarray], length: int) -> dict[tuple[int, ...], int]:
        counts: dict[tuple[int, ...], int] = {}
        for stream in streams:
            if len(stream) < length:
                continue
            shared = self._shared_unique_counts(stream, length)
            if shared is not None:
                rows, row_counts = shared
            else:
                view = self._windows_view(stream, length)
                rows, row_counts = np.unique(view, axis=0, return_counts=True)
            for row, n in zip(rows, row_counts):
                key = tuple(int(c) for c in row)
                counts[key] = counts.get(key, 0) + int(n)
        return counts

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        self._window_counts = self._count(training_streams, self.window_length)
        self._context_counts = self._count(training_streams, self.window_length - 1)
        self._total_windows = sum(self._window_counts.values())

    def transition_probability(self, window: tuple[int, ...]) -> float:
        """The floored estimate of P(last element | preceding context).

        Raises:
            NotFittedError: if the detector is unfitted.
        """
        self._require_fitted()
        key = tuple(int(c) for c in window)
        joint = self._window_counts.get(key, 0)
        if joint == 0:
            return 0.0
        if self._rare_floor > 0.0 and joint < self._rare_floor * self._total_windows:
            return 0.0
        context = self._context_counts.get(key[:-1], 0)
        if context == 0:
            return 0.0
        return joint / context

    def _window_response(self, key: tuple[int, ...]) -> float:
        """The response for one window key (the scoring rule, unmemoized)."""
        floor_count = self._rare_floor * self._total_windows
        joint = self._window_counts.get(key, 0)
        if joint == 0 or (self._rare_floor > 0.0 and joint < floor_count):
            context_count = self._context_counts.get(key[:-1], 0)
            if context_count == 0 and joint == 0:
                response = self._unseen_context_response
            else:
                response = 1.0
        else:
            context_count = self._context_counts.get(key[:-1], 0)
            if context_count == 0:
                response = 1.0
            else:
                response = 1.0 - joint / context_count
        return min(1.0, max(0.0, response))

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        view = self._windows_view(test_stream)
        responses = np.empty(len(view), dtype=np.float64)
        cache: dict[int, float] = {}
        packable = self.window_length * np.log2(self.alphabet_size) < 63
        packed = self._packed_view(test_stream) if packable else None
        for i, row in enumerate(view):
            if packed is not None:
                token = int(packed[i])
                cached = cache.get(token)
                if cached is not None:
                    responses[i] = cached
                    continue
            response = self._window_response(tuple(int(c) for c in row))
            responses[i] = response
            if packed is not None:
                cache[int(packed[i])] = response
        return responses

    def _score_windows(self, windows: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (
                self._window_response(tuple(int(c) for c in row))
                for row in windows
            ),
            dtype=np.float64,
            count=len(windows),
        )
