"""Markov conditional-probability detector (Jha et al. / Teng et al.).

For every window of size ``DW`` from the test data the detector
calculates the probability that the window's final element follows its
preceding ``DW - 1`` elements, estimated from training counts:

    P(x | ctx) = count(ctx + x) / count(ctx)

and reports ``1 - P`` — a score between 0 (very probable, normal) and 1
(improbable, anomalous).  A window of 2 therefore conditions on a
single element, which is why the paper's Markov results start at
``DW = 2`` (the Markov assumption).

Two estimation details govern coverage, and both are exposed:

* ``rare_floor`` — transitions whose joint ``DW``-gram relative
  frequency in training falls below this bound are assigned
  probability 0, i.e. the maximal response.  The paper's Figure 4
  (full-space coverage, including ``DW < AS``) and its statement that
  the Markov detector "will detect foreign sequences as well as a
  variety of rare sequences" correspond to flooring at the corpus
  rarity threshold (0.5%).  Setting ``rare_floor=0`` gives the
  unfloored estimator, under which the detector's maximal-response
  coverage collapses to roughly Stide's (ablation E11 in DESIGN.md).
* ``unseen_context_response`` — the response emitted when the context
  itself never occurred in training (the conditional is undefined).
  A foreign context is itself maximally anomalous, so the default is 1.

**Count representation.**  On the packable grid (every window fits a
63-bit packed integer) the joint and context counts are sorted packed
code/count array pairs, and scoring is one
:func:`~repro.runtime.kernels.count_lookup` bisection per table plus
the vectorized :func:`~repro.runtime.kernels.markov_batch_response`
rule — no per-window Python at all.  Off the packable grid the counts
fall back to tuple-keyed dictionaries and the scalar
:meth:`~MarkovDetector._window_response` rule, with window keys built
via ``ndarray.tolist`` (one C pass) rather than per-element ``int()``
conversion.  Both paths implement the identical response function.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.exceptions import DetectorConfigurationError
from repro.runtime.kernels import (
    count_lookup,
    markov_batch_response,
    merge_sorted_counts,
)
from repro.sequences.windows import (
    pack_window,
    pack_windows,
    packable,
    symbol_bits,
)


class MarkovDetector(AnomalyDetector):
    """Conditional-probability detector over fixed-length windows.

    Args:
        window_length: the detector window ``DW`` (>= 2); the context
            length is ``DW - 1``.
        alphabet_size: number of symbol codes.
        rare_floor: joint-frequency bound below which a transition is
            treated as probability 0 (default 0.005, the paper's rarity
            threshold).  Use 0.0 for the exact empirical estimator.
        unseen_context_response: response for windows whose context is
            foreign to training (default 1.0).
    """

    name = "markov"

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        rare_floor: float = 0.005,
        unseen_context_response: float = 1.0,
    ) -> None:
        super().__init__(window_length, alphabet_size, response_tolerance=0.0)
        if not 0.0 <= rare_floor < 1.0:
            raise DetectorConfigurationError(
                f"rare_floor must lie in [0, 1), got {rare_floor}"
            )
        if not 0.0 <= unseen_context_response <= 1.0:
            raise DetectorConfigurationError(
                "unseen_context_response must lie in [0, 1], got "
                f"{unseen_context_response}"
            )
        self._rare_floor = float(rare_floor)
        self._unseen_context_response = float(unseen_context_response)
        # Packable representation: sorted packed codes + aligned counts.
        self._joint_codes: np.ndarray | None = None
        self._joint_counts: np.ndarray | None = None
        self._context_codes: np.ndarray | None = None
        self._context_counts_arr: np.ndarray | None = None
        # Fallback representation for windows beyond the 63-bit budget.
        self._window_counts: dict[tuple[int, ...], int] = {}
        self._context_counts: dict[tuple[int, ...], int] = {}
        self._total_windows = 0

    @property
    def rare_floor(self) -> float:
        """Joint-frequency bound for the probability floor."""
        return self._rare_floor

    @property
    def _packable(self) -> bool:
        """Whether ``DW``-grams fit the 63-bit packed-integer budget."""
        return packable(self.alphabet_size, self.window_length)

    def _unique_rows(
        self, stream: np.ndarray, length: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distinct windows of ``stream`` at ``length`` with counts."""
        shared = self._shared_unique_counts(stream, length)
        if shared is not None:
            return shared
        view = self._windows_view(stream, length)
        return np.unique(view, axis=0, return_counts=True)

    def _packed_count_table(
        self, streams: list[np.ndarray], length: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sorted (codes, counts) over all streams' ``length``-grams.

        Distinct rows arrive in lexicographic order, and packing is
        order-preserving, so each stream contributes an already-sorted
        code array; multi-stream tables merge via one ``np.unique``
        plus a scatter-add.
        """
        value_parts, count_parts = [], []
        for stream in streams:
            if len(stream) < length:
                continue
            rows, counts = self._unique_rows(stream, length)
            value_parts.append(pack_windows(rows, self.alphabet_size))
            count_parts.append(counts.astype(np.int64, copy=False))
        if len(value_parts) == 1:
            return value_parts[0], count_parts[0]
        values, inverse = np.unique(
            np.concatenate(value_parts), return_inverse=True
        )
        counts = np.zeros(len(values), dtype=np.int64)
        np.add.at(counts, inverse, np.concatenate(count_parts))
        return values, counts

    def _count(
        self, streams: list[np.ndarray], length: int
    ) -> dict[tuple[int, ...], int]:
        """Tuple-keyed count table (the unpackable fallback)."""
        counts: dict[tuple[int, ...], int] = {}
        for stream in streams:
            if len(stream) < length:
                continue
            rows, row_counts = self._unique_rows(stream, length)
            # tolist() converts the whole batch in one C pass; the
            # resulting tuples of Python ints match the per-element
            # tuple(int(c) ...) keys bit for bit.
            for key, n in zip(map(tuple, rows.tolist()), row_counts.tolist()):
                counts[key] = counts.get(key, 0) + n
        return counts

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        if self._packable:
            self._joint_codes, self._joint_counts = self._packed_count_table(
                training_streams, self.window_length
            )
            self._context_codes, self._context_counts_arr = (
                self._packed_count_table(training_streams, self.window_length - 1)
            )
            self._total_windows = int(self._joint_counts.sum())
            self._window_counts = {}
            self._context_counts = {}
        else:
            self._joint_codes = self._joint_counts = None
            self._context_codes = self._context_counts_arr = None
            self._window_counts = self._count(training_streams, self.window_length)
            self._context_counts = self._count(
                training_streams, self.window_length - 1
            )
            self._total_windows = sum(self._window_counts.values())

    def _extra_fingerprint(self) -> str:
        return (
            f"floor={self._rare_floor!r};"
            f"unseen={self._unseen_context_response!r}"
        )

    @property
    def supports_delta_fit(self) -> bool:
        return self.is_fitted and self._joint_codes is not None

    def clone_unfitted(self) -> "MarkovDetector":
        return type(self)(
            self.window_length,
            self.alphabet_size,
            self._rare_floor,
            self._unseen_context_response,
        )

    def update_batch(
        self,
        new_events: Sequence[int] | np.ndarray,
        prior_tail: Sequence[int] | np.ndarray,
    ) -> "MarkovDetector":
        """Fold a batch's joint and context count deltas into the tables.

        Two packed ``np.unique`` passes over the combined tail (orders
        ``DW`` and ``DW - 1``) produce the delta count tables, which
        splice into the retained sorted tables by bisection
        (:func:`~repro.runtime.kernels.merge_sorted_counts`).  The
        context windows of the combined tail over-count the full
        stream by exactly one gram: the window at position 0 lies
        entirely inside the old stream (it is the old stream's final
        ``DW - 1``-gram, so it is already counted — and already
        present — in the old context table).  Its delta count is
        decremented before the merge, which restores bit-identity with
        a cold refit.
        """
        combined = self._delta_combined(new_events, prior_tail)
        if self._joint_codes is None:
            raise DetectorConfigurationError(
                "markov delta fits require the packed count tables (this "
                "fit exceeded the 63-bit packing budget)"
            )
        joint_values, joint_counts = np.unique(
            self._delta_packed(combined), return_counts=True
        )
        ctx_packed = self._delta_packed(combined, self.window_length - 1)
        ctx_values, ctx_counts = np.unique(ctx_packed, return_counts=True)
        ctx_counts = ctx_counts.astype(np.int64, copy=True)
        ctx_counts[np.searchsorted(ctx_values, ctx_packed[0])] -= 1
        self._joint_codes, self._joint_counts = merge_sorted_counts(
            self._joint_codes,
            self._joint_counts,
            joint_values,
            joint_counts.astype(np.int64, copy=False),
        )
        self._context_codes, self._context_counts_arr = merge_sorted_counts(
            self._context_codes,
            self._context_counts_arr,
            ctx_values,
            ctx_counts,
        )
        self._total_windows += len(combined) - self.window_length + 1
        self._note_delta_update()
        return self

    def _fit_state(self) -> dict[str, np.ndarray] | None:
        total = np.asarray(self._total_windows, dtype=np.int64)
        if self._joint_codes is not None:
            return {
                "joint_codes": self._joint_codes,
                "joint_counts": self._joint_counts,
                "context_codes": self._context_codes,
                "context_counts": self._context_counts_arr,
                "total": total,
            }
        if self._window_counts:
            keys = sorted(self._window_counts)
            ctx_keys = sorted(self._context_counts)
            return {
                "window_rows": np.asarray(keys, dtype=np.int64),
                "window_counts": np.asarray(
                    [self._window_counts[k] for k in keys], dtype=np.int64
                ),
                "context_rows": np.asarray(ctx_keys, dtype=np.int64),
                "context_row_counts": np.asarray(
                    [self._context_counts[k] for k in ctx_keys], dtype=np.int64
                ),
                "total": total,
            }
        return None

    def _load_fit_state(self, state: dict[str, np.ndarray]) -> bool:
        if "total" not in state:
            return False
        total = int(np.asarray(state["total"]))
        if "joint_codes" in state:
            needed = ("joint_codes", "joint_counts", "context_codes", "context_counts")
            if not all(name in state for name in needed):
                return False
            arrays = [np.asarray(state[name]) for name in needed]
            if any(a.ndim != 1 for a in arrays):
                return False
            self._joint_codes, self._joint_counts = arrays[0], arrays[1]
            self._context_codes, self._context_counts_arr = arrays[2], arrays[3]
            self._window_counts = {}
            self._context_counts = {}
            self._total_windows = total
            return True
        needed = ("window_rows", "window_counts", "context_rows", "context_row_counts")
        if not all(name in state for name in needed):
            return False
        rows = np.asarray(state["window_rows"])
        ctx_rows = np.asarray(state["context_rows"])
        if rows.ndim != 2 or rows.shape[1] != self.window_length:
            return False
        if ctx_rows.ndim != 2 or ctx_rows.shape[1] != self.window_length - 1:
            return False
        self._joint_codes = self._joint_counts = None
        self._context_codes = self._context_counts_arr = None
        self._window_counts = dict(
            zip(map(tuple, rows.tolist()), np.asarray(state["window_counts"]).tolist())
        )
        self._context_counts = dict(
            zip(
                map(tuple, ctx_rows.tolist()),
                np.asarray(state["context_row_counts"]).tolist(),
            )
        )
        self._total_windows = total
        return True

    def _lookup(self, key: tuple[int, ...]) -> tuple[int, int]:
        """(joint, context) training counts for one window key."""
        if self._joint_codes is not None:
            code = pack_window(key, self.alphabet_size)
            probe = np.asarray([code], dtype=np.int64)
            joint = int(
                count_lookup(probe, self._joint_codes, self._joint_counts)[0]
            )
            context = int(
                count_lookup(
                    probe >> symbol_bits(self.alphabet_size),
                    self._context_codes,
                    self._context_counts_arr,
                )[0]
            )
            return joint, context
        return (
            self._window_counts.get(key, 0),
            self._context_counts.get(key[:-1], 0),
        )

    def transition_probability(self, window: tuple[int, ...]) -> float:
        """The floored estimate of P(last element | preceding context).

        Raises:
            NotFittedError: if the detector is unfitted.
        """
        self._require_fitted()
        key = tuple(int(c) for c in window)
        joint, context = self._lookup(key)
        if joint == 0:
            return 0.0
        if self._rare_floor > 0.0 and joint < self._rare_floor * self._total_windows:
            return 0.0
        if context == 0:
            return 0.0
        return joint / context

    def _window_response(self, key: tuple[int, ...]) -> float:
        """The response for one window key (the scalar scoring rule).

        The reference implementation the batch kernel must match bit
        for bit (``tests/runtime/test_kernels.py``).
        """
        floor_count = self._rare_floor * self._total_windows
        joint, context_count = self._lookup(key)
        if joint == 0 or (self._rare_floor > 0.0 and joint < floor_count):
            if context_count == 0 and joint == 0:
                response = self._unseen_context_response
            else:
                response = 1.0
        else:
            if context_count == 0:
                response = 1.0
            else:
                response = 1.0 - joint / context_count
        return min(1.0, max(0.0, response))

    def _batch_response(self, packed: np.ndarray) -> np.ndarray:
        """Vectorized responses for packed window codes (one kernel pass)."""
        joint = count_lookup(packed, self._joint_codes, self._joint_counts)
        # Packing is big-endian (first symbol highest weight), so the
        # DW-1 context of a window code is one symbol-width shift away.
        context = count_lookup(
            packed >> symbol_bits(self.alphabet_size),
            self._context_codes,
            self._context_counts_arr,
        )
        return markov_batch_response(
            joint,
            context,
            self._rare_floor * self._total_windows,
            self._unseen_context_response,
        )

    def _tuple_responses(self, view: np.ndarray) -> np.ndarray:
        """Memoized scalar responses for the unpackable fallback."""
        responses = np.empty(len(view), dtype=np.float64)
        memo: dict[tuple[int, ...], float] = {}
        for i, key in enumerate(map(tuple, view.tolist())):
            response = memo.get(key)
            if response is None:
                response = self._window_response(key)
                memo[key] = response
            responses[i] = response
        return responses

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        if self._joint_codes is not None:
            return self._batch_response(self._packed_view(test_stream))
        return self._tuple_responses(self._windows_view(test_stream))

    def _score_windows(self, windows: np.ndarray) -> np.ndarray:
        if self._joint_codes is not None:
            return self._batch_response(
                pack_windows(windows, self.alphabet_size)
            )
        return self._tuple_responses(windows)

    def score_packed(self, packed: np.ndarray) -> np.ndarray:
        """Responses for pre-packed window keys (fused-batch entry).

        The serving batcher packs several tenants' streams in one pass
        and hands each detector its key slice; the joint/context count
        lookups and the floor/unseen rule are the same
        ``_batch_response`` pass ``_score`` runs on its own packing,
        so responses are bit-identical.

        Raises:
            NotFittedError: if the detector is unfitted.
            DetectorConfigurationError: if this fit has no packed
                count tables (it exceeded the 63-bit packing budget).
        """
        self._require_fitted()
        if self._joint_codes is None:
            raise DetectorConfigurationError(
                "score_packed requires the packed count tables (this fit "
                "exceeded the 63-bit packing budget)"
            )
        return self._batch_response(packed)
