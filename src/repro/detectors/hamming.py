"""Hamming-distance detector — the positional foil to Lane & Brodley.

Section 7 traces L&B's blindness to its adjacency-weighted metric:
a foreign sequence mismatching a normal one only at the window's edge
loses almost no similarity.  The natural control is the *unweighted*
positional metric — plain Hamming distance to the nearest normal
window — under which mismatch position is irrelevant by construction.

Response: ``min over database of hamming(window, entry) / DW``.  The
response for a single mismatch is ``1/DW`` wherever the mismatch sits,
eliminating L&B's edge bias; but like L&B the detector reaches the
maximal response only for windows mismatching every database entry at
every position, so it remains blind to minimal foreign sequences under
the paper's strict threshold.  The pair (L&B, Hamming) demonstrates
that fixing one pathology of a similarity metric need not change its
coverage class — measured maps, not design intuitions, decide
(the E17 comparison bench).
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import register_detector
from repro.runtime.kernels import hamming_batch_distance


class HammingDetector(AnomalyDetector):
    """Minimum normalized Hamming distance to the normal database.

    Args:
        window_length: the detector window ``DW`` (>= 2).
        alphabet_size: number of symbol codes.
        chunk_elements: soft bound on the comparison tensor per scoring
            chunk (memory control).
    """

    name = "hamming"

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        chunk_elements: int = 8_000_000,
    ) -> None:
        super().__init__(window_length, alphabet_size, response_tolerance=0.0)
        self._chunk_elements = max(chunk_elements, window_length)
        self._database: np.ndarray | None = None

    @property
    def database_size(self) -> int:
        """Number of distinct normal windows stored."""
        self._require_fitted()
        assert self._database is not None
        return int(len(self._database))

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        parts, all_shared = [], True
        for stream in training_streams:
            shared = self._shared_unique_counts(stream)
            if shared is not None:
                parts.append(shared[0])
            else:
                all_shared = False
                parts.append(self._windows_view(stream))
        if all_shared and len(parts) == 1:
            # Already the distinct rows in lexicographic order.
            self._database = parts[0]
        else:
            self._database = np.unique(np.concatenate(parts, axis=0), axis=0)

    def _fit_state(self) -> dict[str, np.ndarray] | None:
        if self._database is None:
            return None
        return {"database": np.ascontiguousarray(self._database)}

    def _load_fit_state(self, state: dict[str, np.ndarray]) -> bool:
        database = np.asarray(state.get("database"))
        if database.ndim != 2 or database.shape[1] != self.window_length:
            return False
        self._database = database.astype(np.int64, copy=False)
        return True

    def distance_to_normal(self, window: tuple[int, ...] | np.ndarray) -> int:
        """Minimum Hamming distance of ``window`` over the database."""
        self._require_fitted()
        row = np.asarray(window).reshape(1, -1)
        return int(self._chunk_distances(row)[0])

    def _chunk_distances(self, windows: np.ndarray) -> np.ndarray:
        """Minimum database distance per row, via the shared
        :func:`~repro.runtime.kernels.hamming_batch_distance` kernel."""
        assert self._database is not None
        return hamming_batch_distance(
            windows, self._database, self._chunk_elements
        )

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        view = self._windows_view(test_stream)
        return self._chunk_distances(view) / self.window_length

    def _score_windows(self, windows: np.ndarray) -> np.ndarray:
        return self._chunk_distances(windows) / self.window_length


register_detector(HammingDetector)
