"""Histogram detector: frequency profiles without sequential ordering.

Denning's original anomaly-detection model and its NIDES-style
descendants profile *frequencies*, not orderings.  This detector is
that family reduced to the paper's fixed-window setting: training
collects the set of symbol histograms exhibited by normal windows; a
test window's response is the normalized L1 distance between its
histogram and the nearest normal histogram.

It is the mirror image of the sequence detectors' blindness:

* a minimal foreign sequence built from *common symbols in a novel
  order* has the same histogram as normal windows — the histogram
  detector is blind across the paper's entire map;
* a *frequency* anomaly (a burst of one symbol) can hide from Stide
  when each window ordering exists in training, yet lights the
  histogram detector up.

Detector diversity, in other words, spans anomaly *types*, not just
regions of the (AS, DW) grid — the E24 bench charts both axes.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import register_detector
from repro.sequences.windows import windows_array


class HistogramDetector(AnomalyDetector):
    """Nearest-normal-histogram distance over fixed windows.

    Args:
        window_length: the detector window ``DW`` (>= 2).
        alphabet_size: number of symbol codes.
        response_tolerance: slack for the maximal-response criterion
            (default 0 — the distance is exact).
    """

    name = "histogram"

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        response_tolerance: float = 0.0,
    ) -> None:
        super().__init__(
            window_length, alphabet_size, response_tolerance=response_tolerance
        )
        self._normal_histograms: np.ndarray | None = None

    @property
    def profile_size(self) -> int:
        """Number of distinct normal histograms stored."""
        self._require_fitted()
        assert self._normal_histograms is not None
        return int(len(self._normal_histograms))

    def _histograms(self, windows: np.ndarray) -> np.ndarray:
        """Per-row symbol-count histograms, shape (n, alphabet_size)."""
        n = len(windows)
        histograms = np.zeros((n, self.alphabet_size), dtype=np.int64)
        rows = np.repeat(np.arange(n), windows.shape[1])
        np.add.at(histograms, (rows, windows.ravel()), 1)
        return histograms

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        parts = [
            self._histograms(windows_array(stream, self.window_length))
            for stream in training_streams
        ]
        self._normal_histograms = np.unique(np.concatenate(parts, axis=0), axis=0)

    def distance_to_normal(self, window: tuple[int, ...] | np.ndarray) -> int:
        """L1 distance of the window's histogram to the nearest normal one."""
        self._require_fitted()
        view = np.asarray(window).reshape(1, -1)
        return int(self._distances(self._histograms(view))[0])

    def _distances(self, histograms: np.ndarray) -> np.ndarray:
        assert self._normal_histograms is not None
        # (n, profiles, alphabet) absolute differences; windows and
        # profiles are both small in this domain.
        differences = np.abs(
            histograms[:, None, :] - self._normal_histograms[None, :, :]
        ).sum(axis=2)
        return differences.min(axis=1)

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        view = windows_array(test_stream, self.window_length)
        unique_rows, inverse = np.unique(view, axis=0, return_inverse=True)
        distances = self._distances(self._histograms(unique_rows))
        # Two length-DW histograms differ by at most 2*DW counts.
        responses = distances / (2 * self.window_length)
        return responses[inverse]


register_detector(HistogramDetector)
