"""Windowed Markov-chain likelihood detector (Jha, Tan & Maxion, CSFW'01).

The paper's Markov detector scores single transitions.  Its cited
precursor — *Markov Chains, Classifiers, and Intrusion Detection*
(reference [12]) — scores whole windows by their chain likelihood: the
probability that a first-order Markov chain fitted to training emits
the window's transition sequence.

For a window ``w`` of length ``DW`` the raw likelihood is::

    L(w) = P(w_0) * prod_{i=1..DW-1} P(w_i | w_{i-1})

and the response is ``1 - L(w) ** (1 / (DW - 1))`` — the geometric mean
of the per-transition probabilities, so responses are comparable across
window lengths (a raw product would vanish with ``DW`` and saturate the
score).  A window containing any unseen transition (or starting from an
unseen state) scores the maximal response.

This detector complements the paper's four: it is probability-based
like the transition Markov detector, but aggregates evidence over the
whole window, so a single rare transition inside an otherwise-common
window yields a high-but-not-maximal response.

A coverage caveat worth noting (and tested): because the chain is
first-order, it models *pairs* — and every pair of a minimal foreign
sequence of size >= 3 exists in training, by minimality.  The chain
detector therefore produces strong graded responses in an MFS's
incident span but never the maximal response the paper's strict
threshold demands: aggregation over the window trades the transition
detector's maximal rare-event response for cross-window comparability.
Yet another instance of the paper's thesis that a detector's internals,
not its design intentions, determine its coverage.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import register_detector
from repro.exceptions import DetectorConfigurationError
from repro.sequences.windows import windows_array


class MarkovChainDetector(AnomalyDetector):
    """Whole-window likelihood under a fitted first-order Markov chain.

    Args:
        window_length: the detector window ``DW`` (>= 2).
        alphabet_size: number of symbol codes.
        response_tolerance: slack for the maximal-response criterion
            (default 0.05 — likelihoods of windows containing unseen
            transitions are exactly 0, but near-zero likelihoods from
            flooring interactions deserve the same treatment).
    """

    name = "markov-chain"

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        response_tolerance: float = 0.05,
    ) -> None:
        super().__init__(
            window_length, alphabet_size, response_tolerance=response_tolerance
        )
        self._transitions: np.ndarray | None = None
        self._initial: np.ndarray | None = None

    @property
    def transition_matrix(self) -> np.ndarray:
        """The fitted row-stochastic transition matrix (copy)."""
        self._require_fitted()
        assert self._transitions is not None
        return self._transitions.copy()

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        size = self.alphabet_size
        counts = np.zeros((size, size), dtype=np.float64)
        starts = np.zeros(size, dtype=np.float64)
        for stream in training_streams:
            np.add.at(counts, (stream[:-1], stream[1:]), 1.0)
            values, value_counts = np.unique(stream, return_counts=True)
            starts[values] += value_counts
        row_sums = counts.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            transitions = np.where(row_sums > 0, counts / row_sums, 0.0)
        total = starts.sum()
        if total == 0:
            raise DetectorConfigurationError("no training symbols observed")
        self._transitions = transitions
        self._initial = starts / total

    def window_likelihood(self, window: tuple[int, ...]) -> float:
        """Raw chain likelihood of one window (product form)."""
        self._require_fitted()
        assert self._transitions is not None and self._initial is not None
        codes = [int(c) for c in window]
        likelihood = float(self._initial[codes[0]])
        for previous, current in zip(codes, codes[1:]):
            likelihood *= float(self._transitions[previous, current])
        return likelihood

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        assert self._transitions is not None and self._initial is not None
        view = windows_array(test_stream, self.window_length)
        # Per-position transition probabilities, vectorized over windows.
        probabilities = self._transitions[view[:, :-1], view[:, 1:]]
        transition_count = self.window_length - 1
        with np.errstate(divide="ignore"):
            log_probabilities = np.where(
                probabilities > 0, np.log(probabilities), -np.inf
            )
        geometric_mean = np.exp(log_probabilities.sum(axis=1) / transition_count)
        responses = 1.0 - geometric_mean
        # Windows starting from a never-seen symbol are maximally anomalous.
        unseen_start = self._initial[view[:, 0]] == 0.0
        responses[unseen_start] = 1.0
        return np.clip(responses, 0.0, 1.0)


register_detector(MarkovChainDetector)
