"""Locality frame count (LFC) post-processing.

Stide as deployed by Warrender et al. aggregates raw window mismatches
over a *locality frame* — the sequence of the most recent ``n``
windows — and alarms when the number of mismatches in the frame crosses
a threshold, suppressing isolated noise.  The paper deliberately
ignores the LFC when charting intrinsic detection ability
(Section 5.5); the library provides it as an optional post-processor
for deployments and for the false-alarm experiments.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EvaluationError


def locality_frame_counts(responses: np.ndarray, frame_size: int = 20) -> np.ndarray:
    """Count near-maximal responses within each trailing locality frame.

    Entry ``i`` of the result counts responses equal to 1.0 among
    ``responses[max(0, i - frame_size + 1) : i + 1]``.

    Args:
        responses: per-window detector responses in ``[0, 1]``.
        frame_size: number of trailing windows per frame (>= 1).

    Returns:
        ``int64`` array, same length as ``responses``.
    """
    data = np.asarray(responses, dtype=np.float64)
    if data.ndim != 1:
        raise EvaluationError(f"responses must be 1-D, got shape {data.shape}")
    if frame_size < 1:
        raise EvaluationError(f"frame_size must be >= 1, got {frame_size}")
    hits = (data >= 1.0).astype(np.int64)
    cumulative = np.concatenate([[0], np.cumsum(hits)])
    counts = np.empty(len(data), dtype=np.int64)
    for i in range(len(data)):
        lo = max(0, i - frame_size + 1)
        counts[i] = cumulative[i + 1] - cumulative[lo]
    return counts


def trailing_mean_smoothing(
    responses: np.ndarray, width: int = 100
) -> np.ndarray:
    """Lane & Brodley's similarity smoothing, as a response filter.

    L&B's deployed system smoothed the per-window similarity signal
    with a trailing mean before thresholding, damping isolated spikes
    in either direction.  Like the LFC it is a post-similarity process
    the paper's scoring deliberately excludes (Section 5.5); it is
    provided for deployment-style experiments.

    Args:
        responses: per-window responses in ``[0, 1]``.
        width: number of trailing windows averaged (>= 1); positions
            with fewer predecessors average what is available.

    Returns:
        ``float64`` array, same length as ``responses``.
    """
    data = np.asarray(responses, dtype=np.float64)
    if data.ndim != 1:
        raise EvaluationError(f"responses must be 1-D, got shape {data.shape}")
    if width < 1:
        raise EvaluationError(f"width must be >= 1, got {width}")
    cumulative = np.concatenate([[0.0], np.cumsum(data)])
    smoothed = np.empty(len(data), dtype=np.float64)
    for i in range(len(data)):
        lo = max(0, i - width + 1)
        smoothed[i] = (cumulative[i + 1] - cumulative[lo]) / (i + 1 - lo)
    return smoothed


def lfc_alarms(
    responses: np.ndarray, frame_size: int = 20, count_threshold: int = 1
) -> np.ndarray:
    """Binary alarms from locality-frame counts.

    Args:
        responses: per-window detector responses.
        frame_size: locality-frame width.
        count_threshold: minimum number of maximal responses in a frame
            for the frame's last window to alarm (>= 1).

    Returns:
        Boolean array, same length as ``responses``.
    """
    if count_threshold < 1:
        raise EvaluationError(
            f"count_threshold must be >= 1, got {count_threshold}"
        )
    return locality_frame_counts(responses, frame_size) >= count_threshold
