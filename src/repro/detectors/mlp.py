"""A small, dependency-free multilayer perceptron (NumPy only).

This is the learning machinery behind
:class:`~repro.detectors.neural.NeuralDetector`.  It is deliberately
period-appropriate: a multilayer feed-forward network trained by
backpropagation with a learning constant and a momentum constant — the
exact parameter vocabulary the paper takes from Zurada's textbook when
discussing the neural detector's tuning sensitivity (Section 7).

The network maps a one-hot-encoded context to a softmax distribution
over next symbols and is trained with weighted cross-entropy on the
distinct (context, next-symbol) pairs of the training stream, weights
being the pairs' occurrence counts.  Training is full-batch gradient
descent with momentum; initialization is seeded, so results are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DetectorConfigurationError


@dataclass(frozen=True)
class MlpConfig:
    """Hyperparameters of the feed-forward network.

    Attributes:
        hidden_units: size of the single hidden layer.
        learning_rate: the "learning constant".
        momentum: the "momentum constant".
        epochs: number of full-batch passes.
        seed: weight-initialization seed.
        init_scale: uniform initialization half-width.
    """

    hidden_units: int = 32
    learning_rate: float = 0.5
    momentum: float = 0.9
    epochs: int = 400
    seed: int = 7
    init_scale: float = 0.5

    def __post_init__(self) -> None:
        if self.hidden_units < 1:
            raise DetectorConfigurationError(
                f"hidden_units must be >= 1, got {self.hidden_units}"
            )
        if self.learning_rate <= 0:
            raise DetectorConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if not 0.0 <= self.momentum < 1.0:
            raise DetectorConfigurationError(
                f"momentum must lie in [0, 1), got {self.momentum}"
            )
        if self.epochs < 1:
            raise DetectorConfigurationError(f"epochs must be >= 1, got {self.epochs}")


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class NextSymbolMlp:
    """One-hidden-layer softmax classifier for next-symbol prediction.

    Args:
        input_dim: size of the one-hot context vector.
        output_dim: alphabet size.
        config: training hyperparameters.
    """

    def __init__(self, input_dim: int, output_dim: int, config: MlpConfig) -> None:
        if input_dim < 1 or output_dim < 2:
            raise DetectorConfigurationError(
                f"invalid MLP dimensions: input {input_dim}, output {output_dim}"
            )
        self._config = config
        rng = np.random.default_rng(config.seed)
        scale = config.init_scale
        self._w1 = rng.uniform(-scale, scale, size=(input_dim, config.hidden_units))
        self._b1 = np.zeros(config.hidden_units)
        self._w2 = rng.uniform(-scale, scale, size=(config.hidden_units, output_dim))
        self._b2 = np.zeros(output_dim)
        self._trained = False

    @property
    def config(self) -> MlpConfig:
        """The hyperparameters this network was built with."""
        return self._config

    def export_weights(self) -> dict[str, np.ndarray]:
        """Copies of the current parameters, keyed ``w1/b1/w2/b2``.

        The serialization behind the artifact store and warm-start
        donation: loading the export back (same dimensions) restores a
        network whose predictions are bit-identical.
        """
        return {
            "w1": self._w1.copy(),
            "b1": self._b1.copy(),
            "w2": self._w2.copy(),
            "b2": self._b2.copy(),
        }

    def load_weights(self, state: dict[str, np.ndarray]) -> bool:
        """Install exported parameters; ``True`` on success.

        Dimension-checked against this network's architecture; any
        missing or mis-shaped array leaves the network untouched and
        returns ``False`` (the store is corruption-tolerant, so loads
        must never trust their payload).
        """
        try:
            arrays = {
                name: np.asarray(state[name], dtype=np.float64)
                for name in ("w1", "b1", "w2", "b2")
            }
        except (KeyError, TypeError, ValueError):
            return False
        if (
            arrays["w1"].shape != self._w1.shape
            or arrays["b1"].shape != self._b1.shape
            or arrays["w2"].shape != self._w2.shape
            or arrays["b2"].shape != self._b2.shape
        ):
            return False
        self._w1 = arrays["w1"].copy()
        self._b1 = arrays["b1"].copy()
        self._w2 = arrays["w2"].copy()
        self._b2 = arrays["b2"].copy()
        self._trained = True
        return True

    def _hidden(self, inputs: np.ndarray) -> np.ndarray:
        return np.tanh(inputs @ self._w1 + self._b1)

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Softmax next-symbol distributions for a batch of contexts."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        return _softmax(self._hidden(inputs) @ self._w2 + self._b2)

    def train(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        sample_weights: np.ndarray,
        epochs: int | None = None,
    ) -> float:
        """Fit with weighted cross-entropy; returns the final loss.

        Args:
            inputs: (n, input_dim) one-hot context batch.
            targets: (n,) integer next-symbol codes.
            sample_weights: (n,) non-negative weights (occurrence
                counts); normalized internally.
            epochs: override of the configured epoch budget — the
                warm-start path continues from donor weights with a
                reduced budget instead of the full cold schedule.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.int64)
        weights = np.asarray(sample_weights, dtype=np.float64)
        if len(inputs) != len(targets) or len(inputs) != len(weights):
            raise DetectorConfigurationError(
                "inputs, targets and sample_weights must have equal length"
            )
        if weights.sum() <= 0:
            raise DetectorConfigurationError("sample weights must sum to > 0")
        weights = weights / weights.sum()
        config = self._config
        velocity = [np.zeros_like(p) for p in (self._w1, self._b1, self._w2, self._b2)]
        one_hot_targets = np.zeros((len(targets), self._w2.shape[1]))
        one_hot_targets[np.arange(len(targets)), targets] = 1.0
        budget = config.epochs if epochs is None else max(1, int(epochs))
        loss = float("inf")
        for _epoch in range(budget):
            hidden = self._hidden(inputs)
            probabilities = _softmax(hidden @ self._w2 + self._b2)
            clipped = np.clip(probabilities, 1e-12, 1.0)
            loss = float(
                -(weights * np.log(clipped[np.arange(len(targets)), targets])).sum()
            )
            # Backpropagation of the weighted cross-entropy.
            delta_out = (probabilities - one_hot_targets) * weights[:, None]
            grad_w2 = hidden.T @ delta_out
            grad_b2 = delta_out.sum(axis=0)
            delta_hidden = (delta_out @ self._w2.T) * (1.0 - hidden**2)
            grad_w1 = inputs.T @ delta_hidden
            grad_b1 = delta_hidden.sum(axis=0)
            gradients = (grad_w1, grad_b1, grad_w2, grad_b2)
            parameters = (self._w1, self._b1, self._w2, self._b2)
            for v, gradient, parameter in zip(velocity, gradients, parameters):
                v *= config.momentum
                v -= config.learning_rate * gradient
                parameter += v
        self._trained = True
        return loss
