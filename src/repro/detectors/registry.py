"""Name-based detector construction.

The evaluation harness, benchmarks and examples refer to detectors by
their paper names; the registry centralizes the mapping so a sweep over
"all four detectors" is written once.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.detectors.base import AnomalyDetector
from repro.detectors.lane_brodley import LaneBrodleyDetector
from repro.detectors.markov import MarkovDetector
from repro.detectors.neural import NeuralDetector
from repro.detectors.stide import StideDetector
from repro.detectors.tstide import TStideDetector
from repro.exceptions import DetectorConfigurationError

DetectorFactory = Callable[..., AnomalyDetector]

_REGISTRY: dict[str, type[AnomalyDetector]] = {
    StideDetector.name: StideDetector,
    TStideDetector.name: TStideDetector,
    MarkovDetector.name: MarkovDetector,
    LaneBrodleyDetector.name: LaneBrodleyDetector,
    NeuralDetector.name: NeuralDetector,
}

#: The four detectors evaluated by the paper, in figure order
#: (Figure 3: L&B, Figure 4: Markov, Figure 5: Stide, Figure 6: NN).
PAPER_DETECTORS: tuple[str, ...] = (
    LaneBrodleyDetector.name,
    MarkovDetector.name,
    StideDetector.name,
    NeuralDetector.name,
)


def available_detectors() -> tuple[str, ...]:
    """All registered detector names, sorted."""
    return tuple(sorted(_REGISTRY))


def detector_class(name: str) -> type[AnomalyDetector]:
    """The class registered under ``name``.

    Raises:
        DetectorConfigurationError: for unknown names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DetectorConfigurationError(
            f"unknown detector {name!r}; available: {', '.join(available_detectors())}"
        ) from None


def create_detector(
    name: str, window_length: int, alphabet_size: int, **kwargs: object
) -> AnomalyDetector:
    """Instantiate the detector registered under ``name``.

    Extra keyword arguments are forwarded to the detector constructor
    (e.g. ``rare_floor`` for the Markov detector).
    """
    return detector_class(name)(window_length, alphabet_size, **kwargs)


def register_detector(cls: type[AnomalyDetector]) -> type[AnomalyDetector]:
    """Register a custom detector class under its ``name`` attribute.

    Usable as a class decorator.  Overwriting an existing registration
    is rejected to avoid silently shadowing a paper detector.

    Raises:
        DetectorConfigurationError: if the name is taken or missing.
    """
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise DetectorConfigurationError(
            "detector classes must define a non-default `name` to register"
        )
    if name in _REGISTRY:
        raise DetectorConfigurationError(f"detector {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls
