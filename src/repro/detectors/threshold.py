"""Thresholding mechanisms (component 3 of the generic detector).

Every detector in the study shares a user-set thresholding mechanism
that converts graded responses into anomalous/normal decisions
(Section 4.2).  The paper's experiments use the strictest setting — a
threshold of 1, recognizing only maximally anomalous responses as hits
— with the footnoted property that a maximal response registers as an
alarm *regardless* of where the threshold is set.

:class:`FixedThreshold` is the general mechanism;
:class:`MaximalResponseThreshold` expresses the paper's setting while
honoring each detector's ``response_tolerance`` (graded detectors emit
1 - epsilon for events they respond to maximally).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DetectorConfigurationError


@dataclass(frozen=True)
class FixedThreshold:
    """Alarm when the response is at or above a fixed level.

    Attributes:
        level: responses >= ``level`` alarm; must lie in (0, 1].
    """

    level: float

    def __post_init__(self) -> None:
        if not 0.0 < self.level <= 1.0:
            raise DetectorConfigurationError(
                f"threshold level must lie in (0, 1], got {self.level}"
            )

    def alarms(self, responses: np.ndarray) -> np.ndarray:
        """Boolean alarm vector for a response array."""
        return np.asarray(responses, dtype=np.float64) >= self.level


@dataclass(frozen=True)
class MaximalResponseThreshold:
    """The paper's threshold-of-1 setting, with detector tolerance.

    Attributes:
        tolerance: responses >= ``1 - tolerance`` count as maximal.
            Use a detector's ``response_tolerance`` here.
    """

    tolerance: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerance < 1.0:
            raise DetectorConfigurationError(
                f"tolerance must lie in [0, 1), got {self.tolerance}"
            )

    @property
    def level(self) -> float:
        """The effective alarm level ``1 - tolerance``."""
        return 1.0 - self.tolerance

    def alarms(self, responses: np.ndarray) -> np.ndarray:
        """Boolean alarm vector for a response array."""
        return np.asarray(responses, dtype=np.float64) >= self.level

    @classmethod
    def for_detector(cls, detector: "object") -> "MaximalResponseThreshold":
        """Build from a detector's declared ``response_tolerance``."""
        tolerance = getattr(detector, "response_tolerance", 0.0)
        return cls(tolerance=float(tolerance))
