"""t-Stide: Stide with a rare-window threshold (Warrender et al., 1999).

The "t" variant extends Stide's foreign-match test with frequency:
windows that *do* occur in training, but below a rarity threshold, also
elicit the maximal response.  The paper cites this family when defining
rarity (relative frequency under 0.5%) and when discussing why
probability-blind detectors cannot respond to rare sequences; t-stide
is the canonical sequence detector that can.

Response semantics:

* foreign window — response 1.0;
* rare window (present, relative frequency < ``rare_threshold``) —
  response 1.0;
* common window — response 0.0.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.exceptions import DetectorConfigurationError
from repro.sequences.windows import pack_windows, windows_array


class TStideDetector(AnomalyDetector):
    """Stide extended with the rare-sequence criterion.

    Args:
        window_length: the detector window ``DW`` (>= 2).
        alphabet_size: number of symbol codes.
        rare_threshold: relative-frequency bound below which a stored
            window still counts as anomalous (paper default 0.5%).
    """

    name = "t-stide"

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        rare_threshold: float = 0.005,
    ) -> None:
        super().__init__(window_length, alphabet_size, response_tolerance=0.0)
        if not 0.0 < rare_threshold < 1.0:
            raise DetectorConfigurationError(
                f"rare_threshold must lie in (0, 1), got {rare_threshold}"
            )
        self._rare_threshold = float(rare_threshold)
        self._common_packed: np.ndarray | None = None
        self._common_tuples: set[tuple[int, ...]] | None = None

    @property
    def rare_threshold(self) -> float:
        """Relative-frequency bound defining rarity."""
        return self._rare_threshold

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        packable = self.window_length * np.log2(self.alphabet_size) < 63
        total = 0
        if packable:
            parts = []
            for stream in training_streams:
                view = windows_array(stream, self.window_length)
                parts.append(pack_windows(view, self.alphabet_size))
                total += len(view)
            packed = np.concatenate(parts)
            values, counts = np.unique(packed, return_counts=True)
            common = values[counts >= self._rare_threshold * total]
            self._common_packed = common
            self._common_tuples = None
        else:
            counts: dict[tuple[int, ...], int] = {}
            for stream in training_streams:
                view = windows_array(stream, self.window_length)
                total += len(view)
                for row in view:
                    key = tuple(int(c) for c in row)
                    counts[key] = counts.get(key, 0) + 1
            bound = self._rare_threshold * total
            self._common_tuples = {key for key, n in counts.items() if n >= bound}
            self._common_packed = None

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        view = windows_array(test_stream, self.window_length)
        if self._common_packed is not None:
            packed = pack_windows(view, self.alphabet_size)
            common = np.isin(packed, self._common_packed)
        else:
            assert self._common_tuples is not None
            common = np.fromiter(
                (tuple(int(c) for c in row) in self._common_tuples for row in view),
                dtype=bool,
                count=len(view),
            )
        return (~common).astype(np.float64)
