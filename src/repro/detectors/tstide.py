"""t-Stide: Stide with a rare-window threshold (Warrender et al., 1999).

The "t" variant extends Stide's foreign-match test with frequency:
windows that *do* occur in training, but below a rarity threshold, also
elicit the maximal response.  The paper cites this family when defining
rarity (relative frequency under 0.5%) and when discussing why
probability-blind detectors cannot respond to rare sequences; t-stide
is the canonical sequence detector that can.

Response semantics:

* foreign window — response 1.0;
* rare window (present, relative frequency < ``rare_threshold``) —
  response 1.0;
* common window — response 0.0.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.detectors.base import AnomalyDetector
from repro.exceptions import DetectorConfigurationError
from repro.runtime import telemetry
from repro.runtime.kernels import merge_sorted_counts, sorted_membership
from repro.sequences.windows import pack_windows, packable


class TStideDetector(AnomalyDetector):
    """Stide extended with the rare-sequence criterion.

    Args:
        window_length: the detector window ``DW`` (>= 2).
        alphabet_size: number of symbol codes.
        rare_threshold: relative-frequency bound below which a stored
            window still counts as anomalous (paper default 0.5%).
    """

    name = "t-stide"

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        rare_threshold: float = 0.005,
    ) -> None:
        super().__init__(window_length, alphabet_size, response_tolerance=0.0)
        if not 0.0 < rare_threshold < 1.0:
            raise DetectorConfigurationError(
                f"rare_threshold must lie in (0, 1), got {rare_threshold}"
            )
        self._rare_threshold = float(rare_threshold)
        self._common_packed: np.ndarray | None = None
        self._common_tuples: set[tuple[int, ...]] | None = None
        # Full (value, count) table behind the common filter — retained
        # on packable fits so delta updates can re-derive the filter
        # after merging a batch's counts.
        self._packed_values: np.ndarray | None = None
        self._packed_counts: np.ndarray | None = None
        self._total_windows = 0

    @property
    def rare_threshold(self) -> float:
        """Relative-frequency bound defining rarity."""
        return self._rare_threshold

    def _fit(self, training_streams: list[np.ndarray]) -> None:
        total = 0
        if packable(self.alphabet_size, self.window_length):
            value_parts, count_parts = [], []
            for stream in training_streams:
                shared = self._shared_unique_counts(stream)
                if shared is not None:
                    _rows, stream_counts = shared
                    # Count-aligned with the decomposition rows, and
                    # the same array the automaton ladder bisects.
                    stream_values = self._packed_database(stream)
                else:
                    stream_values, stream_counts = np.unique(
                        self._packed_view(stream), return_counts=True
                    )
                value_parts.append(stream_values)
                count_parts.append(stream_counts)
                total += int(stream_counts.sum())
            if len(value_parts) == 1:
                values, counts = value_parts[0], count_parts[0]
            else:
                values, inverse = np.unique(
                    np.concatenate(value_parts), return_inverse=True
                )
                counts = np.zeros(len(values), dtype=np.int64)
                np.add.at(counts, inverse, np.concatenate(count_parts))
            common = values[counts >= self._rare_threshold * total]
            self._common_packed = common
            self._common_tuples = None
            self._packed_values = values
            self._packed_counts = counts.astype(np.int64, copy=False)
            self._total_windows = total
        else:
            counts: dict[tuple[int, ...], int] = {}
            for stream in training_streams:
                view = self._windows_view(stream)
                total += len(view)
                rows, row_counts = np.unique(view, axis=0, return_counts=True)
                # One C pass over the distinct rows instead of a
                # per-element int() loop over every window.
                for key, n in zip(map(tuple, rows.tolist()), row_counts.tolist()):
                    counts[key] = counts.get(key, 0) + n
            bound = self._rare_threshold * total
            self._common_tuples = {key for key, n in counts.items() if n >= bound}
            self._common_packed = None
            self._packed_values = None
            self._packed_counts = None
            self._total_windows = total

    def _extra_fingerprint(self) -> str:
        return f"rare={self._rare_threshold!r}"

    @property
    def supports_delta_fit(self) -> bool:
        return (
            self.is_fitted
            and self._packed_values is not None
            and self._packed_counts is not None
        )

    def clone_unfitted(self) -> "TStideDetector":
        return type(self)(
            self.window_length, self.alphabet_size, self._rare_threshold
        )

    def update_batch(
        self,
        new_events: Sequence[int] | np.ndarray,
        prior_tail: Sequence[int] | np.ndarray,
    ) -> "TStideDetector":
        """Merge appended window counts and re-derive the common table.

        The batch's distinct ``DW``-grams and counts are one packed
        ``np.unique`` over the combined tail; merging into the
        retained sorted table is a bisection splice
        (:func:`~repro.runtime.kernels.merge_sorted_counts`) — bit-
        identical to the ``np.unique`` + scatter-add a multi-stream
        cold fit uses, so the re-filtered common table matches
        refitting on the full stream exactly.
        """
        combined = self._delta_combined(new_events, prior_tail)
        if self._packed_values is None or self._packed_counts is None:
            raise DetectorConfigurationError(
                "t-stide delta fits require the packed count table (this "
                "fit exceeded the 63-bit packing budget)"
            )
        delta_values, delta_counts = np.unique(
            self._delta_packed(combined), return_counts=True
        )
        values, counts = merge_sorted_counts(
            self._packed_values,
            self._packed_counts,
            delta_values,
            delta_counts.astype(np.int64, copy=False),
        )
        total = self._total_windows + (len(combined) - self.window_length + 1)
        self._packed_values = values
        self._packed_counts = counts
        self._total_windows = total
        self._common_packed = values[counts >= self._rare_threshold * total]
        self._note_delta_update()
        return self

    def _fit_state(self) -> dict[str, np.ndarray] | None:
        if self._common_packed is not None:
            state = {"common_packed": self._common_packed}
            if self._packed_values is not None and self._packed_counts is not None:
                # The full table rides along so a reloaded state keeps
                # its delta-fit capability (schema v3).
                state["table_values"] = self._packed_values
                state["table_counts"] = self._packed_counts
                state["table_total"] = np.asarray(
                    self._total_windows, dtype=np.int64
                )
            return state
        if self._common_tuples is not None:
            rows = np.asarray(sorted(self._common_tuples), dtype=np.int64)
            return {
                "common_rows": rows.reshape(
                    len(self._common_tuples), self.window_length
                )
            }
        return None

    def _load_fit_state(self, state: dict[str, np.ndarray]) -> bool:
        if "common_packed" in state:
            packed = np.asarray(state["common_packed"])
            if packed.ndim != 1 or not np.issubdtype(packed.dtype, np.integer):
                return False
            self._common_packed = packed.astype(np.int64, copy=False)
            self._common_tuples = None
            self._packed_values = None
            self._packed_counts = None
            self._total_windows = 0
            names = ("table_values", "table_counts", "table_total")
            if all(name in state for name in names):
                values = np.asarray(state["table_values"])
                counts = np.asarray(state["table_counts"])
                if (
                    values.ndim == 1
                    and counts.shape == values.shape
                    and np.issubdtype(values.dtype, np.integer)
                    and np.issubdtype(counts.dtype, np.integer)
                ):
                    self._packed_values = values.astype(np.int64, copy=False)
                    self._packed_counts = counts.astype(np.int64, copy=False)
                    self._total_windows = int(np.asarray(state["table_total"]))
            return True
        if "common_rows" in state:
            rows = np.asarray(state["common_rows"])
            if rows.ndim != 2 or rows.shape[1] != self.window_length:
                return False
            self._common_tuples = set(map(tuple, rows.tolist()))
            self._common_packed = None
            return True
        return False

    def _common(self, view: np.ndarray, packed: np.ndarray | None) -> np.ndarray:
        """Common-window membership for each window row."""
        if self._common_packed is not None:
            assert packed is not None
            return sorted_membership(packed, self._common_packed)
        assert self._common_tuples is not None
        return np.fromiter(
            (key in self._common_tuples for key in map(tuple, view.tolist())),
            dtype=bool,
            count=len(view),
        )

    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        count = len(test_stream) - self.window_length + 1
        telemetry.count("kernel.membership.windows", count)
        telemetry.count("kernel.membership.cells")
        if self._common_packed is not None:
            context = self._membership_context(test_stream)
            if context is not None:
                # Automaton tier: common windows are a subset of known
                # windows, so every position whose match length falls
                # short of DW is foreign (response 1) outright and only
                # the known survivors bisect the common table.
                profile, codes = context
                telemetry.count("kernel.automaton.windows", count)
                telemetry.count("kernel.automaton.cells")
                responses = np.ones(count, dtype=np.float64)
                candidates = np.flatnonzero(
                    profile[:count] >= self.window_length
                )
                if len(candidates):
                    probes = codes.keys_at(self.window_length, candidates)
                    common = sorted_membership(probes, self._common_packed)
                    responses[candidates[common]] = 0.0
                return responses
            packed = self._packed_view(test_stream)
            common = sorted_membership(packed, self._common_packed)
        else:
            common = self._common(self._windows_view(test_stream), None)
        telemetry.count("kernel.bisect.windows", count)
        telemetry.count("kernel.bisect.cells")
        return (~common).astype(np.float64)

    def _score_windows(self, windows: np.ndarray) -> np.ndarray:
        packed = (
            pack_windows(windows, self.alphabet_size)
            if self._common_packed is not None
            else None
        )
        return (~self._common(windows, packed)).astype(np.float64)

    def score_packed(self, packed: np.ndarray) -> np.ndarray:
        """Responses for pre-packed window keys (fused-batch entry).

        One bisection of the common table over keys the serving
        batcher packed in a fused pass — the same kernel as the
        bisect arm of ``_score``, so responses are bit-identical.

        Raises:
            NotFittedError: if the detector is unfitted.
            DetectorConfigurationError: if this fit has no packed
                common table (it exceeded the 63-bit packing budget).
        """
        self._require_fitted()
        if self._common_packed is None:
            raise DetectorConfigurationError(
                "score_packed requires the packed common table (this fit "
                "exceeded the 63-bit packing budget)"
            )
        telemetry.count("kernel.membership.windows", len(packed))
        telemetry.count("kernel.membership.cells")
        telemetry.count("kernel.bisect.windows", len(packed))
        telemetry.count("kernel.bisect.cells")
        common = sorted_membership(packed, self._common_packed)
        return (~common).astype(np.float64)
