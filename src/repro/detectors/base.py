"""Detector protocol shared by all similarity metrics.

A detector is configured with a window length, *fitted* on one or more
training streams, and then produces one response per window of a test
stream.  Responses lie in ``[0, 1]``: 0 is completely normal, 1 is
maximally anomalous.  The response for the window starting at stream
index ``i`` is stored at index ``i`` of the response array, so a test
stream of length ``L`` yields ``L - DW + 1`` responses.

Detectors that emit graded responses (Markov, neural network) also
declare a ``response_tolerance``: the slack within which a response is
considered *maximal* by the evaluation harness.  Binary detectors
(Stide, and L&B's extremes) use tolerance 0.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence
from enum import Enum

import numpy as np

from repro.exceptions import DetectorConfigurationError, NotFittedError, WindowError
from repro.sequences.windows import pack_windows, window_count, windows_array


class FittedState(Enum):
    """Lifecycle of a detector instance."""

    UNFITTED = "unfitted"
    FITTED = "fitted"


class AnomalyDetector(abc.ABC):
    """Abstract base class for fixed-window sequence anomaly detectors.

    Args:
        window_length: the detector window ``DW``; must be at least 2
            (the paper's minimum — a window of 1 carries no sequential
            ordering and has no analogue for the Markov/NN detectors).
        alphabet_size: number of symbol codes the detector will see.
        response_tolerance: slack under which a response still counts
            as maximal (see module docstring).
    """

    #: Human-readable detector family name; subclasses override.
    name: str = "abstract"

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        response_tolerance: float = 0.0,
    ) -> None:
        if window_length < 2:
            raise DetectorConfigurationError(
                f"window_length must be >= 2, got {window_length}"
            )
        if alphabet_size < 2:
            raise DetectorConfigurationError(
                f"alphabet_size must be >= 2, got {alphabet_size}"
            )
        if not 0.0 <= response_tolerance < 1.0:
            raise DetectorConfigurationError(
                f"response_tolerance must lie in [0, 1), got {response_tolerance}"
            )
        self._window_length = int(window_length)
        self._alphabet_size = int(alphabet_size)
        self._response_tolerance = float(response_tolerance)
        self._state = FittedState.UNFITTED
        self._window_cache: object | None = None

    # -- configuration ---------------------------------------------------------

    @property
    def window_length(self) -> int:
        """The detector window ``DW``."""
        return self._window_length

    @property
    def alphabet_size(self) -> int:
        """Number of symbol codes the detector accepts."""
        return self._alphabet_size

    @property
    def response_tolerance(self) -> float:
        """Slack under which a response counts as maximal."""
        return self._response_tolerance

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._state is FittedState.FITTED

    def describe(self) -> str:
        """One-line description used by reports."""
        return f"{self.name}(DW={self._window_length})"

    # -- shared window artifacts --------------------------------------------------

    def attach_cache(self, cache: object | None) -> "AnomalyDetector":
        """Share a :class:`repro.runtime.WindowCache` with this detector.

        Once attached, the detector's sliding and packing go through
        the cache, so every consumer of the same (stream, window
        length) pair — other detector families included — reuses one
        derivation.  Pass ``None`` to detach.  Responses are unchanged
        either way; the cache only eliminates repeated work.

        Returns:
            ``self``, for chaining.
        """
        self._window_cache = cache
        return self

    def _windows_view(
        self, stream: np.ndarray, window_length: int | None = None
    ) -> np.ndarray:
        """Sliding-window view of ``stream``, via the attached cache."""
        length = self._window_length if window_length is None else window_length
        cache = self._window_cache
        if cache is not None:
            return cache.windows(stream, length)  # type: ignore[attr-defined]
        return windows_array(stream, length)

    def _packed_view(self, stream: np.ndarray) -> np.ndarray:
        """Packed windows of ``stream``, via the attached cache."""
        cache = self._window_cache
        if cache is not None:
            return cache.packed(  # type: ignore[attr-defined]
                stream, self._window_length, self._alphabet_size
            )
        return pack_windows(
            windows_array(stream, self._window_length), self._alphabet_size
        )

    def _shared_unique_counts(
        self, stream: np.ndarray, window_length: int | None = None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Cached (distinct windows, counts) of ``stream``, or ``None``.

        The frequency table every family's fit reduces to, derived from
        one sort per (stream, window length) shared across families.
        ``None`` without an attached cache — callers keep their own
        derivation as the uncached fallback.
        """
        cache = self._window_cache
        if cache is None:
            return None
        length = self._window_length if window_length is None else window_length
        return cache.unique_counts(  # type: ignore[attr-defined]
            stream, length, self._alphabet_size
        )

    # -- training ----------------------------------------------------------------

    def fit(self, training_stream: Sequence[int] | np.ndarray) -> "AnomalyDetector":
        """Acquire normal behavior from a single training stream.

        Args:
            training_stream: encoded stream of symbol codes; must be
                at least one window long.

        Returns:
            ``self``, for chaining.
        """
        return self.fit_many([training_stream])

    def fit_many(
        self, training_streams: Iterable[Sequence[int] | np.ndarray]
    ) -> "AnomalyDetector":
        """Acquire normal behavior from multiple independent streams.

        Windows never span stream junctions, matching the convention
        for pooling per-process traces.

        Raises:
            WindowError: if no stream contains a full window, or codes
                fall outside the alphabet.
        """
        streams = [self._validated(stream) for stream in training_streams]
        usable = [s for s in streams if len(s) >= self._window_length]
        if not usable:
            raise WindowError(
                f"no training stream contains a window of length {self._window_length}"
            )
        self._fit(usable)
        self._state = FittedState.FITTED
        return self

    def _validated(self, stream: Sequence[int] | np.ndarray) -> np.ndarray:
        data = np.asarray(stream)
        if data.ndim != 1:
            raise WindowError(f"stream must be one-dimensional, got shape {data.shape}")
        if len(data) and (data.min() < 0 or data.max() >= self._alphabet_size):
            raise WindowError(
                "stream contains codes outside the alphabet "
                f"[0, {self._alphabet_size - 1}]"
            )
        return data.astype(np.int64, copy=False)

    # -- scoring ----------------------------------------------------------------

    def score_stream(self, test_stream: Sequence[int] | np.ndarray) -> np.ndarray:
        """Responses for every window of ``test_stream``.

        Returns:
            ``float64`` array of length ``len(test_stream) - DW + 1``;
            entry ``i`` is the response for the window starting at ``i``.

        Raises:
            NotFittedError: if :meth:`fit` has not been called.
            WindowError: if the stream is shorter than one window.
        """
        self._require_fitted()
        data = self._validated(test_stream)
        if len(data) < self._window_length:
            raise WindowError(
                f"test stream of length {len(data)} is shorter than the "
                f"detector window {self._window_length}"
            )
        responses = self._score(data)
        expected = window_count(len(data), self._window_length)
        if responses.shape != (expected,):
            raise WindowError(
                f"{self.name} produced {responses.shape} responses, "
                f"expected ({expected},)"
            )
        return responses

    def decision_stream(
        self, test_stream: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Boolean alarms under the paper's maximal-response criterion.

        Equivalent to thresholding :meth:`score_stream` at
        ``1 - response_tolerance`` — the detector's own notion of a
        maximal response.  Deployments wanting other operating points
        should threshold the response stream explicitly (see
        :mod:`repro.detectors.threshold`).
        """
        responses = self.score_stream(test_stream)
        return responses >= 1.0 - self._response_tolerance

    def score_windows(self, windows: Sequence[Sequence[int]] | np.ndarray) -> np.ndarray:
        """Responses for a batch of independent windows.

        Unlike :meth:`score_stream`, the rows of ``windows`` are
        unrelated events — entry ``i`` of the result is exactly
        :meth:`score_window` of row ``i``.  This is the entry point of
        unique-window memoized scoring: deduplicate a repetitive test
        stream, score each distinct window once here, and scatter the
        responses back (see :mod:`repro.runtime`).

        Args:
            windows: 2-D batch of shape ``(n, DW)`` with in-alphabet
                codes.

        Returns:
            ``float64`` array of length ``n``.

        Raises:
            NotFittedError: if :meth:`fit` has not been called.
            WindowError: on shape or alphabet violations.
        """
        self._require_fitted()
        data = np.asarray(windows)
        if data.ndim != 2 or data.shape[1] != self._window_length:
            raise WindowError(
                f"expected a (n, {self._window_length}) window batch, "
                f"got shape {data.shape}"
            )
        if data.size and (data.min() < 0 or data.max() >= self._alphabet_size):
            raise WindowError(
                "window codes outside the alphabet "
                f"[0, {self._alphabet_size - 1}]"
            )
        data = data.astype(np.int64, copy=False)
        responses = self._score_windows(data)
        if responses.shape != (len(data),):
            raise WindowError(
                f"{self.name} produced {responses.shape} batch responses, "
                f"expected ({len(data)},)"
            )
        return responses

    def score_batch(
        self, windows: Sequence[Sequence[int]] | np.ndarray
    ) -> np.ndarray:
        """Vectorized kernel entry point; alias of :meth:`score_windows`.

        Each family backs this with a batch kernel from
        :mod:`repro.runtime.kernels` (packed ``searchsorted`` for the
        sequence detectors, count-table lookups for Markov, broadcast
        comparison tensors for the positional metrics, one batched
        forward pass for the network), so an entire unique-window batch
        is scored in a handful of numpy passes.
        """
        return self.score_windows(windows)

    def score_window(self, window: Sequence[int]) -> float:
        """Response for a single window (length exactly ``DW``)."""
        data = np.asarray(window)
        if data.shape != (self._window_length,):
            raise WindowError(
                f"expected a window of length {self._window_length}, "
                f"got shape {data.shape}"
            )
        return float(self.score_stream(data)[0])

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{self.name} detector must be fitted before scoring"
            )

    # -- subclass contract --------------------------------------------------------

    @abc.abstractmethod
    def _fit(self, training_streams: list[np.ndarray]) -> None:
        """Build the normal-behavior model from validated streams."""

    @abc.abstractmethod
    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        """Produce per-window responses in ``[0, 1]`` for a validated stream."""

    def _score_windows(self, windows: np.ndarray) -> np.ndarray:
        """Responses for a validated ``(n, DW)`` batch of windows.

        The default treats each row as a minimal stream of exactly one
        window.  Families with a vectorized batch path override this.
        """
        return np.fromiter(
            (float(self._score(row)[0]) for row in windows),
            dtype=np.float64,
            count=len(windows),
        )

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(window_length={self._window_length}, {state})"
