"""Detector protocol shared by all similarity metrics.

A detector is configured with a window length, *fitted* on one or more
training streams, and then produces one response per window of a test
stream.  Responses lie in ``[0, 1]``: 0 is completely normal, 1 is
maximally anomalous.  The response for the window starting at stream
index ``i`` is stored at index ``i`` of the response array, so a test
stream of length ``L`` yields ``L - DW + 1`` responses.

Detectors that emit graded responses (Markov, neural network) also
declare a ``response_tolerance``: the slack within which a response is
considered *maximal* by the evaluation harness.  Binary detectors
(Stide, and L&B's extremes) use tolerance 0.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence
from enum import Enum

import numpy as np

from repro.exceptions import DetectorConfigurationError, NotFittedError, WindowError
from repro.runtime import telemetry
from repro.runtime.fitindex import (
    FitRecord,
    WarmStartPolicy,
    WarmStartRegistry,
)
from repro.runtime.kernels import (
    KERNEL_TIERS,
    TIER_AUTO,
    TIER_AUTOMATON,
    resolve_kernel_tier,
)
from repro.runtime.store import fit_key, streams_digest
from repro.sequences.windows import pack_windows, window_count, windows_array


class FittedState(Enum):
    """Lifecycle of a detector instance."""

    UNFITTED = "unfitted"
    FITTED = "fitted"


class AnomalyDetector(abc.ABC):
    """Abstract base class for fixed-window sequence anomaly detectors.

    Args:
        window_length: the detector window ``DW``; must be at least 2
            (the paper's minimum — a window of 1 carries no sequential
            ordering and has no analogue for the Markov/NN detectors).
        alphabet_size: number of symbol codes the detector will see.
        response_tolerance: slack under which a response still counts
            as maximal (see module docstring).
    """

    #: Human-readable detector family name; subclasses override.
    name: str = "abstract"

    #: Whether this family acts on :meth:`attach_warm_start`.  Only
    #: warm-capable families mark warm mode in their store fingerprint
    #: (a warm-trained state is a different artifact than a cold one);
    #: closed-form fits are mode-independent and share entries.
    _warm_capable: bool = False

    def __init__(
        self,
        window_length: int,
        alphabet_size: int,
        response_tolerance: float = 0.0,
    ) -> None:
        if window_length < 2:
            raise DetectorConfigurationError(
                f"window_length must be >= 2, got {window_length}"
            )
        if alphabet_size < 2:
            raise DetectorConfigurationError(
                f"alphabet_size must be >= 2, got {alphabet_size}"
            )
        if not 0.0 <= response_tolerance < 1.0:
            raise DetectorConfigurationError(
                f"response_tolerance must lie in [0, 1), got {response_tolerance}"
            )
        self._window_length = int(window_length)
        self._alphabet_size = int(alphabet_size)
        self._response_tolerance = float(response_tolerance)
        self._state = FittedState.UNFITTED
        self._window_cache: object | None = None
        self._kernel_tier: str = TIER_AUTO
        self._training_stream: np.ndarray | None = None
        self._store: object | None = None
        self._warm_policy: WarmStartPolicy | None = None
        self._warm_registry: WarmStartRegistry | None = None
        self._training_digest: str | None = None
        self._fit_hint: FitRecord | None = None
        self._last_fit_report: FitRecord | None = None

    # -- configuration ---------------------------------------------------------

    @property
    def window_length(self) -> int:
        """The detector window ``DW``."""
        return self._window_length

    @property
    def alphabet_size(self) -> int:
        """Number of symbol codes the detector accepts."""
        return self._alphabet_size

    @property
    def response_tolerance(self) -> float:
        """Slack under which a response counts as maximal."""
        return self._response_tolerance

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._state is FittedState.FITTED

    def describe(self) -> str:
        """One-line description used by reports."""
        return f"{self.name}(DW={self._window_length})"

    # -- shared window artifacts --------------------------------------------------

    def attach_cache(self, cache: object | None) -> "AnomalyDetector":
        """Share a :class:`repro.runtime.WindowCache` with this detector.

        Once attached, the detector's sliding and packing go through
        the cache, so every consumer of the same (stream, window
        length) pair — other detector families included — reuses one
        derivation.  Pass ``None`` to detach.  Responses are unchanged
        either way; the cache only eliminates repeated work.

        Returns:
            ``self``, for chaining.
        """
        self._window_cache = cache
        return self

    def attach_kernel_tier(self, tier: str | None) -> "AnomalyDetector":
        """Select the membership kernel tier (``None`` means ``auto``).

        ``auto`` (the default) lets the membership families (Stide,
        t-Stide) score through the one-pass multi-order automaton of
        :mod:`repro.runtime.automaton` whenever it is applicable *and*
        a :class:`~repro.runtime.WindowCache` is attached to amortize
        the profile across cells; ``automaton`` forces the profile
        path even without a cache (still falling back to bisection for
        unpackable or over-order cells); ``bisect`` pins the classic
        per-DW ``searchsorted`` path.  Responses are bit-identical
        across tiers — the dispatcher only changes how membership is
        resolved, never its value.  Families without a membership
        kernel ignore the setting.

        Returns:
            ``self``, for chaining.
        """
        value = TIER_AUTO if tier is None else str(tier)
        if value not in KERNEL_TIERS:
            raise DetectorConfigurationError(
                f"unknown kernel tier {value!r}; expected one of {KERNEL_TIERS}"
            )
        self._kernel_tier = value
        return self

    @property
    def kernel_tier(self) -> str:
        """The requested membership kernel tier."""
        return self._kernel_tier

    def attach_store(self, store: object | None) -> "AnomalyDetector":
        """Back this detector with a persistent artifact store.

        With a :class:`repro.runtime.store.ArtifactStore` attached,
        :meth:`fit_many` first looks the fitted state up under the
        content-addressed key of (training bytes, configuration, code
        version) and only fits on a miss, writing the fresh state back
        for every later run.  Families without a serializable state
        (none currently) simply always fit.  Pass ``None`` to detach.

        Returns:
            ``self``, for chaining.
        """
        self._store = store
        return self

    def attach_warm_start(
        self,
        policy: WarmStartPolicy | None,
        registry: WarmStartRegistry | None = None,
    ) -> "AnomalyDetector":
        """Allow iterative fits to warm-start from adjacent-DW donors.

        Only the iterative families (neural network) act on this; the
        closed-form detectors fit exactly as before.  Pass ``None`` to
        disable — the ``--no-warm-start`` escape hatch for
        bit-reproducible paper-fidelity runs.

        Returns:
            ``self``, for chaining.
        """
        self._warm_policy = policy
        self._warm_registry = registry if policy is not None else None
        return self

    @property
    def last_fit_report(self) -> FitRecord | None:
        """How the most recent :meth:`fit_many` obtained its fit."""
        return self._last_fit_report

    def config_fingerprint(self, window_length: int | None = None) -> str:
        """Canonical description of everything that shapes the fit.

        Concatenates the family name, window length, alphabet size and
        the family's hyperparameters (:meth:`_extra_fingerprint`); fed
        into :func:`repro.runtime.store.fit_key` together with the
        training-stream digest.  ``window_length`` overrides the
        detector's own DW — used to address a neighbor's store entry
        when hunting warm-start donors.
        """
        length = self._window_length if window_length is None else window_length
        parts = [
            f"family={self.name}",
            f"dw={length}",
            f"as={self._alphabet_size}",
            f"tol={self._response_tolerance!r}",
        ]
        extra = self._extra_fingerprint()
        if extra:
            parts.append(extra)
        if self._warm_capable and self._warm_policy is not None:
            # A warm-trained state is a different artifact than a cold
            # one; keep the two address spaces disjoint so
            # --no-warm-start runs never load warm-trained weights.
            parts.append("warm=1")
        return ";".join(parts)

    def family_fingerprint(self) -> str:
        """:meth:`config_fingerprint` minus the window length.

        The warm-start registry key: donors are shared across window
        lengths of the same family and hyperparameters.
        """
        parts = [
            f"family={self.name}",
            f"as={self._alphabet_size}",
            f"tol={self._response_tolerance!r}",
        ]
        extra = self._extra_fingerprint()
        if extra:
            parts.append(extra)
        return ";".join(parts)

    def _extra_fingerprint(self) -> str:
        """Family hyperparameters beyond (DW, AS); subclasses override."""
        return ""

    def _fit_state(self) -> dict[str, np.ndarray] | None:
        """Serialize the fitted model as named arrays, or ``None``.

        ``None`` opts the family out of the artifact store.  Subclasses
        returning a state must make :meth:`_load_fit_state` its exact
        inverse: a load followed by scoring must be bit-identical to
        fitting.
        """
        return None

    def _load_fit_state(self, state: dict[str, np.ndarray]) -> bool:
        """Restore a :meth:`_fit_state` payload; ``True`` on success.

        Must tolerate arbitrary payloads (the store is
        content-addressed but corruption-tolerant): return ``False``
        for anything unusable and the caller falls back to fitting.
        """
        return False

    def _windows_view(
        self, stream: np.ndarray, window_length: int | None = None
    ) -> np.ndarray:
        """Sliding-window view of ``stream``, via the attached cache."""
        length = self._window_length if window_length is None else window_length
        cache = self._window_cache
        if cache is not None:
            return cache.windows(stream, length)  # type: ignore[attr-defined]
        return windows_array(stream, length)

    def _packed_view(self, stream: np.ndarray) -> np.ndarray:
        """Packed windows of ``stream``, via the attached cache."""
        cache = self._window_cache
        if cache is not None:
            return cache.packed(  # type: ignore[attr-defined]
                stream, self._window_length, self._alphabet_size
            )
        return pack_windows(
            windows_array(stream, self._window_length), self._alphabet_size
        )

    def _shared_unique_counts(
        self, stream: np.ndarray, window_length: int | None = None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Cached (distinct windows, counts) of ``stream``, or ``None``.

        The frequency table every family's fit reduces to, derived from
        one sort per (stream, window length) shared across families.
        ``None`` without an attached cache — callers keep their own
        derivation as the uncached fallback.
        """
        cache = self._window_cache
        if cache is None:
            return None
        length = self._window_length if window_length is None else window_length
        return cache.unique_counts(  # type: ignore[attr-defined]
            stream, length, self._alphabet_size
        )

    def _packed_database(self, stream: np.ndarray) -> np.ndarray | None:
        """Cached sorted packed windows of ``stream``, or ``None``.

        The membership table Stide/t-Stide fits reduce to at packable
        cells, served by :meth:`WindowCache.packed_db` so the fit and
        the automaton tier's per-order databases are one shared array.
        ``None`` without an attached cache.
        """
        cache = self._window_cache
        if cache is None:
            return None
        return cache.packed_db(  # type: ignore[attr-defined]
            stream, self._window_length, self._alphabet_size
        )

    def _membership_context(
        self, test_stream: np.ndarray
    ) -> tuple[np.ndarray, object] | None:
        """The automaton tier's (match-length profile, stream codes).

        ``None`` routes the caller to the bisect tier.  The automaton
        runs only when the resolved tier admits it (packable cell, DW
        within the profile order — see
        :func:`repro.runtime.kernels.resolve_kernel_tier`), the fit
        retained a single training stream, and either a cache is
        attached (``auto``) or the tier is forced (``automaton``,
        which then computes an uncached profile).  The returned codes
        object serves the packed keys t-Stide's common-table bisect
        needs at the detector's own DW.
        """
        from repro.runtime.automaton import (
            AUTOMATON_MAX_ORDER,
            StreamCodes,
            match_profile,
            training_databases,
        )

        tier = resolve_kernel_tier(
            self._kernel_tier, self._alphabet_size, self._window_length
        )
        if tier != TIER_AUTOMATON:
            return None
        train = self._training_stream
        if train is None:
            return None
        cache = self._window_cache
        if cache is not None:
            codes = cache.stream_codes(  # type: ignore[attr-defined]
                test_stream, self._alphabet_size, AUTOMATON_MAX_ORDER
            )
            profile = cache.membership_profile(  # type: ignore[attr-defined]
                test_stream, train, self._alphabet_size, AUTOMATON_MAX_ORDER
            )
            return profile, codes
        if self._kernel_tier != TIER_AUTOMATON:
            # auto without a cache: nothing amortizes the profile, so
            # the per-DW bisection stays the cheaper plan.
            return None
        codes = StreamCodes(
            test_stream, self._alphabet_size, AUTOMATON_MAX_ORDER
        )
        databases = training_databases(
            train, self._alphabet_size, AUTOMATON_MAX_ORDER
        )
        return match_profile(codes, databases), codes

    # -- streaming delta fits -----------------------------------------------------

    @property
    def supports_delta_fit(self) -> bool:
        """Whether :meth:`update_batch` can extend this fitted state.

        ``True`` only for the count-based families (Stide, t-Stide,
        Markov) whose fitted state is a mergeable frequency table *and*
        whose current fit holds the packed representation.  Families
        without an incremental form (e.g. the neural network) refit.
        """
        return False

    def update_batch(
        self,
        new_events: Sequence[int] | np.ndarray,
        prior_tail: Sequence[int] | np.ndarray,
    ) -> "AnomalyDetector":
        """Fold a batch of appended training events into the fit.

        The detector was fitted on some stream ``S``; the caller is
        appending ``new_events`` to it.  The only windows of
        ``S ++ new_events`` not already counted are the windows of
        ``prior_tail ++ new_events`` — ``prior_tail`` must be the last
        ``DW - 1`` events of ``S`` — so the delta is one slide-and-
        pack plus ``np.unique`` over that short tail alone, merged
        into the already-sorted packed tables by bisection
        (:func:`~repro.runtime.kernels.merge_sorted_unique` /
        :func:`~repro.runtime.kernels.merge_sorted_counts`).  The
        result is bit-identical to a cold refit on the full stream
        (``repro.runtime.deltafit.verify_delta`` asserts it), at a
        cost proportional to the batch, not the stream: a batch whose
        windows are all already known touches ``O(batch log table)``
        elements and allocates nothing.

        Returns:
            ``self``, for chaining.

        Raises:
            DetectorConfigurationError: for families without a delta
                path, or fits that lost the packed representation.
            NotFittedError: if :meth:`fit` has not been called.
            WindowError: on a wrong-length ``prior_tail``, an empty
                batch, or out-of-alphabet codes.
        """
        raise DetectorConfigurationError(
            f"{self.name} has no streaming delta-fit path; refit instead"
        )

    def clone_unfitted(self) -> "AnomalyDetector":
        """A fresh unfitted detector with this one's configuration.

        The delta-fit verify hook fits the clone cold on the full
        stream and compares states bit for bit.  Subclasses with extra
        hyperparameters override to carry them.
        """
        return type(self)(self._window_length, self._alphabet_size)

    def export_fit_state(self) -> dict[str, np.ndarray] | None:
        """The serialized fitted model (public :meth:`_fit_state`)."""
        self._require_fitted()
        return self._fit_state()

    def import_fit_state(self, state: dict[str, np.ndarray]) -> bool:
        """Adopt a serialized fitted state; ``True`` on success.

        The public inverse of :meth:`export_fit_state` for callers
        that persist models outside the fit-key protocol (the sharded
        fleet store).  On success the detector is fitted; the automaton
        tier stays off (no training stream was retained), which is
        bit-identical to the bisect tier by construction.
        """
        if not self._load_fit_state(dict(state)):
            return False
        self._training_stream = None
        self._training_digest = None
        self._state = FittedState.FITTED
        return True

    def state_nbytes(self) -> int:
        """Approximate bytes held by the serialized fitted state."""
        state = self._fit_state() if self.is_fitted else None
        if not state:
            return 0
        return int(sum(np.asarray(a).nbytes for a in state.values()))

    def _delta_combined(
        self,
        new_events: Sequence[int] | np.ndarray,
        prior_tail: Sequence[int] | np.ndarray,
    ) -> np.ndarray:
        """The validated combined tail ``prior_tail ++ new_events``.

        Every window of the combined tail is either one of the
        appended windows or (at position 0 for lengths up to
        ``DW - 1``) the old stream's final gram — the shared setup for
        each family's :meth:`update_batch`.
        """
        self._require_fitted()
        tail = self._validate_now(prior_tail)
        new = self._validate_now(new_events)
        if len(tail) != self._window_length - 1:
            raise WindowError(
                f"prior_tail must hold the last {self._window_length - 1} "
                f"fitted events, got {len(tail)}"
            )
        if len(new) == 0:
            raise WindowError("update_batch requires at least one new event")
        return np.concatenate([tail, new])

    def _delta_packed(
        self, combined: np.ndarray, window_length: int | None = None
    ) -> np.ndarray:
        """Packed windows of a delta tail, bypassing the window cache.

        Delta tails are one-shot streams (a fresh batch every call),
        so caching their sliding views would only grow the cache; the
        direct slide-and-pack is a handful of vector ops over a batch-
        sized array.
        """
        length = self._window_length if window_length is None else window_length
        return pack_windows(windows_array(combined, length), self._alphabet_size)

    def _note_delta_update(self) -> None:
        """Bookkeeping after a successful in-place delta merge.

        Drops the retained training stream: the automaton tier's
        match-length profile is defined against the fit-time stream,
        which the merge just outgrew, so scoring routes to the bisect
        tier (bit-identical responses).  The stream digest is likewise
        stale — delta-updated state is persisted by the caller's own
        keying (e.g. the sharded fleet store), not the fit-key
        protocol.
        """
        self._training_stream = None
        self._training_digest = None
        telemetry.count("detector.delta_update")

    # -- training ----------------------------------------------------------------

    def fit(self, training_stream: Sequence[int] | np.ndarray) -> "AnomalyDetector":
        """Acquire normal behavior from a single training stream.

        Args:
            training_stream: encoded stream of symbol codes; must be
                at least one window long.

        Returns:
            ``self``, for chaining.
        """
        return self.fit_many([training_stream])

    def fit_many(
        self, training_streams: Iterable[Sequence[int] | np.ndarray]
    ) -> "AnomalyDetector":
        """Acquire normal behavior from multiple independent streams.

        Windows never span stream junctions, matching the convention
        for pooling per-process traces.

        Raises:
            WindowError: if no stream contains a full window, or codes
                fall outside the alphabet.
        """
        streams = [self._validated(stream) for stream in training_streams]
        usable = [s for s in streams if len(s) >= self._window_length]
        if not usable:
            raise WindowError(
                f"no training stream contains a window of length {self._window_length}"
            )
        self._last_fit_report = self._resolve_fit(usable)
        self._state = FittedState.FITTED
        return self

    def _resolve_fit(self, usable: list[np.ndarray]) -> FitRecord:
        """Obtain the fitted state: from the store, warm, or cold.

        The store lookup happens here so every family gets persistence
        for free; the warm-start attempt happens inside the iterative
        families' ``_fit`` (they know their own loss), which reports
        back through ``self._fit_hint``.
        """
        # Retained for the automaton kernel tier, store hit or not:
        # the match-length profile is defined against one training
        # stream (multi-stream fits keep the bisect tier).
        self._training_stream = usable[0] if len(usable) == 1 else None
        store = self._store
        key: str | None = None
        if store is not None or self._warm_registry is not None:
            # One digest serves the store key and the warm-donor key.
            self._training_digest = streams_digest(usable)
        if store is not None:
            key = fit_key(self._training_digest, self.config_fingerprint())
            held = store.get(key)  # type: ignore[attr-defined]
            if held is not None and self._load_fit_state(held):
                return FitRecord(origin="store", store_key=key)
        self._fit_hint = None
        self._fit(usable)
        hint = self._fit_hint or FitRecord()
        if store is not None:
            state = self._fit_state()
            if state is not None:
                store.put(key, state)  # type: ignore[attr-defined]
        return FitRecord(
            origin=hint.origin,
            store_key=key,
            warm_donor_window=hint.warm_donor_window,
            warm_disabled=hint.warm_disabled,
        )

    def _validated(self, stream: Sequence[int] | np.ndarray) -> np.ndarray:
        """Canonical int64 view of ``stream``, alphabet-checked.

        With a cache attached, validation of ndarray streams is
        memoized per (stream identity, alphabet): ``fit_many`` used to
        re-validate the same training stream once per detector of a
        sweep, which is pure rescanning — see the micro-benchmark note
        in ``benchmarks/bench_sweep.py``.  Non-ndarray inputs (lists)
        have no stable identity and validate inline.
        """
        cache = self._window_cache
        if cache is not None and isinstance(stream, np.ndarray):
            return cache.validated(  # type: ignore[attr-defined]
                stream,
                self._alphabet_size,
                lambda: self._validate_now(stream),
            )
        return self._validate_now(stream)

    def _validate_now(self, stream: Sequence[int] | np.ndarray) -> np.ndarray:
        data = np.asarray(stream)
        if data.ndim != 1:
            raise WindowError(f"stream must be one-dimensional, got shape {data.shape}")
        if len(data) and (data.min() < 0 or data.max() >= self._alphabet_size):
            raise WindowError(
                "stream contains codes outside the alphabet "
                f"[0, {self._alphabet_size - 1}]"
            )
        return data.astype(np.int64, copy=False)

    # -- scoring ----------------------------------------------------------------

    def score_stream(self, test_stream: Sequence[int] | np.ndarray) -> np.ndarray:
        """Responses for every window of ``test_stream``.

        Returns:
            ``float64`` array of length ``len(test_stream) - DW + 1``;
            entry ``i`` is the response for the window starting at ``i``.

        Raises:
            NotFittedError: if :meth:`fit` has not been called.
            WindowError: if the stream is shorter than one window.
        """
        self._require_fitted()
        data = self._validated(test_stream)
        if len(data) < self._window_length:
            raise WindowError(
                f"test stream of length {len(data)} is shorter than the "
                f"detector window {self._window_length}"
            )
        responses = self._score(data)
        expected = window_count(len(data), self._window_length)
        if responses.shape != (expected,):
            raise WindowError(
                f"{self.name} produced {responses.shape} responses, "
                f"expected ({expected},)"
            )
        return responses

    def decision_stream(
        self, test_stream: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Boolean alarms under the paper's maximal-response criterion.

        Equivalent to thresholding :meth:`score_stream` at
        ``1 - response_tolerance`` — the detector's own notion of a
        maximal response.  Deployments wanting other operating points
        should threshold the response stream explicitly (see
        :mod:`repro.detectors.threshold`).
        """
        responses = self.score_stream(test_stream)
        return responses >= 1.0 - self._response_tolerance

    def score_windows(self, windows: Sequence[Sequence[int]] | np.ndarray) -> np.ndarray:
        """Responses for a batch of independent windows.

        Unlike :meth:`score_stream`, the rows of ``windows`` are
        unrelated events — entry ``i`` of the result is exactly
        :meth:`score_window` of row ``i``.  This is the entry point of
        unique-window memoized scoring: deduplicate a repetitive test
        stream, score each distinct window once here, and scatter the
        responses back (see :mod:`repro.runtime`).

        Args:
            windows: 2-D batch of shape ``(n, DW)`` with in-alphabet
                codes.

        Returns:
            ``float64`` array of length ``n``.

        Raises:
            NotFittedError: if :meth:`fit` has not been called.
            WindowError: on shape or alphabet violations.
        """
        self._require_fitted()
        data = np.asarray(windows)
        if data.ndim != 2 or data.shape[1] != self._window_length:
            raise WindowError(
                f"expected a (n, {self._window_length}) window batch, "
                f"got shape {data.shape}"
            )
        if data.size and (data.min() < 0 or data.max() >= self._alphabet_size):
            raise WindowError(
                "window codes outside the alphabet "
                f"[0, {self._alphabet_size - 1}]"
            )
        data = data.astype(np.int64, copy=False)
        telemetry.observe("kernel.batch_size", len(data))
        responses = self._score_windows(data)
        if responses.shape != (len(data),):
            raise WindowError(
                f"{self.name} produced {responses.shape} batch responses, "
                f"expected ({len(data)},)"
            )
        return responses

    def score_batch(
        self, windows: Sequence[Sequence[int]] | np.ndarray
    ) -> np.ndarray:
        """Vectorized kernel entry point; alias of :meth:`score_windows`.

        Each family backs this with a batch kernel from
        :mod:`repro.runtime.kernels` (packed ``searchsorted`` for the
        sequence detectors, count-table lookups for Markov, broadcast
        comparison tensors for the positional metrics, one batched
        forward pass for the network), so an entire unique-window batch
        is scored in a handful of numpy passes.
        """
        return self.score_windows(windows)

    def score_window(self, window: Sequence[int]) -> float:
        """Response for a single window (length exactly ``DW``)."""
        data = np.asarray(window)
        if data.shape != (self._window_length,):
            raise WindowError(
                f"expected a window of length {self._window_length}, "
                f"got shape {data.shape}"
            )
        return float(self.score_stream(data)[0])

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{self.name} detector must be fitted before scoring"
            )

    # -- subclass contract --------------------------------------------------------

    @abc.abstractmethod
    def _fit(self, training_streams: list[np.ndarray]) -> None:
        """Build the normal-behavior model from validated streams."""

    @abc.abstractmethod
    def _score(self, test_stream: np.ndarray) -> np.ndarray:
        """Produce per-window responses in ``[0, 1]`` for a validated stream."""

    def _score_windows(self, windows: np.ndarray) -> np.ndarray:
        """Responses for a validated ``(n, DW)`` batch of windows.

        The default treats each row as a minimal stream of exactly one
        window.  Families with a vectorized batch path override this.
        """
        return np.fromiter(
            (float(self._score(row)[0]) for row in windows),
            dtype=np.float64,
            count=len(windows),
        )

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(window_length={self._window_length}, {state})"
