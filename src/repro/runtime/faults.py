"""Deterministic fault injection for the resilient sweep harness.

Recovery code that is only exercised by real outages is recovery code
that does not work.  This module injects failures into sweep task
execution on a **seeded, reproducible schedule** so the test suite can
prove every recovery path of :mod:`repro.runtime.resilience`:

* ``raise``   — the task raises a :class:`~repro.exceptions.TransientTaskError`
  (a crash the retry budget should absorb);
* ``hang``    — the task sleeps past its wall-clock timeout before
  completing (exercises timeout detection and cancellation);
* ``latency`` — the task stalls for a *bounded, seeded* duration drawn
  below ``latency_seconds`` and then completes normally.  Unlike
  ``hang`` (which is sized to trip an armed timeout), latency models a
  slow-but-healthy path: both the sweep resilience tests and the
  serving chaos suite use it to inject slowness without tripping
  wall-clock timeouts unintentionally;
* ``corrupt`` — the task returns a truncated block (exercises result
  validation, which converts corruption into a retryable failure);
* ``crash``   — the task hard-kills its worker process via
  ``os._exit`` (exercises ``BrokenProcessPool`` degradation).  Outside
  a child process this downgrades to a ``raise`` fault so an
  in-process backend can never take the interpreter down;
* ``fatal``   — the task raises an :class:`~repro.exceptions.EvaluationError`
  (the non-retryable taxonomy branch: the sweep must abort, keeping
  its checkpoint).

Whether a given (task, attempt) faults — and with which kind — is a
pure function of ``(seed, key, attempt)``: the schedule draws from
``random.Random`` seeded with that triple, which CPython seeds from the
string's bytes (not ``hash()``), so decisions are identical across
runs, threads, and worker processes.  A schedule is a frozen dataclass
of primitives and therefore picklable into process workers.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import ClassVar

from repro.exceptions import (
    DetectorConfigurationError,
    EvaluationError,
    TransientTaskError,
)

#: Every fault kind a sweep schedule may inject.
FAULT_KINDS: tuple[str, ...] = (
    "raise",
    "hang",
    "latency",
    "corrupt",
    "crash",
    "fatal",
)


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, deterministic plan of which task attempts fail, and how.

    Args:
        rate: probability that an eligible attempt faults, in [0, 1].
        seed: schedule seed; same seed, same decisions, everywhere.
        kinds: fault kinds to draw from (uniformly) when an attempt
            faults; a subset of :data:`FAULT_KINDS`.
        max_attempt: only attempts ``<= max_attempt`` are eligible, so
            a retry budget of at least ``max_attempt`` always recovers
            (except for ``fatal`` faults, which are designed not to).
        hang_seconds: how long a ``hang`` fault stalls before letting
            the task proceed.  Keep it small in tests: a timed-out
            thread attempt is abandoned, not killed, and runs to the
            end of the stall in the background.
        latency_seconds: upper bound on a ``latency`` fault's stall.
            The actual stall is drawn uniformly below the bound by a
            generator seeded with ``(seed, key, attempt)``, so the
            injected slowness is reproducible and never exceeds a
            budget the caller sized against its timeouts.
    """

    #: Kinds instances of this schedule class accept; subclasses (the
    #: serving chaos harness) override to extend the vocabulary.
    ALLOWED_KINDS: ClassVar[tuple[str, ...]] = FAULT_KINDS

    rate: float = 0.0
    seed: int = 0
    kinds: tuple[str, ...] = ("raise",)
    max_attempt: int = 1
    hang_seconds: float = 0.25
    latency_seconds: float = 0.05

    def __post_init__(self) -> None:
        allowed = type(self).ALLOWED_KINDS
        if not 0.0 <= self.rate <= 1.0:
            raise DetectorConfigurationError(
                f"fault rate must lie in [0, 1], got {self.rate}"
            )
        unknown = [kind for kind in self.kinds if kind not in allowed]
        if unknown or not self.kinds:
            raise DetectorConfigurationError(
                f"unknown fault kinds {unknown}; available: {', '.join(allowed)}"
            )
        if self.max_attempt < 1:
            raise DetectorConfigurationError(
                f"max_attempt must be >= 1, got {self.max_attempt}"
            )
        if self.hang_seconds <= 0:
            raise DetectorConfigurationError(
                f"hang_seconds must be > 0, got {self.hang_seconds}"
            )
        if self.latency_seconds <= 0:
            raise DetectorConfigurationError(
                f"latency_seconds must be > 0, got {self.latency_seconds}"
            )

    def decide(self, key: str, attempt: int) -> str | None:
        """The fault kind for one (task, attempt), or ``None``.

        Deterministic: the same ``(seed, key, attempt)`` triple always
        returns the same decision.
        """
        if self.rate <= 0.0 or attempt > self.max_attempt:
            return None
        rng = random.Random(f"faults|{self.seed}|{key}|{attempt}")
        if rng.random() >= self.rate:
            return None
        return self.kinds[rng.randrange(len(self.kinds))]

    def latency_delay(self, key: str, attempt: int) -> float:
        """The seeded, bounded stall of a ``latency`` fault, in seconds.

        Always strictly below ``latency_seconds``; a pure function of
        ``(seed, key, attempt)`` like :meth:`decide`, so two runs (or
        the server and its chaos verifier) observe the same slowness.
        """
        u = random.Random(f"latency|{self.seed}|{key}|{attempt}").random()
        return u * self.latency_seconds


def _in_child_process() -> bool:
    """Whether this code runs inside a multiprocessing worker."""
    return multiprocessing.parent_process() is not None


def apply_fault(
    schedule: FaultSchedule | None, key: str, attempt: int
) -> bool:
    """Execute the scheduled fault for one task attempt, if any.

    Called at the top of a sweep task's body.  ``raise``/``fatal``
    faults raise their taxonomy exception; ``hang`` stalls for
    ``hang_seconds`` and then lets the task proceed (so an armed
    timeout fires, and an unarmed one merely observes a slow task);
    ``crash`` kills the current *worker process* — or downgrades to a
    ``raise`` fault when not in a child process.

    Returns:
        ``True`` when the attempt drew a ``corrupt`` fault — the
        caller must then corrupt its result (see :func:`corrupt_block`).
    """
    if schedule is None:
        return False
    kind = schedule.decide(key, attempt)
    if kind is None:
        return False
    if kind == "raise":
        raise TransientTaskError(
            f"injected transient fault on {key} (attempt {attempt})"
        )
    if kind == "fatal":
        raise EvaluationError(
            f"injected fatal fault on {key} (attempt {attempt})"
        )
    if kind == "hang":
        time.sleep(schedule.hang_seconds)
        return False
    if kind == "latency":
        time.sleep(schedule.latency_delay(key, attempt))
        return False
    if kind == "crash":
        if _in_child_process():  # pragma: no cover - dies before coverage
            os._exit(13)
        raise TransientTaskError(
            f"injected crash fault on {key} (attempt {attempt}; "
            "downgraded to transient outside a worker process)"
        )
    return True  # "corrupt"


def corrupt_block(results: list) -> list:
    """Deterministically corrupt a block result (drop the last cell).

    The resilient engine validates every block against the suite grid,
    so a truncated block surfaces as a retryable
    :class:`~repro.exceptions.TransientTaskError` rather than a silent
    hole in the map.
    """
    return results[:-1]


def wrap_factory(
    factory: Callable[[int], object], schedule: FaultSchedule
) -> Callable[[int], object]:
    """Wrap a detector factory to fault at construction time.

    The returned factory consults ``schedule`` under the key
    ``factory:<window_length>`` (attempt 1) before delegating — a
    convenient way to break the *serial reference loop* of
    :func:`~repro.evaluation.performance_map.build_performance_map`,
    which never goes through the sweep engine's task wrapper.
    """

    def faulty(window_length: int) -> object:
        apply_fault(schedule, f"factory:{window_length}", 1)
        return factory(window_length)

    return faulty
