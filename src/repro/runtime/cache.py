"""Shared sliding-window artifacts for sweep evaluation.

Sweeping several detector families over the suite grid re-derives the
same intermediate products again and again: every family slides the
same training stream at the same window length, packs the same windows,
and — for the expensive similarity metrics — scores the same highly
repetitive test windows.  :class:`WindowCache` computes each
(stream, window length) artifact exactly once and hands the identical
arrays to every consumer:

* ``windows``   — the 2-D sliding-window view of a stream;
* ``packed``    — the base-``alphabet_size`` packed integers;
* ``unique``    — the distinct windows plus the inverse scatter index
  (the basis of unique-window memoized scoring).

Streams are keyed by identity: the cache retains a reference to every
stream it has seen, so an ``id`` can never be recycled while the cache
lives.  A stream the cache has not seen before is simply a miss — the
artifact is computed and stored; correctness never depends on a hit.

The cache is thread-safe.  Artifacts are computed under the lock, which
deliberately serializes the *first* derivation of each artifact: when
several workers race for the same (stream, DW) slide, exactly one pays
for it and the rest share the result.

**Cross-process statistics.**  The cache itself is never shared across
processes — each process-backend worker builds a private cache, so the
parent's counters would undercount a process sweep by exactly the
workers' traffic.  The sweep engine closes that gap by shipping each
worker's :class:`CacheStats` back with its results and folding them
into the shared cache via :meth:`WindowCache.merge_counts`; after any
sweep, ``engine.window_cache.stats`` therefore covers all backends.
(Only the *counters* travel; the artifacts themselves stay
process-local, which is the point of the process backend.)  Arrays a
worker *attaches* from the shared-memory arena rather than computing
count as hits — the artifact existed and was reused — never as misses
(see :meth:`repro.runtime.arena.SharedSuite.restore`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.sequences.windows import pack_windows, windows_array

#: Cache key: (stream identity, window length, artifact tag, extra).
_Key = tuple[int, int, str, int]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters for observability and benchmarks."""

    hits: int
    misses: int

    @property
    def requests(self) -> int:
        """Total artifact lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0


def _packable(alphabet_size: int, window_length: int) -> bool:
    """Whether windows fit the 63-bit packed-integer budget."""
    return window_length * np.log2(alphabet_size) < 63


class WindowCache:
    """Per-(stream, window length) memo of slide/pack/unique artifacts.

    One instance is meant to be shared by every detector and worker of
    a sweep; detectors consult it through
    :meth:`repro.detectors.base.AnomalyDetector.attach_cache`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[_Key, object] = {}
        self._streams: dict[int, np.ndarray] = {}
        self._hits = 0
        self._misses = 0
        self._arena: object | None = None

    def bind_arena(self, arena: object) -> None:
        """Couple this cache to a :class:`~repro.runtime.arena.WindowArena`.

        While bound, evicting a stream also releases the stream's
        shared-memory segment (see :meth:`evict`); the sweep engine
        binds its arena for the duration of a zero-copy sweep.
        """
        with self._lock:
            self._arena = arena

    def unbind_arena(self, arena: object) -> None:
        """Detach ``arena`` if it is the currently bound one."""
        with self._lock:
            if self._arena is arena:
                self._arena = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the hit/miss counters."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses)

    def merge_counts(self, hits: int, misses: int) -> None:
        """Fold another cache's counters into this one.

        Used by the sweep engine to aggregate the private caches of
        process-backend workers, so :attr:`stats` stays accurate across
        every executor (see the module docstring).
        """
        if hits < 0 or misses < 0:
            raise ValueError("cache counters cannot be negative")
        with self._lock:
            self._hits += hits
            self._misses += misses

    def clear(self) -> None:
        """Drop every cached artifact and retained stream reference.

        Counters are kept: stats describe the cache's lifetime traffic,
        not its current contents.
        """
        with self._lock:
            self._entries.clear()
            self._streams.clear()

    def evict(self, stream: np.ndarray, window_length: int | None = None) -> int:
        """Drop the artifacts derived from ``stream``.

        Args:
            stream: the stream whose artifacts to evict (matched by
                identity, exactly as lookups are keyed).
            window_length: evict only this window length's artifacts;
                all of the stream's artifacts when omitted.

        Returns:
            The number of cache entries removed.  The pinned stream
            reference is released once no artifact of the stream
            remains, letting its ``id`` be recycled safely.  With an
            arena bound (see :meth:`bind_arena`), fully evicting a
            stream also releases its shared-memory segment.
        """
        with self._lock:
            stream_id = id(stream)
            doomed = [
                key
                for key in self._entries
                if key[0] == stream_id
                and (window_length is None or key[1] == window_length)
            ]
            for key in doomed:
                del self._entries[key]
            unpinned = not any(key[0] == stream_id for key in self._entries)
            if unpinned:
                self._streams.pop(stream_id, None)
            arena = self._arena
        if unpinned and arena is not None:
            # Outside the cache lock: the arena has its own lock, and
            # release may unlink the segment (never raises for streams
            # the arena does not know).
            arena.release(stream)  # type: ignore[attr-defined]
        return len(doomed)

    def _get(self, stream: np.ndarray, key: _Key, compute):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                return entry
            self._misses += 1
            entry = compute()
            self._entries[key] = entry
            # Pin the stream so its id() stays valid for the cache's life.
            self._streams.setdefault(key[0], stream)
            return entry

    def windows(self, stream: np.ndarray, window_length: int) -> np.ndarray:
        """The sliding-window view of ``stream`` at ``window_length``.

        Equivalent to :func:`repro.sequences.windows.windows_array`,
        computed at most once per (stream, window length).
        """
        key = (id(stream), window_length, "windows", 0)
        return self._get(
            stream, key, lambda: windows_array(stream, window_length)
        )

    def packed(
        self, stream: np.ndarray, window_length: int, alphabet_size: int
    ) -> np.ndarray:
        """Packed integer windows (see :func:`pack_windows`), memoized."""
        key = (id(stream), window_length, "packed", alphabet_size)
        return self._get(
            stream,
            key,
            lambda: pack_windows(
                windows_array(stream, window_length), alphabet_size
            ),
        )

    def unique(
        self,
        stream: np.ndarray,
        window_length: int,
        alphabet_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distinct windows of ``stream`` plus the inverse scatter index.

        Returns ``(unique_rows, inverse)`` with
        ``unique_rows[inverse]`` exactly the full window sequence —
        the decomposition behind unique-window memoized scoring.  Rows
        are in lexicographic order, matching
        ``np.unique(windows, axis=0)``.

        When ``alphabet_size`` is given and the windows are packable,
        the decomposition is derived from the packed integers (packing
        is lexicographic-order preserving), which is substantially
        faster than a row-wise unique.
        """
        rows, inverse, _counts = self._decomposition(
            stream, window_length, alphabet_size
        )
        return rows, inverse

    def unique_counts(
        self,
        stream: np.ndarray,
        window_length: int,
        alphabet_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distinct windows of ``stream`` plus their occurrence counts.

        Returns ``(unique_rows, counts)`` exactly as
        ``np.unique(windows, axis=0, return_counts=True)`` would — the
        frequency table behind every detector family's fit — computed
        (with its :meth:`unique` sibling) from one shared sort per
        (stream, window length).
        """
        rows, _inverse, counts = self._decomposition(
            stream, window_length, alphabet_size
        )
        return rows, counts

    def _decomposition(
        self,
        stream: np.ndarray,
        window_length: int,
        alphabet_size: int | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The shared (rows, inverse, counts) unique decomposition."""
        tag = alphabet_size if alphabet_size is not None else -1
        key = (id(stream), window_length, "unique", tag)
        use_packed = alphabet_size is not None and _packable(
            alphabet_size, window_length
        )
        # Resolve prerequisite artifacts before taking the lock in
        # _get: the lock is not reentrant, so compute() must not call
        # back into the cache.
        packed = (
            self.packed(stream, window_length, alphabet_size)
            if use_packed
            else None
        )
        view = self.windows(stream, window_length)

        def compute() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            if packed is not None:
                _, first, inverse, counts = np.unique(
                    packed,
                    return_index=True,
                    return_inverse=True,
                    return_counts=True,
                )
                # first[i] locates the representative of the i-th
                # sorted packed value, and packing preserves
                # lexicographic row order, so view[first] matches
                # np.unique(view, axis=0) and rows[inverse] == view.
                return np.ascontiguousarray(view[first]), inverse, counts
            rows, inverse, counts = np.unique(
                view, axis=0, return_inverse=True, return_counts=True
            )
            return rows, inverse.reshape(-1), counts

        return self._get(stream, key, compute)
