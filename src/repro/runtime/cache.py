"""Shared sliding-window artifacts for sweep evaluation.

Sweeping several detector families over the suite grid re-derives the
same intermediate products again and again: every family slides the
same training stream at the same window length, packs the same windows,
and — for the expensive similarity metrics — scores the same highly
repetitive test windows.  :class:`WindowCache` computes each
(stream, window length) artifact exactly once and hands the identical
arrays to every consumer:

* ``windows``   — the 2-D sliding-window view of a stream;
* ``packed``    — the bit-width packed integers (``symbol_bits(AS)``
  bits per symbol, one ``int64`` key per window);
* ``unique``    — the distinct windows plus the inverse scatter index
  (the basis of unique-window memoized scoring);
* ``packed_db`` — a training stream's sorted distinct packed keys at
  one order (the membership database of the kernel tiers);
* ``stream_codes`` / ``membership_profile`` — the automaton tier's
  per-stream packed-code ladder and per-position match-length profile
  (see :mod:`repro.runtime.automaton`).

Streams are keyed by identity: the cache retains a reference to every
stream it has seen, so an ``id`` can never be recycled while the cache
lives.  A stream the cache has not seen before is simply a miss — the
artifact is computed and stored; correctness never depends on a hit.

The cache is thread-safe.  Artifacts are computed under the lock, which
deliberately serializes the *first* derivation of each artifact: when
several workers race for the same (stream, DW) slide, exactly one pays
for it and the rest share the result.

**Cross-process statistics.**  The cache itself is never shared across
processes — each process-backend worker builds a private cache, so the
parent's counters would undercount a process sweep by exactly the
workers' traffic.  The sweep engine closes that gap by shipping each
worker's :class:`CacheStats` back with its results and folding them
into the shared cache via :meth:`WindowCache.merge_counts`; after any
sweep, ``engine.window_cache.stats`` therefore covers all backends.
(Only the *counters* travel; the artifacts themselves stay
process-local, which is the point of the process backend.)  Arrays a
worker *attaches* from the shared-memory arena rather than computing
count as hits — the artifact existed and was reused — never as misses
(see :meth:`repro.runtime.arena.SharedSuite.restore`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.runtime import telemetry
from repro.runtime.fitindex import TrainingIndex
from repro.sequences.windows import pack_windows, packable, windows_array

#: Cache key: (stream identity, window length, artifact tag, extra).
#: ``extra`` is usually the alphabet size; artifacts that depend on a
#: *second* stream (the membership profile) use the marker tuple
#: ``("train", train_stream_id, alphabet_size)`` so eviction of either
#: stream can find them.
_Key = tuple[int, int, str, object]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters for observability and benchmarks."""

    hits: int
    misses: int

    @property
    def requests(self) -> int:
        """Total artifact lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0


#: Whether windows fit the 63-bit packed-integer budget (bit-width
#: packing: ``window_length * symbol_bits(alphabet_size) <= 63``).
_packable = packable


class WindowCache:
    """Per-(stream, window length) memo of slide/pack/unique artifacts.

    One instance is meant to be shared by every detector and worker of
    a sweep; detectors consult it through
    :meth:`repro.detectors.base.AnomalyDetector.attach_cache`.
    """

    def __init__(self, use_index: bool = True) -> None:
        self._lock = threading.Lock()
        self._entries: dict[_Key, object] = {}
        self._streams: dict[int, np.ndarray] = {}
        self._indexes: dict[int, TrainingIndex] = {}
        self._use_index = use_index
        self._hits = 0
        self._misses = 0
        self._arena: object | None = None

    def bind_arena(self, arena: object) -> None:
        """Couple this cache to a :class:`~repro.runtime.arena.WindowArena`.

        While bound, evicting a stream also releases the stream's
        shared-memory segment (see :meth:`evict`); the sweep engine
        binds its arena for the duration of a zero-copy sweep.
        """
        with self._lock:
            self._arena = arena

    def unbind_arena(self, arena: object) -> None:
        """Detach ``arena`` if it is the currently bound one."""
        with self._lock:
            if self._arena is arena:
                self._arena = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the hit/miss counters."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses)

    def merge_counts(self, hits: int, misses: int) -> None:
        """Fold another cache's counters into this one.

        Used by the sweep engine to aggregate the private caches of
        process-backend workers, so :attr:`stats` stays accurate across
        every executor (see the module docstring).
        """
        if hits < 0 or misses < 0:
            raise ValueError("cache counters cannot be negative")
        with self._lock:
            self._hits += hits
            self._misses += misses

    def credit(self, hits: int, misses: int = 0) -> None:
        """Credit *fresh* cache traffic observed outside :meth:`_get`.

        Same arithmetic as :meth:`merge_counts`, but also emitted as
        telemetry events: the arena's restore path uses this when it
        serves arrays out of shared memory (each one a hit that never
        went through a lookup).  ``merge_counts`` itself stays
        telemetry-silent — it folds counters whose events were already
        emitted where the traffic actually happened (the worker).
        """
        self.merge_counts(hits, misses)
        if hits:
            telemetry.count("cache.hit", hits)
        if misses:
            telemetry.count("cache.miss", misses)

    def clear(self) -> None:
        """Drop every cached artifact and retained stream reference.

        Counters are kept: stats describe the cache's lifetime traffic,
        not its current contents.
        """
        with self._lock:
            self._entries.clear()
            self._streams.clear()
            self._indexes.clear()

    def evict(self, stream: np.ndarray, window_length: int | None = None) -> int:
        """Drop the artifacts derived from ``stream``.

        Args:
            stream: the stream whose artifacts to evict (matched by
                identity, exactly as lookups are keyed).
            window_length: evict only this window length's artifacts;
                all of the stream's artifacts when omitted.

        Returns:
            The number of cache entries removed.  The pinned stream
            reference is released once no artifact of the stream
            remains, letting its ``id`` be recycled safely.  With an
            arena bound (see :meth:`bind_arena`), fully evicting a
            stream also releases its shared-memory segment.
        """
        with self._lock:
            stream_id = id(stream)

            def references(key: _Key) -> bool:
                if key[0] == stream_id:
                    return window_length is None or key[1] == window_length
                extra = key[3]
                # Two-stream artifacts (membership profiles) also die
                # when their *training* stream is evicted outright, so
                # a recycled id can never satisfy a stale key.
                return (
                    window_length is None
                    and isinstance(extra, tuple)
                    and len(extra) == 3
                    and extra[0] == "train"
                    and extra[1] == stream_id
                )

            doomed = [key for key in self._entries if references(key)]
            for key in doomed:
                del self._entries[key]
            unpinned = not any(key[0] == stream_id for key in self._entries)
            if unpinned:
                self._streams.pop(stream_id, None)
                self._indexes.pop(stream_id, None)
            arena = self._arena
        if unpinned and arena is not None:
            # Outside the cache lock: the arena has its own lock, and
            # release may unlink the segment (never raises for streams
            # the arena does not know).
            arena.release(stream)  # type: ignore[attr-defined]
        return len(doomed)

    def release_stream(self, stream: np.ndarray) -> int:
        """Fully forget ``stream``: artifacts, training index, pin.

        The explicit antidote to the identity-keying footgun: the
        cache retains a reference to every stream it has seen so its
        ``id`` can never be recycled, which means a long-lived engine
        sweeping many suites grows without bound unless someone lets
        go.  Arena teardown and suite turnover call this when a
        stream's artifacts can no longer be asked for.

        Equivalent to :meth:`evict` over every window length (the
        bound arena's segment is released too); returns the number of
        entries dropped.
        """
        return self.evict(stream)

    def _get(self, stream: np.ndarray, key: _Key, compute):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                telemetry.count("cache.hit")
                return entry
            self._misses += 1
            telemetry.count("cache.miss")
            with telemetry.span("cache", key[2], window_length=key[1]):
                entry = compute()
            self._entries[key] = entry
            # Pin the stream so its id() stays valid for the cache's life.
            self._streams.setdefault(key[0], stream)
            return entry

    def windows(self, stream: np.ndarray, window_length: int) -> np.ndarray:
        """The sliding-window view of ``stream`` at ``window_length``.

        Equivalent to :func:`repro.sequences.windows.windows_array`,
        computed at most once per (stream, window length).
        """
        key = (id(stream), window_length, "windows", 0)
        return self._get(
            stream, key, lambda: windows_array(stream, window_length)
        )

    def packed(
        self, stream: np.ndarray, window_length: int, alphabet_size: int
    ) -> np.ndarray:
        """Packed integer windows (see :func:`pack_windows`), memoized."""
        key = (id(stream), window_length, "packed", alphabet_size)
        return self._get(
            stream,
            key,
            lambda: pack_windows(
                windows_array(stream, window_length), alphabet_size
            ),
        )

    def packed_db(
        self, stream: np.ndarray, window_length: int, alphabet_size: int
    ) -> np.ndarray:
        """Sorted distinct packed keys of ``stream`` at ``window_length``.

        The membership database both kernel tiers bisect against:
        derived from the shared unique decomposition (lexicographic
        rows under order-preserving bit packing come out sorted), so
        Stide, t-Stide and the automaton ladder all read one table per
        (training stream, order).
        """
        # Resolve the decomposition before entering _get: the cache
        # lock is not reentrant.
        rows, _inverse, _counts = self._decomposition(
            stream, window_length, alphabet_size
        )
        key = (id(stream), window_length, "packed_db", alphabet_size)
        return self._get(stream, key, lambda: pack_windows(rows, alphabet_size))

    def stream_codes(
        self, stream: np.ndarray, alphabet_size: int, max_order: int
    ):
        """The per-order packed-code ladder of ``stream``, memoized.

        One :class:`~repro.runtime.automaton.StreamCodes` per
        (stream, alphabet, max order): the stream is packed once at the
        highest packable order and every lower order's keys are derived
        by shifting (orders materialize lazily inside the object).
        """
        from repro.runtime.automaton import StreamCodes

        key = (id(stream), 0, "codes", (alphabet_size, max_order))
        return self._get(
            stream, key, lambda: StreamCodes(stream, alphabet_size, max_order)
        )

    def membership_profile(
        self,
        test_stream: np.ndarray,
        training_stream: np.ndarray,
        alphabet_size: int,
        max_order: int,
    ) -> np.ndarray:
        """Match-length profile of ``test_stream`` against training.

        ``profile[i]`` is the longest order ``L <= max_order`` whose
        window at position ``i`` occurs in ``training_stream`` (see
        :func:`repro.runtime.automaton.match_profile`) — computed once
        per (test stream, training stream, alphabet) and shared by
        every membership cell of a sweep: all DWs of Stide *and*
        t-Stide read the same array.
        """
        from repro.runtime.automaton import match_profile

        key = (
            id(test_stream),
            max_order,
            "profile",
            ("train", id(training_stream), alphabet_size),
        )
        # Hot-path peek: every membership cell of a sweep asks for the
        # same profile, and resolving the per-order databases costs 14
        # locked lookups — only worth paying on the one miss.
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
                telemetry.count("cache.hit")
                return cached
        codes = self.stream_codes(test_stream, alphabet_size, max_order)
        databases = {
            order: (
                self.packed_db(training_stream, order, alphabet_size)
                if order <= len(training_stream)
                else np.empty(0, dtype=np.int64)
            )
            for order in range(2, codes.cap + 1)
        }
        return self._get(
            test_stream, key, lambda: match_profile(codes, databases)
        )

    def unique(
        self,
        stream: np.ndarray,
        window_length: int,
        alphabet_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distinct windows of ``stream`` plus the inverse scatter index.

        Returns ``(unique_rows, inverse)`` with
        ``unique_rows[inverse]`` exactly the full window sequence —
        the decomposition behind unique-window memoized scoring.  Rows
        are in lexicographic order, matching
        ``np.unique(windows, axis=0)``.

        When ``alphabet_size`` is given and the windows are packable,
        the decomposition is derived from the packed integers (packing
        is lexicographic-order preserving), which is substantially
        faster than a row-wise unique.
        """
        rows, inverse, _counts = self._decomposition(
            stream, window_length, alphabet_size
        )
        return rows, inverse

    def unique_counts(
        self,
        stream: np.ndarray,
        window_length: int,
        alphabet_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distinct windows of ``stream`` plus their occurrence counts.

        Returns ``(unique_rows, counts)`` exactly as
        ``np.unique(windows, axis=0, return_counts=True)`` would — the
        frequency table behind every detector family's fit — computed
        (with its :meth:`unique` sibling) from one shared sort per
        (stream, window length).
        """
        rows, _inverse, counts = self._decomposition(
            stream, window_length, alphabet_size
        )
        return rows, counts

    def _decomposition(
        self,
        stream: np.ndarray,
        window_length: int,
        alphabet_size: int | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The shared (rows, inverse, counts) unique decomposition.

        With the training index enabled (the default), the
        decomposition at any order is derived incrementally from the
        order below by :class:`~repro.runtime.fitindex.TrainingIndex`
        — one stable two-key sort per new order instead of a fresh
        slide + pack + full sort per (window length, alphabet) — and
        the artifact key is alphabet-independent, so every family at
        every alphabet shares one entry per order.  The result is
        bit-identical to ``np.unique(view, axis=0, ...)`` either way.
        """
        if self._use_index:
            key = (id(stream), window_length, "unique", -1)

            def compute() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
                # Under the cache lock: index growth is serialized.
                index = self._indexes.get(id(stream))
                if index is None:
                    index = TrainingIndex(stream)
                    self._indexes[id(stream)] = index
                return index.decomposition(window_length)

            return self._get(stream, key, compute)

        tag = alphabet_size if alphabet_size is not None else -1
        key = (id(stream), window_length, "unique", tag)
        use_packed = alphabet_size is not None and _packable(
            alphabet_size, window_length
        )
        # Resolve prerequisite artifacts before taking the lock in
        # _get: the lock is not reentrant, so compute() must not call
        # back into the cache.
        packed = (
            self.packed(stream, window_length, alphabet_size)
            if use_packed
            else None
        )
        view = self.windows(stream, window_length)

        def compute() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            if packed is not None:
                _, first, inverse, counts = np.unique(
                    packed,
                    return_index=True,
                    return_inverse=True,
                    return_counts=True,
                )
                # first[i] locates the representative of the i-th
                # sorted packed value, and packing preserves
                # lexicographic row order, so view[first] matches
                # np.unique(view, axis=0) and rows[inverse] == view.
                return np.ascontiguousarray(view[first]), inverse, counts
            rows, inverse, counts = np.unique(
                view, axis=0, return_inverse=True, return_counts=True
            )
            return rows, inverse.reshape(-1), counts

        return self._get(stream, key, compute)

    def seed_decomposition(
        self,
        stream: np.ndarray,
        window_length: int,
        rows: np.ndarray,
        inverse: np.ndarray,
        counts: np.ndarray,
    ) -> bool:
        """Install a precomputed unique decomposition for ``stream``.

        Used by :meth:`repro.runtime.arena.SharedSuite.restore` to
        hand workers the parent's derived tables (zero-copy via shared
        memory) so worker processes never redo the training sort.
        Seeding is silent for the counters — the restore path credits
        attachments in bulk via :meth:`merge_counts`.

        Returns ``True`` when the entry was installed, ``False`` when
        an equivalent entry already existed.
        """
        key = (id(stream), window_length, "unique", -1)
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = (rows, inverse, counts)
            self._streams.setdefault(key[0], stream)
            return True

    def validated(self, stream: np.ndarray, alphabet_size: int, compute):
        """Memoized per-(stream, alphabet) training-stream validation.

        ``fit_many`` used to re-validate the same training stream once
        per detector; routing validation through the cache makes it
        once per (stream, alphabet) across every family and window
        length of a sweep.  ``compute`` performs the actual validation
        and returns the canonical int64 array.
        """
        key = (id(stream), 0, "validated", alphabet_size)
        return self._get(stream, key, compute)
