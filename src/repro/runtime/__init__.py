"""Runtime subsystem: concurrent sweeps over shared window artifacts.

The hot path of the reproduction — and of any deployment of diverse
detector ensembles — is evaluating many detector families over the
full (anomaly size x window length) grid.  This package provides the
production runtime for that sweep:

* :class:`WindowCache` — slides and packs each (stream, window length)
  combination exactly once and shares the arrays across every
  detector family's fits and scores;
* :mod:`~repro.runtime.kernels` — the vectorized batch-scoring kernels
  every detector family's ``score_windows`` reduces to: one numpy pass
  per (stream, DW) batch instead of a per-window Python loop;
* :mod:`~repro.runtime.automaton` — the raw-speed membership tier:
  bit-packed uint64 window keys plus a one-pass multi-order
  match-length profile that answers Stide/t-Stide membership for every
  DW at once (the ``--kernel-tier`` dispatcher);
* :class:`SweepEngine` — evaluates one or many families over the grid
  concurrently (thread-, process-, or serial-backed) with
  unique-window memoized scoring for the expensive detectors, while
  producing maps bit-identical to the sequential path;
* :class:`WindowArena` — zero-copy ``multiprocessing.shared_memory``
  transport: the suite's streams are materialized once, process
  workers attach by segment name, and sweep tasks ship only
  (name, shape, dtype) descriptors instead of pickled arrays;
* :mod:`~repro.runtime.resilience` — fault-tolerant execution on top
  of the engine: retries with deterministic backoff, per-task
  wall-clock timeouts, graceful backend degradation
  (process -> thread -> serial), JSONL checkpoint/resume, and a
  per-task :class:`RunReport`;
* :mod:`~repro.runtime.faults` — the seeded fault-injection harness
  the test suite uses to prove every recovery path;
* :mod:`~repro.runtime.telemetry` — zero-dependency tracing spans,
  metrics and profiling hooks every component above reports into,
  merged across process workers and written as schema-versioned JSONL
  (the ``--trace``/``--metrics``/``--profile`` flags and the
  ``repro trace`` subcommand).

See the "Runtime & parallelism", "Batch kernels & zero-copy
transport" and "Failure handling & resume" sections of DESIGN.md and
the ``--jobs``/``--executor``/``--no-shm``/``--retries``/
``--task-timeout``/``--checkpoint``/``--resume`` flags of the CLI.

Exports resolve lazily (PEP 562): detector modules import
:mod:`repro.runtime.kernels` at module load, and an eager import of
the engine here would close the cycle
``kernels -> runtime -> engine -> registry -> detectors -> kernels``.
"""

from __future__ import annotations

from importlib import import_module

#: Public name -> defining submodule, resolved on first attribute access.
_EXPORTS: dict[str, str] = {
    "CacheStats": "repro.runtime.cache",
    "WindowCache": "repro.runtime.cache",
    "Decomposition": "repro.runtime.fitindex",
    "FitRecord": "repro.runtime.fitindex",
    "FitStats": "repro.runtime.fitindex",
    "TrainingIndex": "repro.runtime.fitindex",
    "WarmStartPolicy": "repro.runtime.fitindex",
    "WarmStartRegistry": "repro.runtime.fitindex",
    "ArtifactStore": "repro.runtime.store",
    "STORE_SCHEMA_VERSION": "repro.runtime.store",
    "StoreStats": "repro.runtime.store",
    "fit_key": "repro.runtime.store",
    "stream_digest": "repro.runtime.store",
    "streams_digest": "repro.runtime.store",
    "fit_states_equal": "repro.runtime.deltafit",
    "verify_delta": "repro.runtime.deltafit",
    "HotTier": "repro.runtime.shardstore",
    "HotTierStats": "repro.runtime.shardstore",
    "ShardedStore": "repro.runtime.shardstore",
    "ShardStoreStats": "repro.runtime.shardstore",
    "SHARD_SCHEMA_VERSION": "repro.runtime.shardstore",
    "EXECUTORS": "repro.runtime.engine",
    "MEMOIZED_FAMILIES": "repro.runtime.engine",
    "SweepEngine": "repro.runtime.engine",
    "evaluate_window_block": "repro.runtime.engine",
    "ArrayDescriptor": "repro.runtime.arena",
    "SharedSuite": "repro.runtime.arena",
    "SharedTable": "repro.runtime.arena",
    "WindowArena": "repro.runtime.arena",
    "share_suite": "repro.runtime.arena",
    "score_batch": "repro.runtime.kernels",
    "sorted_membership": "repro.runtime.kernels",
    "KERNEL_TIERS": "repro.runtime.kernels",
    "resolve_kernel_tier": "repro.runtime.kernels",
    "AUTOMATON_MAX_ORDER": "repro.runtime.automaton",
    "MembershipAutomaton": "repro.runtime.automaton",
    "StreamCodes": "repro.runtime.automaton",
    "match_profile": "repro.runtime.automaton",
    "training_databases": "repro.runtime.automaton",
    "FAULT_KINDS": "repro.runtime.faults",
    "FaultSchedule": "repro.runtime.faults",
    "Metrics": "repro.runtime.telemetry",
    "SPAN_PHASES": "repro.runtime.telemetry",
    "TRACE_SCHEMA_VERSION": "repro.runtime.telemetry",
    "Telemetry": "repro.runtime.telemetry",
    "TelemetryConfig": "repro.runtime.telemetry",
    "Tracer": "repro.runtime.telemetry",
    "check_trace_counters": "repro.runtime.telemetry",
    "read_trace": "repro.runtime.telemetry",
    "summarize_trace": "repro.runtime.telemetry",
    "validate_trace_line": "repro.runtime.telemetry",
    "DEGRADATION_CHAIN": "repro.runtime.resilience",
    "ResiliencePolicy": "repro.runtime.resilience",
    "RetryPolicy": "repro.runtime.resilience",
    "RunReport": "repro.runtime.resilience",
    "TaskReport": "repro.runtime.resilience",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> object:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: subsequent lookups skip this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
