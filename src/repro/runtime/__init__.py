"""Runtime subsystem: concurrent sweeps over shared window artifacts.

The hot path of the reproduction — and of any deployment of diverse
detector ensembles — is evaluating many detector families over the
full (anomaly size x window length) grid.  This package provides the
production runtime for that sweep:

* :class:`WindowCache` — slides and packs each (stream, window length)
  combination exactly once and shares the arrays across every
  detector family's fits and scores;
* :class:`SweepEngine` — evaluates one or many families over the grid
  concurrently (thread-, process-, or serial-backed) with
  unique-window memoized scoring for the expensive detectors, while
  producing maps bit-identical to the sequential path;
* :mod:`~repro.runtime.resilience` — fault-tolerant execution on top
  of the engine: retries with deterministic backoff, per-task
  wall-clock timeouts, graceful backend degradation
  (process -> thread -> serial), JSONL checkpoint/resume, and a
  per-task :class:`RunReport`;
* :mod:`~repro.runtime.faults` — the seeded fault-injection harness
  the test suite uses to prove every recovery path.

See the "Runtime & parallelism" and "Failure handling & resume"
sections of DESIGN.md and the ``--jobs``/``--retries``/
``--task-timeout``/``--checkpoint``/``--resume`` flags of the CLI.
"""

from repro.runtime.cache import CacheStats, WindowCache
from repro.runtime.engine import (
    EXECUTORS,
    MEMOIZED_FAMILIES,
    SweepEngine,
    evaluate_window_block,
)
from repro.runtime.faults import FAULT_KINDS, FaultSchedule
from repro.runtime.resilience import (
    DEGRADATION_CHAIN,
    ResiliencePolicy,
    RetryPolicy,
    RunReport,
    TaskReport,
)

__all__ = [
    "CacheStats",
    "DEGRADATION_CHAIN",
    "EXECUTORS",
    "FAULT_KINDS",
    "FaultSchedule",
    "MEMOIZED_FAMILIES",
    "ResiliencePolicy",
    "RetryPolicy",
    "RunReport",
    "SweepEngine",
    "TaskReport",
    "WindowCache",
    "evaluate_window_block",
]
