"""Runtime subsystem: concurrent sweeps over shared window artifacts.

The hot path of the reproduction — and of any deployment of diverse
detector ensembles — is evaluating many detector families over the
full (anomaly size x window length) grid.  This package provides the
production runtime for that sweep:

* :class:`WindowCache` — slides and packs each (stream, window length)
  combination exactly once and shares the arrays across every
  detector family's fits and scores;
* :class:`SweepEngine` — evaluates one or many families over the grid
  concurrently (thread-, process-, or serial-backed) with
  unique-window memoized scoring for the expensive detectors, while
  producing maps bit-identical to the sequential path.

See the "Runtime & parallelism" section of DESIGN.md and the
``--jobs`` flag of the CLI.
"""

from repro.runtime.cache import CacheStats, WindowCache
from repro.runtime.engine import (
    EXECUTORS,
    MEMOIZED_FAMILIES,
    SweepEngine,
    evaluate_window_block,
)

__all__ = [
    "CacheStats",
    "EXECUTORS",
    "MEMOIZED_FAMILIES",
    "SweepEngine",
    "WindowCache",
    "evaluate_window_block",
]
