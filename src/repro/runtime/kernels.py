"""Vectorized batch-scoring kernels shared by the detector families.

Scoring a performance-map cell reduces, for every family, to the same
shape of work: *given a batch of windows, produce one response per
row*.  The scalar path walks that batch row by row through Python
(tuple keys, dict lookups, one ``_score`` call per window); the kernels
in this module replace the walk with a single NumPy pass per batch:

* **membership** — Stide/t-Stide database membership is one
  ``searchsorted`` bisection over the packed normal database
  (:func:`sorted_membership`);
* **count lookup** — the Markov detector's joint/context counts come
  from integer-indexed count tables (:func:`count_lookup`), and the
  floor/unseen scoring rule is applied to the whole batch at once
  (:func:`markov_batch_response`);
* **similarity** — L&B's adjacency-weighted similarity and the Hamming
  foil run as broadcasted comparison tensors with cumulative-run
  accumulation (:func:`lb_batch_similarity`,
  :func:`hamming_batch_distance`), chunked to bound memory;
* **dispatch** — :func:`score_batch` is the uniform array-in/array-out
  entry point (the neural network's batched forward pass already lives
  behind ``score_windows``), and :func:`resolve_kernel_tier` decides
  whether a membership cell runs the per-DW bisection or the one-pass
  multi-order automaton of :mod:`repro.runtime.automaton`.

Every kernel is **bit-identical** to the scalar
``AnomalyDetector._score_windows`` fallback it replaces — the same
IEEE-754 operations in the same order per element — which
``tests/runtime/test_kernels.py`` asserts over randomized alphabets,
window lengths and the unseen/floor edge cases.  The kernels are pure
functions of arrays: no detector state, no imports from
:mod:`repro.detectors` (detectors import *this* module).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WindowError
from repro.sequences.windows import packable, windows_array

__all__ = [
    "KERNEL_TIERS",
    "TIER_AUTO",
    "TIER_AUTOMATON",
    "TIER_BISECT",
    "count_lookup",
    "fused_stream_windows",
    "hamming_batch_distance",
    "lb_batch_similarity",
    "markov_batch_response",
    "merge_sorted_counts",
    "merge_sorted_unique",
    "resolve_kernel_tier",
    "score_batch",
    "sorted_membership",
]

#: The membership kernel tiers selectable via ``--kernel-tier``.
TIER_AUTO = "auto"
TIER_BISECT = "bisect"
TIER_AUTOMATON = "automaton"
KERNEL_TIERS: tuple[str, ...] = (TIER_AUTO, TIER_BISECT, TIER_AUTOMATON)


def resolve_kernel_tier(
    tier: str,
    alphabet_size: int,
    window_length: int,
    max_order: int | None = None,
) -> str:
    """The concrete membership tier a (tier request, cell) pair runs.

    ``bisect`` is always honored.  ``automaton`` and ``auto`` resolve
    to the automaton only where it is *applicable*: the cell's windows
    must fit the 63-bit bit-width packing budget (so AS=32/DW=13 falls
    back to bisect even when the automaton is forced) and the window
    length must not exceed the profile's ``max_order`` (default
    :data:`repro.runtime.automaton.AUTOMATON_MAX_ORDER`).  Callers
    still apply their own context rules on top — the detectors require
    a single retained training stream, and ``auto`` additionally
    requires an attached :class:`~repro.runtime.cache.WindowCache`
    (without one the profile cannot amortize across cells, so auto
    keeps the bisection).

    Raises:
        ValueError: on a tier outside :data:`KERNEL_TIERS`.
    """
    if tier not in KERNEL_TIERS:
        raise ValueError(
            f"unknown kernel tier {tier!r}; expected one of {KERNEL_TIERS}"
        )
    if tier == TIER_BISECT:
        return TIER_BISECT
    if max_order is None:
        from repro.runtime.automaton import AUTOMATON_MAX_ORDER

        max_order = AUTOMATON_MAX_ORDER
    if window_length > max_order or not packable(alphabet_size, window_length):
        return TIER_BISECT
    return TIER_AUTOMATON


def sorted_membership(probes: np.ndarray, database: np.ndarray) -> np.ndarray:
    """Whether each probe occurs in an already-sorted database.

    A ``searchsorted`` bisection per probe — ``O(n log m)`` without the
    hash/sort machinery of ``np.isin``, and measurably faster when the
    database is already sorted (``np.unique`` output), which is how the
    sequence detectors store their packed normal databases.  See
    ``benchmarks/bench_throughput.py`` for the comparison.
    """
    if not len(database):
        return np.zeros(len(probes), dtype=bool)
    positions = np.searchsorted(database, probes)
    positions[positions == len(database)] = len(database) - 1
    return database[positions] == probes


def merge_sorted_unique(
    table: np.ndarray, delta: np.ndarray
) -> np.ndarray:
    """Union of two sorted unique arrays, exploiting the sortedness.

    Bit-identical to ``np.union1d(table, delta)`` but ``O(m log n)``
    instead of re-sorting the concatenation: absent delta values are
    located by bisection and spliced in with one ``np.insert`` pass.
    When every delta value is already present — the steady state of a
    fleet tenant whose window vocabulary has saturated — the *same*
    table array is returned, so the caller does no allocation at all.
    """
    if not len(table):
        return delta.astype(np.int64, copy=False)
    fresh = delta[~sorted_membership(delta, table)]
    if not len(fresh):
        return table
    return np.insert(table, np.searchsorted(table, fresh), fresh)


def merge_sorted_counts(
    values: np.ndarray,
    counts: np.ndarray,
    delta_values: np.ndarray,
    delta_counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge a sorted delta count table into a sorted count table.

    Both tables are ``np.unique``-style (sorted unique values with
    aligned counts).  Bit-identical to the multi-stream merge idiom
    (``np.unique`` over the concatenation plus a scatter-add) at the
    cost of one bisection over the delta: counts of values already
    present add in place on a copy; genuinely new values splice in
    via ``np.insert``.
    """
    if not len(values):
        return (
            delta_values.astype(np.int64, copy=False),
            delta_counts.astype(np.int64, copy=False),
        )
    present = sorted_membership(delta_values, values)
    merged = counts.astype(np.int64, copy=True)
    if present.any():
        # delta values are unique, so the target positions are too.
        merged[np.searchsorted(values, delta_values[present])] += delta_counts[
            present
        ]
    if present.all():
        return values, merged
    fresh_values = delta_values[~present]
    positions = np.searchsorted(values, fresh_values)
    return (
        np.insert(values, positions, fresh_values),
        np.insert(merged, positions, delta_counts[~present]),
    )


def count_lookup(
    probes: np.ndarray, codes: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Occurrence counts for packed probes against a sorted count table.

    ``codes`` must be sorted ascending (``np.unique`` output) with
    ``counts[i]`` the occurrence count of ``codes[i]``.  Probes absent
    from the table count 0 — exactly ``dict.get(key, 0)`` over the
    whole batch in one bisection.
    """
    if not len(codes):
        return np.zeros(len(probes), dtype=np.int64)
    positions = np.searchsorted(codes, probes)
    positions[positions == len(codes)] = len(codes) - 1
    found = codes[positions] == probes
    return np.where(found, counts[positions], 0).astype(np.int64, copy=False)


def markov_batch_response(
    joint: np.ndarray,
    context: np.ndarray,
    floor_count: float,
    unseen_context_response: float,
) -> np.ndarray:
    """The Markov floor/unseen scoring rule over a whole batch.

    Vectorizes ``MarkovDetector._window_response`` element for element:

    * a transition whose joint count is 0 **or** below ``floor_count``
      is floored — response 1, except that a window whose *context* is
      also unseen (``context == 0 and joint == 0``) emits
      ``unseen_context_response``;
    * otherwise the response is ``1 - joint / context`` (with the
      defensive ``context == 0`` branch mapping to 1), clipped to
      ``[0, 1]``.

    ``floor_count`` is the precomputed ``rare_floor * total_windows``
    bound; pass 0.0 for the unfloored estimator (a joint count of 0 is
    still floored, matching the scalar rule's ``joint == 0`` arm).

    Args:
        joint: per-row joint ``DW``-gram training counts.
        context: per-row ``(DW-1)``-gram training counts.
        floor_count: absolute count bound below which a seen transition
            is treated as probability 0 (0.0 disables the floor).
        unseen_context_response: response for rows whose context never
            occurred in training.

    Returns:
        ``float64`` responses in ``[0, 1]``, one per row.
    """
    floored = joint == 0
    if floor_count > 0.0:
        floored = floored | (joint < floor_count)
    with np.errstate(divide="ignore", invalid="ignore"):
        graded = 1.0 - joint / context
    graded = np.where(context == 0, 1.0, graded)
    responses = np.where(
        floored,
        np.where((context == 0) & (joint == 0), unseen_context_response, 1.0),
        graded,
    )
    return np.clip(responses, 0.0, 1.0)


def lb_batch_similarity(
    windows: np.ndarray, database: np.ndarray, chunk_elements: int
) -> np.ndarray:
    """Best L&B similarity against the database for each window row.

    For each chunk the ``(rows, database, DW)`` boolean comparison
    tensor is reduced with the cumulative-run recurrence
    ``run = (run + 1) * match`` — the adjacency weighting — summed into
    per-pair similarities, then maximized over the database axis.

    Args:
        windows: ``(n, DW)`` batch of windows.
        database: ``(m, DW)`` distinct normal windows.
        chunk_elements: soft bound on the comparison tensor per chunk.

    Returns:
        ``int64`` best similarities, one per row.
    """
    window_length = windows.shape[1]
    matches_shape = len(database) * window_length
    chunk = max(1, chunk_elements // max(1, matches_shape))
    best = np.empty(len(windows), dtype=np.int64)
    for start in range(0, len(windows), chunk):
        block = windows[start : start + chunk]
        # matches: (block, db, DW) boolean comparison tensor.
        matches = block[:, None, :] == database[None, :, :]
        run = np.zeros(matches.shape[:2], dtype=np.int64)
        similarity = np.zeros(matches.shape[:2], dtype=np.int64)
        for j in range(window_length):
            run = (run + 1) * matches[:, :, j]
            similarity += run
        best[start : start + chunk] = similarity.max(axis=1)
    return best


def hamming_batch_distance(
    windows: np.ndarray, database: np.ndarray, chunk_elements: int
) -> np.ndarray:
    """Minimum Hamming distance to the database for each window row.

    The positional foil to :func:`lb_batch_similarity`: the same
    chunked comparison tensor, reduced by mismatch count instead of
    adjacency-weighted runs.

    Args:
        windows: ``(n, DW)`` batch of windows.
        database: ``(m, DW)`` distinct normal windows.
        chunk_elements: soft bound on the comparison tensor per chunk.

    Returns:
        ``int64`` minimum distances, one per row.
    """
    window_length = windows.shape[1]
    per_window = len(database) * window_length
    chunk = max(1, chunk_elements // max(1, per_window))
    best = np.empty(len(windows), dtype=np.int64)
    for start in range(0, len(windows), chunk):
        block = windows[start : start + chunk]
        mismatches = (block[:, None, :] != database[None, :, :]).sum(axis=2)
        best[start : start + chunk] = mismatches.min(axis=1)
    return best


def fused_stream_windows(
    streams: list[np.ndarray], window_length: int
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """One sliding-window pass over several concatenated streams.

    The serving batcher fuses many per-tenant test streams into a
    single kernel call: the streams are concatenated, *one*
    ``sliding_window_view`` covers the whole batch, and each stream's
    windows are the contiguous row span ``[start, stop)`` returned per
    input.  Rows that straddle a junction between two streams are
    simply outside every span — stream ``j`` starting at offset ``S``
    with length ``L`` owns rows ``S .. S + L - window_length`` and no
    junction-crossing row falls in that range — so slicing the fused
    matrix by its span yields exactly ``windows_array(stream_j, DW)``
    element for element.

    Args:
        streams: one-dimensional integer arrays, each at least
            ``window_length`` long.
        window_length: the shared detector window ``DW``.

    Returns:
        ``(windows, spans)`` — the fused ``(N, DW)`` window matrix over
        the concatenation and one ``(start, stop)`` row span per input
        stream.

    Raises:
        WindowError: if any stream is shorter than the window.
        ValueError: if ``streams`` is empty.
    """
    if not streams:
        raise ValueError("fused_stream_windows needs at least one stream")
    arrays = [np.ascontiguousarray(s) for s in streams]
    for data in arrays:
        if len(data) < window_length:
            raise WindowError(
                f"stream of length {len(data)} is shorter than "
                f"window length {window_length}"
            )
    if len(arrays) == 1:
        windows = windows_array(arrays[0], window_length)
        return windows, [(0, len(windows))]
    concat = np.concatenate(arrays)
    windows = windows_array(concat, window_length)
    spans: list[tuple[int, int]] = []
    offset = 0
    for data in arrays:
        count = len(data) - window_length + 1
        spans.append((offset, offset + count))
        offset += len(data)
    return windows, spans


def score_batch(detector, windows) -> np.ndarray:
    """Array-in/array-out batch scoring through a fitted detector.

    The uniform kernel entry point: validates the batch and routes it
    to the family's vectorized ``_score_windows`` (one numpy pass per
    batch for every detector in this reproduction).  Exactly
    ``detector.score_windows`` — provided so sweep and test code can
    treat "score this window matrix" as a kernel call rather than a
    method of one detector instance.
    """
    return detector.score_windows(np.asarray(windows))
