"""Fault-tolerant sweep execution: retries, timeouts, degradation.

PR 1's :class:`~repro.runtime.engine.SweepEngine` made performance-map
construction fast; this module makes it survive the failures that
production-scale sweeps (atlas runs, robustness replications) actually
hit.  One crashed worker, one wedged task, or one broken process pool
no longer discards every finished cell:

* **retry with backoff** — a task that raises a
  :class:`~repro.exceptions.TransientTaskError` is re-attempted under a
  configurable budget, with exponential backoff and *deterministic*
  jitter (seeded per task key, so two runs of the same sweep sleep the
  same amount);
* **wall-clock timeouts** — an attempt that outlives
  ``ResiliencePolicy.task_timeout`` is charged a
  :class:`~repro.exceptions.TaskTimeoutError` and retried.  On the
  process backend the hung worker is terminated (real cancellation);
  on the thread/serial backends the attempt is abandoned and a fresh
  pool/thread takes over;
* **graceful degradation** — a broken backend falls down the chain
  ``process -> thread -> serial``, resubmitting every unfinished task,
  so a sweep completes (slower) instead of dying with the pool;
* **failure taxonomy** — only :class:`TransientTaskError` (and its
  timeout subclass) is retried; anything else is fatal and raises
  :class:`~repro.exceptions.SweepAbortedError` *after* the completed
  cells have been streamed to the checkpoint, so a resumed run picks
  up exactly where this one stopped.

The scheduler is deliberately small and deterministic: tasks are
submitted in input order, results are collected as they complete, and
every recovery decision (retry?  delay?  degrade?) is a pure function
of the policy and the failure observed — which is what lets
``tests/runtime/test_faults.py`` prove each path with the seeded
fault-injection harness of :mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable, Iterable
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import (
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.exceptions import (
    DetectorConfigurationError,
    SweepAbortedError,
    TaskTimeoutError,
    TransientTaskError,
)
from repro.runtime import telemetry

#: Backend degradation chain: who takes over when a pool breaks.
DEGRADATION_CHAIN: dict[str, str] = {"process": "thread", "thread": "serial"}


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff curve for transient task failures.

    Attempt ``n`` failing transiently schedules attempt ``n + 1`` after

    ``min(backoff * backoff_factor**(n - 1), max_backoff) * (1 + jitter * u)``

    where ``u`` is drawn uniformly from ``[0, 1)`` by a generator
    seeded with ``(seed, task key, n)`` — jittered, yet bit-for-bit
    reproducible across runs and worker processes.

    Args:
        retries: re-attempts allowed after the first try (0 disables
            retrying; a task then gets exactly one attempt).
        backoff: base delay in seconds before the first retry.
        backoff_factor: multiplier applied per further retry.
        max_backoff: ceiling on the un-jittered delay.
        jitter: jitter fraction added on top of the base delay.
        seed: jitter seed.
    """

    retries: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise DetectorConfigurationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.backoff < 0 or self.max_backoff < 0:
            raise DetectorConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise DetectorConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise DetectorConfigurationError(
                f"jitter must be >= 0, got {self.jitter}"
            )

    def delay(self, key: str, failed_attempt: int) -> float:
        """Seconds to wait before retrying after ``failed_attempt``."""
        base = min(
            self.backoff * self.backoff_factor ** (failed_attempt - 1),
            self.max_backoff,
        )
        u = random.Random(f"retry|{self.seed}|{key}|{failed_attempt}").random()
        return base * (1.0 + self.jitter * u)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything the resilient scheduler needs to know.

    Args:
        retry: retry budget and backoff curve.
        task_timeout: per-attempt wall-clock budget in seconds
            (``None`` disables timeouts).
        degrade: whether a broken backend may fall down
            :data:`DEGRADATION_CHAIN` instead of aborting the sweep.
        fault_schedule: a :class:`~repro.runtime.faults.FaultSchedule`
            injected into every task body — the test harness hook;
            leave ``None`` in production.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    task_timeout: float | None = None
    degrade: bool = True
    fault_schedule: "object | None" = None

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise DetectorConfigurationError(
                f"task_timeout must be > 0, got {self.task_timeout}"
            )

    @classmethod
    def from_args(
        cls, args: object, default_retries: int = 2
    ) -> "ResiliencePolicy | None":
        """The policy described by the shared ``--retries``/``--task-timeout`` flags.

        The one translation of the retry/backoff/timeout CLI surface,
        used by every subcommand that exposes it (``maps``/``atlas``/
        ``select`` sweeps and ``serve``), so the flags mean the same
        thing everywhere instead of each command re-parsing them.

        Args:
            args: any namespace-like object; ``retries`` and
                ``task_timeout`` attributes are read when present.
            default_retries: retry budget applied when only
                ``--task-timeout`` was given.

        Returns:
            ``None`` when neither flag was provided — callers keep
            their no-resilience fast path.
        """
        retries = getattr(args, "retries", None)
        task_timeout = getattr(args, "task_timeout", None)
        if retries is None and task_timeout is None:
            return None
        retry = RetryPolicy(
            retries=retries if retries is not None else default_retries
        )
        return cls(retry=retry, task_timeout=task_timeout)


@dataclass(frozen=True)
class SweepTask:
    """One resilient work unit: a (family, window length) block.

    Args:
        key: stable identity, ``"<family>:<window_length>"`` — the
            basis of deterministic jitter and fault schedules.
        name: detector family.
        window_length: the block's detector window.
        run: in-process attempt body (serial/thread backends, and the
            degradation target for process tasks); maps an attempt
            number to the block result.
        process_payload: ``(fn, args)`` with ``fn`` picklable and
            invoked as ``fn(*args, attempt)`` in a worker process;
            ``None`` for tasks that cannot run on the process backend.
        validate: raises :class:`TransientTaskError` when a result is
            corrupt (checked for every backend, on the parent side).
    """

    key: str
    name: str
    window_length: int
    run: Callable[[int], object]
    process_payload: tuple[Callable[..., object], tuple[object, ...]] | None = None
    validate: Callable[[object], None] | None = None


@dataclass(frozen=True)
class TaskReport:
    """Post-mortem of one task: attempts, failures, elapsed seconds."""

    key: str
    name: str
    window_length: int
    status: str  # "completed" | "resumed" | "failed" | "pending"
    attempts: int
    elapsed: float
    errors: tuple[str, ...] = ()

    @property
    def retried(self) -> bool:
        """Whether the task needed more than one attempt."""
        return self.attempts > 1


@dataclass(frozen=True)
class RunReport:
    """What a resilient sweep did, task by task.

    Attributes:
        requested_backend: the executor the engine was configured with.
        final_backend: the executor that finished the sweep (differs
            from ``requested_backend`` only after degradation).
        degradations: human-readable ``"process->thread: ..."`` events.
        tasks: one :class:`TaskReport` per (family, window) block,
            including blocks skipped via ``resume_from``.
        cells_completed: grid cells computed by this run.
        cells_resumed: grid cells loaded from the resume checkpoint.
        elapsed: sweep wall-clock seconds.
        checkpoint_path: where completed cells were streamed (or None).
        fits_computed: detector fits that ran the full training work
            (neither served by the artifact store nor warm-started).
        fits_from_store: fits loaded from the persistent artifact
            store — zero training work.  A store-warm re-run of an
            identical sweep reports ``fits_computed == 0`` and all
            fits here (the CI cold/warm job pair asserts exactly
            this).
        fits_warm_started: fits initialized from an adjacent-DW donor
            and trained with a reduced budget.
        warm_start_disabled: one entry per block whose warm-start
            attempt was rejected by the equivalence-tolerance gate
            (``"family:DW: reason"``); those blocks fell back to cold
            fits and are counted in ``fits_computed``.
        telemetry: metrics snapshot (``Telemetry.snapshot()["metrics"]``)
            for the run when the engine carried a telemetry collector,
            ``None`` otherwise.
    """

    requested_backend: str
    final_backend: str
    degradations: tuple[str, ...]
    tasks: tuple[TaskReport, ...]
    cells_completed: int
    cells_resumed: int
    elapsed: float
    checkpoint_path: str | None = None
    fits_computed: int = 0
    fits_from_store: int = 0
    fits_warm_started: int = 0
    warm_start_disabled: tuple[str, ...] = ()
    telemetry: dict | None = None

    @property
    def completed(self) -> int:
        """Tasks that ran to completion in this run."""
        return sum(1 for task in self.tasks if task.status == "completed")

    @property
    def resumed(self) -> int:
        """Tasks skipped because the resume checkpoint covered them."""
        return sum(1 for task in self.tasks if task.status == "resumed")

    @property
    def failed(self) -> int:
        """Tasks that exhausted every recovery option."""
        return sum(1 for task in self.tasks if task.status == "failed")

    @property
    def total_retries(self) -> int:
        """Extra attempts spent across all tasks."""
        return sum(max(0, task.attempts - 1) for task in self.tasks)

    @property
    def resumed_fraction(self) -> float:
        """Fraction of grid cells served from the resume checkpoint."""
        total = self.cells_completed + self.cells_resumed
        return self.cells_resumed / total if total else 0.0

    def summary(self) -> str:
        """A one-line operator summary."""
        parts = [
            f"{self.completed} blocks completed",
            f"{self.resumed} resumed",
            f"{self.total_retries} retries",
        ]
        if self.fits_from_store or self.fits_warm_started:
            parts.append(
                f"fits: {self.fits_computed} computed / "
                f"{self.fits_from_store} from store / "
                f"{self.fits_warm_started} warm"
            )
        if self.warm_start_disabled:
            parts.append(f"{len(self.warm_start_disabled)} warm starts disabled")
        if self.degradations:
            parts.append(f"degraded {' then '.join(self.degradations)}")
        backend = (
            self.final_backend
            if self.final_backend == self.requested_backend
            else f"{self.requested_backend}->{self.final_backend}"
        )
        return (
            f"resilient sweep [{backend}]: "
            + ", ".join(parts)
            + f" in {self.elapsed:.2f}s"
        )


class _BackendBroken(Exception):
    """Internal: the current executor backend can no longer run tasks."""


class _TaskState:
    """Mutable per-task bookkeeping across attempts and backends."""

    __slots__ = ("task", "attempts", "errors", "started", "status", "elapsed")

    def __init__(self, task: SweepTask) -> None:
        self.task = task
        self.attempts = 0
        self.errors: list[str] = []
        self.started: float | None = None
        self.status: str | None = None
        self.elapsed = 0.0


class ResilientRunner:
    """Executes sweep tasks under a :class:`ResiliencePolicy`.

    One instance drives one sweep.  The runner owns scheduling,
    retries, timeouts and backend degradation; the engine owns task
    construction, result collection and checkpointing (via the
    ``on_result`` callback, invoked exactly once per completed task,
    in completion order).

    Args:
        policy: the resilience configuration.
        backend: initial executor backend (``"thread"``, ``"process"``
            or ``"serial"``).
        max_workers: pool width for the pooled backends.
        clock: monotonic time source (injectable for tests).
        sleep: sleep function (injectable for tests).
    """

    def __init__(
        self,
        policy: ResiliencePolicy,
        backend: str,
        max_workers: int,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._policy = policy
        self._backend = backend
        self._max_workers = max_workers
        self._clock = clock
        self._sleep = sleep
        self._states: dict[str, _TaskState] = {}
        self._order: list[str] = []
        self._degradations: list[str] = []
        self._final_backend = backend

    @property
    def final_backend(self) -> str:
        """The backend that finished (or was running at abort)."""
        return self._final_backend

    @property
    def degradations(self) -> tuple[str, ...]:
        """Backend degradation events, oldest first."""
        return tuple(self._degradations)

    def task_reports(self) -> tuple[TaskReport, ...]:
        """Per-task reports in submission order (so far, on abort)."""
        reports = []
        for key in self._order:
            state = self._states[key]
            reports.append(
                TaskReport(
                    key=key,
                    name=state.task.name,
                    window_length=state.task.window_length,
                    status=state.status or "pending",
                    attempts=state.attempts,
                    elapsed=state.elapsed,
                    errors=tuple(state.errors),
                )
            )
        return tuple(reports)

    # -- top level --------------------------------------------------------

    def run(
        self,
        tasks: Iterable[SweepTask],
        on_result: Callable[[SweepTask, object], None],
    ) -> None:
        """Run every task to completion, degrading backends as needed.

        Raises:
            SweepAbortedError: when a task fails fatally, exhausts its
                retry budget, or the backend chain runs out.  Tasks
                completed before the abort have already been delivered
                through ``on_result``.
        """
        for task in tasks:
            self._states[task.key] = _TaskState(task)
            self._order.append(task.key)
        backend = self._backend
        while True:
            pending = [
                self._states[key]
                for key in self._order
                if self._states[key].status is None
            ]
            self._final_backend = backend
            if not pending:
                return
            try:
                if backend == "serial":
                    self._run_serial(pending, on_result)
                else:
                    self._run_pooled(pending, on_result, backend)
                return
            except _BackendBroken as broken:
                fallback = DEGRADATION_CHAIN.get(backend)
                if fallback is None or not self._policy.degrade:
                    raise SweepAbortedError(
                        f"sweep aborted: {broken} and no degradation "
                        f"fallback remains (degrade={self._policy.degrade})"
                    ) from broken
                self._degradations.append(f"{backend}->{fallback}: {broken}")
                backend = fallback

    # -- shared attempt bookkeeping ---------------------------------------

    def _finalize_success(
        self,
        state: _TaskState,
        attempt: int,
        result: object,
        on_result: Callable[[SweepTask, object], None],
    ) -> None:
        state.attempts = max(state.attempts, attempt)
        state.status = "completed"
        if state.started is not None:
            state.elapsed = self._clock() - state.started
        on_result(state.task, result)

    def _abort(
        self, state: _TaskState, attempt: int, error: BaseException, why: str
    ) -> None:
        state.attempts = max(state.attempts, attempt)
        state.status = "failed"
        if state.started is not None:
            state.elapsed = self._clock() - state.started
        raise SweepAbortedError(
            f"sweep aborted: block {state.task.key} {why} after "
            f"{state.attempts} attempt(s): {error}"
        ) from error

    def _retry_or_abort(
        self,
        state: _TaskState,
        attempt: int,
        error: BaseException,
        schedule: Callable[[_TaskState, int, float], None],
    ) -> None:
        """Charge a transient failure; schedule the next attempt or abort."""
        state.errors.append(f"attempt {attempt}: {error}")
        state.attempts = max(state.attempts, attempt)
        if isinstance(error, TaskTimeoutError):
            telemetry.count("task.timeouts")
        if attempt <= self._policy.retry.retries:
            delay = self._policy.retry.delay(state.task.key, attempt)
            telemetry.count("task.retries")
            telemetry.event(
                "retry",
                state.task.key,
                attempt=attempt,
                error=type(error).__name__,
                delay=delay,
            )
            schedule(state, attempt + 1, self._clock() + delay)
        else:
            self._abort(state, attempt, error, "exhausted its retry budget")

    # -- serial backend ----------------------------------------------------

    def _attempt_inline(self, task: SweepTask, attempt: int) -> object:
        """One in-process attempt, honoring the wall-clock timeout.

        With a timeout configured the attempt runs on a watchdog
        daemon thread; an overrun abandons the thread (it finishes in
        the background) and raises :class:`TaskTimeoutError`.
        """
        timeout = self._policy.task_timeout
        if timeout is None:
            return task.run(attempt)
        box: dict[str, object] = {}

        def target() -> None:
            try:
                box["result"] = task.run(attempt)
            except BaseException as error:  # re-raised in the caller
                box["error"] = error

        worker = threading.Thread(target=target, daemon=True)
        worker.start()
        worker.join(timeout)
        if worker.is_alive():
            raise TaskTimeoutError(
                f"block {task.key} attempt {attempt} exceeded its "
                f"{timeout:.3g}s wall-clock budget"
            )
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["result"]

    def _run_serial(
        self,
        pending: list[_TaskState],
        on_result: Callable[[SweepTask, object], None],
    ) -> None:
        for state in pending:
            attempt = state.attempts + 1
            while True:
                if state.started is None:
                    state.started = self._clock()
                try:
                    result = self._attempt_inline(state.task, attempt)
                    if state.task.validate is not None:
                        state.task.validate(result)
                except TransientTaskError as error:
                    retry_at: list[float] = []
                    self._retry_or_abort(
                        state,
                        attempt,
                        error,
                        lambda _s, _a, at: retry_at.append(at),
                    )
                    self._sleep(max(0.0, retry_at[0] - self._clock()))
                    attempt += 1
                    continue
                except Exception as error:
                    self._abort(state, attempt, error, "failed fatally")
                self._finalize_success(state, attempt, result, on_result)
                break

    # -- pooled backends ---------------------------------------------------

    def _new_pool(self, backend: str, pools: list[object]):
        pool = (
            ProcessPoolExecutor(max_workers=self._max_workers)
            if backend == "process"
            else ThreadPoolExecutor(max_workers=self._max_workers)
        )
        pools.append(pool)
        return pool

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Kill a process pool's workers (real task cancellation)."""
        processes = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes.values():
            process.terminate()

    def _submit(
        self, pool, backend: str, state: _TaskState, attempt: int
    ) -> Future:
        if state.started is None:
            state.started = self._clock()
        task = state.task
        try:
            if backend == "process":
                fn, args = task.process_payload  # type: ignore[misc]
                return pool.submit(fn, *args, attempt)
            return pool.submit(task.run, attempt)
        except (BrokenProcessPool, RuntimeError) as error:
            raise _BackendBroken(f"{backend} pool rejected work: {error}") from error

    def _run_pooled(
        self,
        pending: list[_TaskState],
        on_result: Callable[[SweepTask, object], None],
        backend: str,
    ) -> None:
        timeout = self._policy.task_timeout
        ready: list[tuple[_TaskState, int, float]] = [
            (state, state.attempts + 1, 0.0) for state in pending
        ]
        inflight: dict[Future, tuple[_TaskState, int, float | None]] = {}
        pools: list[object] = []
        pool = self._new_pool(backend, pools)

        def requeue(state: _TaskState, attempt: int, not_before: float) -> None:
            # Closes over the *variable* ready, so rebinds below are seen.
            ready.append((state, attempt, not_before))

        try:
            while ready or inflight:
                now = self._clock()
                due = [entry for entry in ready if entry[2] <= now]
                ready = [entry for entry in ready if entry[2] > now]
                for state, attempt, _not_before in due:
                    future = self._submit(pool, backend, state, attempt)
                    deadline = now + timeout if timeout is not None else None
                    inflight[future] = (state, attempt, deadline)
                if not inflight:
                    wake = min(not_before for _s, _a, not_before in ready)
                    self._sleep(max(0.0, wake - self._clock()))
                    continue

                bounds = [
                    deadline - now
                    for _state, _attempt, deadline in inflight.values()
                    if deadline is not None
                ]
                bounds.extend(not_before - now for _s, _a, not_before in ready)
                wait_for = max(0.0, min(bounds)) if bounds else None
                done, _running = futures_wait(
                    set(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
                )
                for future in done:
                    state, attempt, _deadline = inflight.pop(future)
                    self._handle_future(
                        future, state, attempt, requeue, on_result, backend
                    )

                if timeout is None:
                    continue
                now = self._clock()
                expired = [
                    future
                    for future, (_s, _a, deadline) in inflight.items()
                    if deadline is not None and deadline <= now
                ]
                for future in expired:
                    if future not in inflight:
                        continue  # resubmitted as a pool-restart victim
                    state, attempt, _deadline = inflight.pop(future)
                    future.cancel()
                    if backend == "process":
                        # Cancellation is real here: the hung worker is
                        # terminated.  Co-inflight tasks die with the
                        # pool, so resubmit them at the same attempt
                        # (they are victims, not failures).
                        victims = list(inflight.values())
                        inflight.clear()
                        self._terminate_pool(pool)
                        pool = self._new_pool(backend, pools)
                        ready.extend(
                            (vstate, vattempt, 0.0)
                            for vstate, vattempt, _vdeadline in victims
                        )
                    elif backend == "thread":
                        # The hung thread cannot be killed; abandon it
                        # and route new work through a fresh pool so a
                        # narrow pool cannot be starved by zombies.
                        pool.shutdown(wait=False)
                        pool = self._new_pool(backend, pools)
                    error = TaskTimeoutError(
                        f"block {state.task.key} attempt {attempt} exceeded "
                        f"its {timeout:.3g}s wall-clock budget"
                    )
                    self._retry_or_abort(state, attempt, error, requeue)
        finally:
            for stale in pools:
                stale.shutdown(wait=False, cancel_futures=True)

    def _handle_future(
        self,
        future: Future,
        state: _TaskState,
        attempt: int,
        requeue: Callable[[_TaskState, int, float], None],
        on_result: Callable[[SweepTask, object], None],
        backend: str,
    ) -> None:
        try:
            result = future.result()
            if state.task.validate is not None:
                state.task.validate(result)
        except BrokenProcessPool as error:
            # The whole pool is gone; every inflight task is a victim.
            # run() degrades the backend and resubmits the unfinished.
            raise _BackendBroken(f"{backend} pool broke: {error}") from error
        except TransientTaskError as error:
            self._retry_or_abort(state, attempt, error, requeue)
        except Exception as error:
            self._abort(state, attempt, error, "failed fatally")
        else:
            self._finalize_success(state, attempt, result, on_result)
