"""One-pass multi-order training index and warm-start fitting support.

Fitting is the dominant remaining cost of a performance-map sweep:
every ``(family, DW)`` cell re-slides, re-sorts and re-counts the same
training stream from scratch, once per window length per family.  Yet
the paper's maps (Figures 3-6) sweep DW ∈ {2..15} over a *fixed*
training stream — exactly the regime where one shared index can serve
every window length.

:class:`TrainingIndex` computes, per stream, a single chain of
unique-window decompositions: for every order ``L`` the distinct
windows of length ``L`` (in lexicographic order), the inverse scatter
index, and the occurrence counts — the frequency table every detector
family's fit reduces to.  The order-``L`` decomposition is *derived
from the order-(L-1) decomposition* rather than recomputed:

* windows of length ``L`` starting at position ``i`` are exactly the
  pairs ``(window_{L-1}[i], stream[i + L - 1])``;
* the previous level's group ids are lexicographically ordered (by
  induction; the base level is a plain ``np.unique`` over symbols), so
  a stable sort of the two small integer keys ``(group, next symbol)``
  yields the length-``L`` groups in lexicographic order.

One stable two-key sort per order replaces the per-cell slide + pack +
full-row sort, and the chain is shared by every family: Stide /
t-Stide membership tables, the Markov joint *and* context tables at
every order, and the Lane&Brodley / Hamming unique-window databases
are all projections of the same decomposition (the DW-1 Markov context
table falls out of the chain for free on the way to DW).

The decompositions are bit-identical to ``np.unique(view, axis=0,
return_index/inverse/counts)`` — ``tests/runtime/test_fitindex.py``
proves it per family over the full AS x DW grid, including the
unpackable corner — so plugging the index under
:class:`~repro.runtime.cache.WindowCache` changes no response value.

The module also hosts the warm-start vocabulary for the iterative
detectors (:class:`WarmStartPolicy`, :class:`WarmStartRegistry`) and
the :class:`FitRecord`/:class:`FitStats` accounting the sweep engine
aggregates into its :class:`~repro.runtime.resilience.RunReport`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DetectorConfigurationError, WindowError
from repro.runtime import telemetry
from repro.sequences.windows import windows_array


@dataclass(frozen=True)
class Decomposition:
    """One order's unique-window decomposition of a stream.

    ``rows[inverse]`` reconstructs the full window sequence;
    ``counts[g]`` is the number of windows in group ``g``; ``first[g]``
    is the start position of group ``g``'s first occurrence.  Rows are
    in lexicographic order, exactly as ``np.unique(view, axis=0)``.
    """

    window_length: int
    inverse: np.ndarray
    counts: np.ndarray
    first: np.ndarray

    @property
    def group_count(self) -> int:
        """Number of distinct windows at this order."""
        return len(self.counts)


class TrainingIndex:
    """Incremental unique-window index over one fixed stream.

    The index is built lazily: asking for order ``L`` extends the chain
    from the highest order already computed, one stable two-key sort
    per missing level.  Instances are not thread-safe on their own —
    :class:`~repro.runtime.cache.WindowCache` serializes access under
    its artifact lock.

    Args:
        stream: the 1-D integer stream to index.  The index keeps a
            reference (levels refer into it).
    """

    def __init__(self, stream: np.ndarray) -> None:
        data = np.asarray(stream)
        if data.ndim != 1:
            raise WindowError(
                f"stream must be one-dimensional, got shape {data.shape}"
            )
        if len(data) == 0:
            raise WindowError("cannot index an empty stream")
        self._stream = data
        self._levels: dict[int, Decomposition] = {}
        self._rows: dict[int, np.ndarray] = {}
        self._extensions = 0

    @property
    def stream(self) -> np.ndarray:
        """The indexed stream."""
        return self._stream

    @property
    def max_order(self) -> int:
        """Highest window length computed so far (0 when untouched)."""
        return max(self._levels, default=0)

    @property
    def extensions(self) -> int:
        """Number of incremental level extensions performed (for tests)."""
        return self._extensions

    def nbytes(self) -> int:
        """Approximate memory footprint of the computed levels."""
        total = 0
        for level in self._levels.values():
            total += level.inverse.nbytes + level.counts.nbytes + level.first.nbytes
        for rows in self._rows.values():
            total += rows.nbytes
        return total

    # -- level construction ----------------------------------------------------

    def _base_level(self) -> Decomposition:
        """Order 1: a plain ``np.unique`` over single symbols."""
        _values, first, inverse, counts = np.unique(
            self._stream,
            return_index=True,
            return_inverse=True,
            return_counts=True,
        )
        return Decomposition(
            window_length=1,
            inverse=inverse.reshape(-1).astype(np.int64, copy=False),
            counts=counts.astype(np.int64, copy=False),
            first=first.astype(np.int64, copy=False),
        )

    def _extend(self, previous: Decomposition) -> Decomposition:
        """Derive order ``L`` from order ``L - 1``.

        A length-``L`` window at start ``i`` is the pair
        ``(group_{L-1}[i], stream[i + L - 1])``; both keys are small
        integers, and the previous groups are lexicographically
        ordered, so one stable two-key sort produces the new groups in
        lexicographic order.  ``np.lexsort`` is stable, so the first
        position inside each run is the group's smallest start index —
        matching ``np.unique``'s first-occurrence convention.
        """
        length = previous.window_length + 1
        n = len(self._stream) - length + 1
        if n < 1:
            raise WindowError(
                f"stream of length {len(self._stream)} is shorter than "
                f"window length {length}"
            )
        telemetry.count("fitindex.extensions")
        with telemetry.span("fitindex", "extend", window_length=length):
            return self._extend_level(previous, length, n)

    def _extend_level(
        self, previous: Decomposition, length: int, n: int
    ) -> Decomposition:
        """The stable two-key refinement behind :meth:`_extend`."""
        prev_groups = previous.inverse[:n]
        next_symbols = self._stream[length - 1 :]
        order = np.lexsort((next_symbols, prev_groups))
        sorted_groups = prev_groups[order]
        sorted_symbols = next_symbols[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.logical_or(
            sorted_groups[1:] != sorted_groups[:-1],
            sorted_symbols[1:] != sorted_symbols[:-1],
            out=boundary[1:],
        )
        starts = np.flatnonzero(boundary)
        group_of_sorted = np.cumsum(boundary) - 1
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = group_of_sorted
        counts = np.diff(np.append(starts, n)).astype(np.int64, copy=False)
        first = order[starts].astype(np.int64, copy=False)
        self._extensions += 1
        return Decomposition(
            window_length=length, inverse=inverse, counts=counts, first=first
        )

    def level(self, window_length: int) -> Decomposition:
        """The order-``window_length`` decomposition, building as needed.

        Raises:
            WindowError: when the stream is shorter than the window.
        """
        if window_length < 1:
            raise WindowError(
                f"window length must be positive, got {window_length}"
            )
        if len(self._stream) < window_length:
            raise WindowError(
                f"stream of length {len(self._stream)} is shorter than "
                f"window length {window_length}"
            )
        cached = self._levels.get(window_length)
        if cached is not None:
            return cached
        highest = 0
        for length in self._levels:
            if length < window_length and length > highest:
                highest = length
        if highest == 0:
            current = self._base_level()
            self._levels[1] = current
            highest = 1
        else:
            current = self._levels[highest]
        while current.window_length < window_length:
            current = self._extend(current)
            self._levels[current.window_length] = current
        return current

    def rows(self, window_length: int) -> np.ndarray:
        """The distinct windows at ``window_length``, lexicographic.

        Materialized once per order from the first-occurrence index —
        identical to ``np.unique(view, axis=0)``.
        """
        cached = self._rows.get(window_length)
        if cached is not None:
            return cached
        level = self.level(window_length)
        view = windows_array(self._stream, window_length)
        rows = np.ascontiguousarray(view[level.first])
        self._rows[window_length] = rows
        return rows

    def decomposition(
        self, window_length: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, inverse, counts)`` at ``window_length``.

        Exactly the triple ``np.unique(view, axis=0,
        return_inverse=True, return_counts=True)`` would produce, with
        rows shared per order across callers.
        """
        level = self.level(window_length)
        return self.rows(window_length), level.inverse, level.counts


# -- warm-start support --------------------------------------------------------


@dataclass(frozen=True)
class WarmStartPolicy:
    """How iterative detectors may reuse adjacent-DW fits.

    A warm-started fit initializes from a donor model trained at an
    adjacent window length (preferring ``DW - 1``) and trains for a
    reduced epoch budget.  The *equivalence-tolerance gate* then
    compares the warm fit's final loss against the donor's: a warm fit
    that fails to reach donor-quality loss (within ``loss_tolerance``)
    is discarded and the detector silently refits cold — the fallback
    is recorded so :class:`~repro.runtime.resilience.RunReport` can
    surface it.

    Warm starting trades bit-reproducibility for speed (the paper's
    responses are graded, so the *classification* is gated, not the
    bits); paper-fidelity runs disable it via ``--no-warm-start``.

    Args:
        epochs_fraction: fraction of the cold epoch budget a warm fit
            trains for (at least one epoch).
        loss_tolerance: maximal allowed excess of the warm final loss
            over the donor's final loss before the gate rejects.
    """

    epochs_fraction: float = 0.5
    loss_tolerance: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.epochs_fraction <= 1.0:
            raise DetectorConfigurationError(
                f"epochs_fraction must lie in (0, 1], got {self.epochs_fraction}"
            )
        if self.loss_tolerance < 0.0:
            raise DetectorConfigurationError(
                f"loss_tolerance must be >= 0, got {self.loss_tolerance}"
            )

    def warm_epochs(self, cold_epochs: int) -> int:
        """The reduced epoch budget for a warm-started fit."""
        return max(1, round(cold_epochs * self.epochs_fraction))


class WarmStartRegistry:
    """In-process donor registry for warm-started fits.

    Completed fits publish their serialized state keyed by
    ``(stream digest, window-length-free fingerprint, DW)``; a later
    fit at an adjacent DW of the same stream and configuration adopts
    the donor as initialization.  Thread-safe: sweeps publish and
    query from concurrent worker threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._donors: dict[tuple[str, str, int], tuple[dict, float]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._donors)

    def publish(
        self,
        digest: str,
        fingerprint: str,
        window_length: int,
        state: dict,
        loss: float,
    ) -> None:
        """Offer a fitted model as a donor for adjacent window lengths."""
        with self._lock:
            self._donors[(digest, fingerprint, window_length)] = (state, loss)

    def donor(
        self, digest: str, fingerprint: str, window_length: int
    ) -> tuple[int, dict, float] | None:
        """Best adjacent donor for ``window_length``: ``DW-1`` then ``DW+1``.

        Returns ``(donor window length, state, final loss)`` or ``None``.
        """
        with self._lock:
            for candidate in (window_length - 1, window_length + 1):
                if candidate < 2:
                    continue
                held = self._donors.get((digest, fingerprint, candidate))
                if held is not None:
                    state, loss = held
                    return candidate, state, loss
        return None

    def clear(self) -> None:
        """Drop every donor (releases the referenced arrays)."""
        with self._lock:
            self._donors.clear()


# -- fit accounting ------------------------------------------------------------


@dataclass(frozen=True)
class FitRecord:
    """How one detector fit was obtained.

    Attributes:
        origin: ``"computed"`` (a real fit ran), ``"store"`` (loaded
            from the artifact store — zero fitting work), or
            ``"warm"`` (initialized from an adjacent-DW donor and
            trained with a reduced budget).
        store_key: the content-addressed key consulted, when a store
            was attached.
        warm_donor_window: the donor DW of a warm-started fit.
        warm_disabled: the gate's reason when a warm start was
            attempted but rejected (the fit fell back to cold).
    """

    origin: str = "computed"
    store_key: str | None = None
    warm_donor_window: int | None = None
    warm_disabled: str | None = None


@dataclass(frozen=True)
class FitStats:
    """Aggregate fit accounting for one sweep (rides on RunReport)."""

    computed: int = 0
    from_store: int = 0
    warm_started: int = 0
    warm_disabled: tuple[str, ...] = ()

    @property
    def total(self) -> int:
        """All fits the sweep resolved, however they were obtained."""
        return self.computed + self.from_store + self.warm_started


class FitLedger:
    """Thread-safe accumulator of :class:`FitRecord` events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._computed = 0
        self._from_store = 0
        self._warm = 0
        self._disabled: list[str] = []

    def record(self, record: FitRecord | None, key: str) -> None:
        """Fold one block's fit record into the ledger."""
        if record is None:
            return
        with self._lock:
            if record.origin == "store":
                self._from_store += 1
            elif record.origin == "warm":
                self._warm += 1
            else:
                self._computed += 1
            if record.warm_disabled is not None:
                self._disabled.append(f"{key}: {record.warm_disabled}")

    def snapshot(self) -> FitStats:
        """An immutable view of the counters so far."""
        with self._lock:
            return FitStats(
                computed=self._computed,
                from_store=self._from_store,
                warm_started=self._warm,
                warm_disabled=tuple(self._disabled),
            )


@dataclass(frozen=True)
class _Unset:
    """Internal sentinel type (dataclass so it pickles cheaply)."""


UNSET = _Unset()


@dataclass
class FitContext:
    """Everything a block needs to resolve fits beyond the raw streams.

    Bundled so :func:`~repro.runtime.engine.evaluate_window_block` can
    attach one object to a detector: the persistent store, the warm
    policy, and the in-process donor registry.
    """

    store: object | None = None
    warm_policy: WarmStartPolicy | None = None
    registry: WarmStartRegistry | None = field(default=None, repr=False)
