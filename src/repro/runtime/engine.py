"""Concurrent sweep evaluation of detector families over the suite grid.

The performance maps of Figures 3-6 require fitting and scoring every
detector family at every (anomaly size x window length) cell.  The
serial path re-derives the same sliding windows for every family and
re-scores the same repetitive test windows at every cell;
:class:`SweepEngine` removes both redundancies and runs the remaining
work concurrently:

* **work unit** — one (family, window length) block: a single fit on
  the training stream followed by one scoring pass per anomaly size
  (the fit is the expensive, shareable half of a grid column);
* **shared window cache** — every block slides and packs each
  (stream, DW) combination through one :class:`~repro.runtime.cache.WindowCache`,
  so Stide, t-Stide, Markov and L&B all reuse a single derivation;
* **unique-window memoized scoring** — for the expensive families
  (L&B's database comparison, the neural network's forward pass) the
  test stream is deduplicated, each distinct window is scored once via
  :meth:`~repro.detectors.base.AnomalyDetector.score_windows`, and the
  responses are scattered back.  The injected streams are highly
  repetitive, so this cuts the comparison work by an order of
  magnitude without changing a single response value.

Every cell is computed by the same deterministic, side-effect-free
rule as the serial loop in
:func:`repro.evaluation.performance_map.build_performance_map`, and
cells are assembled into the map by grid position rather than
completion order — the resulting maps are bit-identical to the
sequential path regardless of worker count or executor backend
(``benchmarks/bench_sweep.py`` verifies this cell for cell).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.datagen.suite import EvaluationSuite
from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import create_detector
from repro.evaluation.performance_map import Cell, CellResult, PerformanceMap
from repro.evaluation.scoring import outcome_from_responses, score_injected
from repro.exceptions import EvaluationError
from repro.runtime.cache import WindowCache

DetectorFactory = Callable[[int], AnomalyDetector]

#: Families whose per-window scoring is expensive enough that
#: deduplicating test windows pays for the scatter: the L&B comparison
#: tensor, the neural network's forward pass, and the Markov
#: detector's per-window dictionary walk.
MEMOIZED_FAMILIES: frozenset[str] = frozenset(
    {"lane-brodley", "markov", "neural-network"}
)

#: Executor backends accepted by :class:`SweepEngine`.
EXECUTORS: tuple[str, ...] = ("thread", "process", "serial")


def evaluate_window_block(
    detector: AnomalyDetector,
    suite: EvaluationSuite,
    cache: WindowCache | None = None,
    memoize: bool = False,
) -> list[CellResult]:
    """Fit one detector and score it on every anomaly size of the suite.

    One grid column of a performance map: the detector is fitted once
    on the training stream, then deployed on each injected stream.

    Args:
        detector: an unfitted detector instance.
        suite: the evaluation corpus.
        cache: shared window artifacts; attached to the detector for
            the duration of the block when given.
        memoize: score each distinct test window once and scatter the
            responses back (requires ``cache``).

    Returns:
        One :class:`CellResult` per anomaly size, ascending.
    """
    if cache is not None:
        detector.attach_cache(cache)
    fitted = detector.fit(suite.training.stream)
    window_length = fitted.window_length
    results = []
    for anomaly_size in suite.anomaly_sizes:
        injected = suite.stream(anomaly_size)
        if memoize and cache is not None:
            unique_rows, inverse = cache.unique(
                injected.stream, window_length, fitted.alphabet_size
            )
            responses = fitted.score_windows(unique_rows)[inverse]
            outcome = outcome_from_responses(
                responses, injected, window_length, fitted.response_tolerance
            )
        else:
            outcome = score_injected(fitted, injected)
        results.append(
            CellResult(
                anomaly_size=anomaly_size,
                window_length=window_length,
                outcome=outcome,
            )
        )
    return results


def _process_window_block(
    name: str,
    window_length: int,
    suite: EvaluationSuite,
    detector_kwargs: dict[str, object],
    memoize: bool,
) -> tuple[str, int, list[CellResult]]:
    """Process-pool entry point: one (family, window) block, own cache."""
    detector = create_detector(
        name, window_length, suite.training.alphabet.size, **detector_kwargs
    )
    cells = evaluate_window_block(
        detector, suite, cache=WindowCache(), memoize=memoize
    )
    return name, window_length, cells


class SweepEngine:
    """Evaluates detector families over the suite grid concurrently.

    Args:
        max_workers: concurrent (family, window) blocks; defaults to
            the CPU count.
        executor: ``"thread"`` (default — NumPy kernels release the
            GIL, and the window cache is shared across workers),
            ``"process"`` (isolated workers; registered detector names
            only, each worker builds its own cache), or ``"serial"``
            (inline execution in deterministic submission order, for
            debugging and as the reference path).
        memoized_detectors: family names scored via unique-window
            memoization; defaults to :data:`MEMOIZED_FAMILIES`.
        window_cache: a pre-populated cache to share; a fresh one is
            created when omitted.

    Raises:
        EvaluationError: for unknown executors or worker counts < 1.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        executor: str = "thread",
        memoized_detectors: Iterable[str] = MEMOIZED_FAMILIES,
        window_cache: WindowCache | None = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise EvaluationError(
                f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
            )
        if max_workers is not None and max_workers < 1:
            raise EvaluationError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers or os.cpu_count() or 1
        self._executor = executor
        self._memoized = frozenset(memoized_detectors)
        self._cache = window_cache if window_cache is not None else WindowCache()

    @property
    def max_workers(self) -> int:
        """Concurrent block budget."""
        return self._max_workers

    @property
    def executor(self) -> str:
        """The configured executor backend."""
        return self._executor

    @property
    def window_cache(self) -> WindowCache:
        """The cache shared by thread/serial sweeps."""
        return self._cache

    def _resolve(
        self,
        detectors: Iterable[str | DetectorFactory],
        suite: EvaluationSuite,
        detector_kwargs: dict[str, object],
    ) -> list[tuple[str, str | None, DetectorFactory]]:
        """Normalize detector specs to (name, registry name, factory)."""
        alphabet_size = suite.training.alphabet.size
        resolved: list[tuple[str, str | None, DetectorFactory]] = []
        for spec in detectors:
            if isinstance(spec, str):

                def factory(
                    window_length: int, _name: str = spec
                ) -> AnomalyDetector:
                    return create_detector(
                        _name, window_length, alphabet_size, **detector_kwargs
                    )

                resolved.append((spec, spec, factory))
            else:
                name = spec(min(suite.window_lengths)).name
                resolved.append((name, None, spec))
        if not resolved:
            raise EvaluationError("at least one detector is required")
        names = [name for name, _registry, _factory in resolved]
        if len(set(names)) != len(names):
            raise EvaluationError(
                f"duplicate detector families in sweep: {', '.join(names)}"
            )
        return resolved

    def sweep(
        self,
        detectors: Iterable[str | DetectorFactory],
        suite: EvaluationSuite,
        **detector_kwargs: object,
    ) -> dict[str, PerformanceMap]:
        """Evaluate several families over the full grid concurrently.

        Args:
            detectors: registered names and/or window-length factories.
            suite: the evaluation corpus.
            **detector_kwargs: forwarded to the registry for name
                specs (ignored for factories).

        Returns:
            One full-grid map per family, keyed by name, in input
            order; bit-identical to the serial
            :func:`~repro.evaluation.performance_map.build_performance_map`
            output.
        """
        resolved = self._resolve(detectors, suite, dict(detector_kwargs))
        cells: dict[str, dict[Cell, CellResult]] = {
            name: {} for name, _registry, _factory in resolved
        }
        blocks = [
            (name, registry_name, factory, window_length)
            for name, registry_name, factory in resolved
            for window_length in suite.window_lengths
        ]
        if self._executor == "process":
            self._sweep_processes(cells, blocks, suite, dict(detector_kwargs))
        elif self._executor == "serial" or self._max_workers == 1:
            for name, _registry_name, factory, window_length in blocks:
                self._collect(
                    cells,
                    name,
                    self._run_block(factory, window_length, suite, name),
                )
        else:
            self._sweep_threads(cells, blocks, suite)
        return {
            name: PerformanceMap(detector_name=name, cells=cells[name])
            for name, _registry_name, _factory in resolved
        }

    def build_map(
        self,
        detector: str | DetectorFactory,
        suite: EvaluationSuite,
        **detector_kwargs: object,
    ) -> PerformanceMap:
        """Evaluate a single family (the engine-backed
        :func:`build_performance_map`)."""
        maps = self.sweep([detector], suite, **detector_kwargs)
        return next(iter(maps.values()))

    # -- backends ---------------------------------------------------------------

    def _run_block(
        self,
        factory: DetectorFactory,
        window_length: int,
        suite: EvaluationSuite,
        name: str,
    ) -> list[CellResult]:
        return evaluate_window_block(
            factory(window_length),
            suite,
            cache=self._cache,
            memoize=name in self._memoized,
        )

    @staticmethod
    def _collect(
        cells: dict[str, dict[Cell, CellResult]],
        name: str,
        results: list[CellResult],
    ) -> None:
        for result in results:
            cells[name][(result.anomaly_size, result.window_length)] = result

    def _sweep_threads(self, cells, blocks, suite) -> None:
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            futures = {
                pool.submit(
                    self._run_block, factory, window_length, suite, name
                ): name
                for name, _registry_name, factory, window_length in blocks
            }
            # Collect in submission order; cells are keyed by grid
            # position, so completion order cannot affect the maps.
            for future in futures:
                self._collect(cells, futures[future], future.result())

    def _sweep_processes(self, cells, blocks, suite, detector_kwargs) -> None:
        unregistered = [
            name
            for name, registry_name, _factory, _window_length in blocks
            if registry_name is None
        ]
        if unregistered:
            raise EvaluationError(
                "the process executor requires registered detector names; "
                f"got factories for: {', '.join(sorted(set(unregistered)))}"
            )
        with ProcessPoolExecutor(max_workers=self._max_workers) as pool:
            futures = [
                pool.submit(
                    _process_window_block,
                    registry_name,
                    window_length,
                    suite,
                    detector_kwargs,
                    registry_name in self._memoized,
                )
                for _name, registry_name, _factory, window_length in blocks
            ]
            for future in futures:
                name, _window_length, results = future.result()
                self._collect(cells, name, results)
