"""Concurrent sweep evaluation of detector families over the suite grid.

The performance maps of Figures 3-6 require fitting and scoring every
detector family at every (anomaly size x window length) cell.  The
serial path re-derives the same sliding windows for every family and
re-scores the same repetitive test windows at every cell;
:class:`SweepEngine` removes both redundancies and runs the remaining
work concurrently:

* **work unit** — one (family, window length) block: a single fit on
  the training stream followed by one scoring pass per anomaly size
  (the fit is the expensive, shareable half of a grid column);
* **shared window cache** — every block slides and packs each
  (stream, DW) combination through one :class:`~repro.runtime.cache.WindowCache`,
  so Stide, t-Stide, Markov and L&B all reuse a single derivation;
* **unique-window memoized scoring** — for the expensive families
  (L&B's database comparison, the neural network's forward pass) the
  test stream is deduplicated, each distinct window is scored once via
  the vectorized batch kernels behind
  :meth:`~repro.detectors.base.AnomalyDetector.score_batch`
  (see :mod:`repro.runtime.kernels`), and the responses are scattered
  back.  The injected streams are highly repetitive, so this cuts the
  comparison work by an order of magnitude without changing a single
  response value;
* **zero-copy transport** — under the process backend the suite's
  streams are published once into a shared-memory
  :class:`~repro.runtime.arena.WindowArena` and workers attach by
  segment name, so task payloads carry (name, shape, dtype)
  descriptors instead of pickled arrays.  Where shared memory is
  unavailable the sweep degrades to the pickle transport, and the
  resilient scheduler's last rung is serial in-process execution:
  ``shm -> pickle -> serial``.

Every cell is computed by the same deterministic, side-effect-free
rule as the serial loop in
:func:`repro.evaluation.performance_map.build_performance_map`, and
cells are assembled into the map by grid position rather than
completion order — the resulting maps are bit-identical to the
sequential path regardless of worker count or executor backend
(``benchmarks/bench_sweep.py`` verifies this cell for cell).
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path

from repro.datagen.suite import EvaluationSuite
from repro.detectors.base import AnomalyDetector
from repro.detectors.registry import create_detector
from repro.evaluation.performance_map import Cell, CellResult, PerformanceMap
from repro.evaluation.scoring import score_injected, score_injected_memoized
from repro.exceptions import (
    EvaluationError,
    SweepAbortedError,
    TransientTaskError,
)
from repro.runtime.arena import SharedSuite, WindowArena, share_suite
from repro.runtime.cache import CacheStats, WindowCache
from repro.runtime.faults import FaultSchedule, apply_fault, corrupt_block
from repro.runtime.fitindex import (
    FitLedger,
    FitRecord,
    FitStats,
    WarmStartPolicy,
    WarmStartRegistry,
)
from repro.runtime.kernels import KERNEL_TIERS, TIER_AUTO
from repro.runtime.resilience import (
    ResiliencePolicy,
    ResilientRunner,
    RunReport,
    SweepTask,
    TaskReport,
)
from repro.runtime.store import ArtifactStore
from repro.runtime import telemetry
from repro.runtime.telemetry import (
    Telemetry,
    TelemetryConfig,
    ensure_worker_profiler,
)

DetectorFactory = Callable[[int], AnomalyDetector]

#: Families whose per-window scoring is expensive enough that
#: deduplicating test windows pays for the scatter: the L&B comparison
#: tensor, the neural network's forward pass, and the Markov
#: detector's per-window dictionary walk.
MEMOIZED_FAMILIES: frozenset[str] = frozenset(
    {"lane-brodley", "markov", "neural-network"}
)

#: Executor backends accepted by :class:`SweepEngine`.
EXECUTORS: tuple[str, ...] = ("thread", "process", "serial")


def evaluate_window_block(
    detector: AnomalyDetector,
    suite: EvaluationSuite,
    cache: WindowCache | None = None,
    memoize: bool = False,
    store: ArtifactStore | None = None,
    warm_policy: WarmStartPolicy | None = None,
    warm_registry: WarmStartRegistry | None = None,
    kernel_tier: str = TIER_AUTO,
) -> list[CellResult]:
    """Fit one detector and score it on every anomaly size of the suite.

    One grid column of a performance map: the detector is fitted once
    on the training stream, then deployed on each injected stream.

    Args:
        detector: an unfitted detector instance.
        suite: the evaluation corpus.
        cache: shared window artifacts; attached to the detector for
            the duration of the block when given.
        memoize: score each distinct test window once and scatter the
            responses back (requires ``cache``).
        store: persistent artifact store; when given, the fit is
            looked up by content address before any training work and
            written back on a miss.  How the fit was obtained is
            reported via ``detector.last_fit_report``.
        warm_policy: lets iterative families initialize from an
            adjacent-DW donor (see
            :class:`~repro.runtime.fitindex.WarmStartPolicy`).
        warm_registry: in-process donor registry shared across the
            sweep's blocks.
        kernel_tier: membership kernel tier for the block's scoring
            (see :meth:`~repro.detectors.base.AnomalyDetector.attach_kernel_tier`);
            responses are bit-identical across tiers.

    Returns:
        One :class:`CellResult` per anomaly size, ascending.
    """
    detector.attach_kernel_tier(kernel_tier)
    if cache is not None:
        detector.attach_cache(cache)
    if store is not None:
        detector.attach_store(store)
    if warm_policy is not None:
        detector.attach_warm_start(warm_policy, warm_registry)
    with telemetry.span(
        "fit", detector.name, window_length=detector.window_length
    ):
        fitted = detector.fit(suite.training.stream)
    window_length = fitted.window_length
    results = []
    for anomaly_size in suite.anomaly_sizes:
        injected = suite.stream(anomaly_size)
        with telemetry.span(
            "score",
            detector.name,
            anomaly_size=anomaly_size,
            window_length=window_length,
        ) as cell_span:
            if memoize and cache is not None:
                outcome = score_injected_memoized(fitted, injected, cache)
            else:
                outcome = score_injected(fitted, injected)
        telemetry.observe("cell.wall", cell_span.wall)
        telemetry.observe("cell.cpu", cell_span.cpu)
        results.append(
            CellResult(
                anomaly_size=anomaly_size,
                window_length=window_length,
                outcome=outcome,
            )
        )
    return results


#: Per-process cache shared by every zero-copy task a worker handles.
#: :meth:`SharedSuite.restore` memoizes by segment name, so the same
#: task payload always resolves to identity-stable arrays — exactly the
#: keying this cache needs to stay warm across tasks.  Pool workers are
#: single-threaded, so no lock is required around the stats delta.
_WORKER_CACHE: WindowCache | None = None

#: Per-process warm-start donor registry; lives for the worker's
#: lifetime so fits in the same worker can donate to each other.
_WORKER_REGISTRY: WarmStartRegistry | None = None


def _worker_fit_context(
    store_spec: tuple[str, int | None] | None,
    warm_policy: WarmStartPolicy | None,
) -> tuple[ArtifactStore | None, WarmStartRegistry | None]:
    """Materialize a task's store and donor registry inside a worker.

    The store is rebuilt from its picklable spec — the directory is
    the shared state, so a per-task instance is equivalent (only the
    local traffic counters are per-instance; the parent's RunReport
    fit counters travel via :class:`FitRecord` instead).  The registry
    is worker-global: donors accumulate across the tasks a worker
    handles.
    """
    global _WORKER_REGISTRY
    store = ArtifactStore.from_spec(store_spec)
    registry = None
    if warm_policy is not None:
        if _WORKER_REGISTRY is None:
            _WORKER_REGISTRY = WarmStartRegistry()
        registry = _WORKER_REGISTRY
    return store, registry


def _worker_suite(
    suite: EvaluationSuite | SharedSuite,
) -> tuple[EvaluationSuite, WindowCache, CacheStats | None]:
    """Materialize a task's suite and pick its cache inside a worker.

    A :class:`SharedSuite` descriptor attaches the parent's
    shared-memory segments zero-copy and shares the worker-global
    cache (returning a stats snapshot so the caller can report only
    this task's delta); a plain pickled suite gets a fresh private
    cache, exactly the pre-arena behavior.
    """
    global _WORKER_CACHE
    if isinstance(suite, SharedSuite):
        if _WORKER_CACHE is None:
            _WORKER_CACHE = WindowCache()
        before = _WORKER_CACHE.stats  # snapshot precedes restore's credits
        return suite.restore(cache=_WORKER_CACHE), _WORKER_CACHE, before
    return suite, WindowCache(), None


def _process_window_block(
    name: str,
    window_length: int,
    suite: EvaluationSuite | SharedSuite,
    detector_kwargs: dict[str, object],
    memoize: bool,
    store_spec: tuple[str, int | None] | None = None,
    warm_policy: WarmStartPolicy | None = None,
    telemetry_spec: TelemetryConfig | None = None,
    kernel_tier: str = TIER_AUTO,
) -> tuple[
    str, int, list[CellResult], CacheStats, FitRecord | None, dict | None
]:
    """Process-pool entry point: one (family, window) block.

    The worker's cache counters (for zero-copy tasks: this task's
    counter *delta* against the worker-global cache), the block's
    :class:`FitRecord` and the task's telemetry snapshot ride back
    with the results so the parent can fold them into the engine
    cache's statistics, the sweep's fit ledger and the sweep's
    telemetry (see :meth:`WindowCache.merge_counts` and
    :meth:`~repro.runtime.telemetry.Telemetry.merge_snapshot`).
    """
    task_telemetry = Telemetry.from_spec(telemetry_spec)
    if task_telemetry is not None and task_telemetry.profile_dir is not None:
        ensure_worker_profiler(task_telemetry.profile_dir)
    with telemetry.activated(task_telemetry):
        with telemetry.span("block", f"{name}:{window_length}"):
            suite, cache, before = _worker_suite(suite)
            detector = create_detector(
                name, window_length, suite.training.alphabet.size, **detector_kwargs
            )
            store, registry = _worker_fit_context(store_spec, warm_policy)
            cells = evaluate_window_block(
                detector,
                suite,
                cache=cache,
                memoize=memoize,
                store=store,
                warm_policy=warm_policy,
                warm_registry=registry,
                kernel_tier=kernel_tier,
            )
        stats = cache.stats
        if before is not None:
            stats = CacheStats(
                hits=stats.hits - before.hits, misses=stats.misses - before.misses
            )
    snapshot = (
        task_telemetry.snapshot() if task_telemetry is not None else None
    )
    return name, window_length, cells, stats, detector.last_fit_report, snapshot


def _process_resilient_block(
    name: str,
    window_length: int,
    suite: EvaluationSuite | SharedSuite,
    detector_kwargs: dict[str, object],
    memoize: bool,
    schedule: FaultSchedule | None,
    store_spec: tuple[str, int | None] | None,
    warm_policy: WarmStartPolicy | None,
    telemetry_spec: TelemetryConfig | None,
    kernel_tier: str,
    attempt: int,
) -> tuple[list[CellResult], CacheStats, FitRecord | None, dict | None]:
    """Process-pool entry point for the resilient scheduler.

    Identical to :func:`_process_window_block` except that the attempt
    number and the (test-only) fault schedule are threaded through, so
    injected faults fire deterministically inside the worker.
    """
    corrupt = apply_fault(schedule, f"{name}:{window_length}", attempt)
    _name, _window_length, cells, stats, record, snapshot = _process_window_block(
        name,
        window_length,
        suite,
        detector_kwargs,
        memoize,
        store_spec,
        warm_policy,
        telemetry_spec,
        kernel_tier,
    )
    if corrupt:
        cells = corrupt_block(cells)
    return cells, stats, record, snapshot


class SweepEngine:
    """Evaluates detector families over the suite grid concurrently.

    Args:
        max_workers: concurrent (family, window) blocks; defaults to
            the CPU count.
        executor: ``"thread"`` (default — NumPy kernels release the
            GIL, and the window cache is shared across workers),
            ``"process"`` (isolated workers; registered detector names
            only, each worker builds its own cache), or ``"serial"``
            (inline execution in deterministic submission order, for
            debugging and as the reference path).
        memoized_detectors: family names scored via unique-window
            memoization; defaults to :data:`MEMOIZED_FAMILIES`.
        window_cache: a pre-populated cache to share; a fresh one is
            created when omitted.
        resilience: a :class:`~repro.runtime.resilience.ResiliencePolicy`
            enabling fault-tolerant execution (retries with backoff,
            per-task timeouts, backend degradation).  ``None`` keeps
            the zero-overhead fast paths; ``sweep_with_report`` and
            checkpointed sweeps always run resiliently, applying a
            default policy when none is configured.
        use_shared_memory: ship suites to process-backend workers as
            zero-copy shared-memory descriptors (see
            :mod:`repro.runtime.arena`) instead of pickled arrays.
            Ignored by the thread/serial backends, which share arrays
            in-process already.  When shared memory is unavailable or
            publishing fails, the sweep silently degrades to the
            pickle transport — the ``shm -> pickle -> serial`` ladder.
        store: a persistent :class:`~repro.runtime.store.ArtifactStore`
            (or its directory path) backing every fit of every sweep:
            fits are looked up by content address before any training
            work and written back on a miss, so re-runs skip fitting
            entirely.  ``None`` (the default) disables persistence.
        warm_start: whether iterative detectors may warm-start from
            adjacent-DW donors.  ``None`` (the default) auto-enables
            exactly when a store is attached: warm starting trades
            bit-reproducibility for speed, so it stays off unless the
            caller already opted into the persistent-fit machinery;
            pass ``False`` (the ``--no-warm-start`` escape hatch) to
            keep store-backed runs bit-reproducible, or ``True`` to
            force it on without a store.
        warm_policy: the gate parameters for warm-started fits;
            defaults to :class:`~repro.runtime.fitindex.WarmStartPolicy`.
        telemetry: a :class:`~repro.runtime.telemetry.Telemetry`
            collector activated for the duration of every sweep: spans
            and metrics from every instrumented component (this engine,
            the window cache, the artifact store, the fit index, the
            resilient scheduler, the batch kernels) accumulate on it,
            including snapshots merged back from process workers.
            ``None`` (the default) keeps every instrumentation site on
            its single-branch disabled path.
        kernel_tier: membership kernel tier applied to every block
            (``auto`` | ``bisect`` | ``automaton``, the CLI's
            ``--kernel-tier``).  ``auto`` (default) routes packable
            Stide/t-Stide cells through the one-pass multi-order
            automaton (:mod:`repro.runtime.automaton`); ``bisect``
            pins the classic per-DW bisection; ``automaton`` forces
            the profile path where applicable.  Maps are bit-identical
            across tiers and backends.

    Raises:
        EvaluationError: for unknown executors or worker counts < 1.
        Both are raised here, at construction — before any stream is
        packed into the window cache — so a misconfigured sweep fails
        without wasting a single derivation.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        executor: str = "thread",
        memoized_detectors: Iterable[str] = MEMOIZED_FAMILIES,
        window_cache: WindowCache | None = None,
        resilience: ResiliencePolicy | None = None,
        use_shared_memory: bool = True,
        store: ArtifactStore | str | Path | None = None,
        warm_start: bool | None = None,
        warm_policy: WarmStartPolicy | None = None,
        telemetry: Telemetry | None = None,
        kernel_tier: str = TIER_AUTO,
    ) -> None:
        if executor not in EXECUTORS:
            raise EvaluationError(
                f"unknown executor {executor!r}; available: {', '.join(EXECUTORS)}"
            )
        if max_workers is not None and max_workers < 1:
            raise EvaluationError(f"max_workers must be >= 1, got {max_workers}")
        if kernel_tier not in KERNEL_TIERS:
            raise EvaluationError(
                f"unknown kernel tier {kernel_tier!r}; "
                f"available: {', '.join(KERNEL_TIERS)}"
            )
        self._max_workers = max_workers or os.cpu_count() or 1
        self._executor = executor
        self._memoized = frozenset(memoized_detectors)
        self._cache = window_cache if window_cache is not None else WindowCache()
        self._resilience = resilience
        self._use_shm = bool(use_shared_memory)
        self._store = (
            ArtifactStore(store) if isinstance(store, (str, Path)) else store
        )
        warm = (self._store is not None) if warm_start is None else bool(warm_start)
        self._warm_policy = (warm_policy or WarmStartPolicy()) if warm else None
        self._warm_registry = WarmStartRegistry() if warm else None
        self._ledger: FitLedger | None = None
        self._last_fit_stats = FitStats()
        self._telemetry = telemetry
        self._kernel_tier = kernel_tier

    @property
    def max_workers(self) -> int:
        """Concurrent block budget."""
        return self._max_workers

    @property
    def executor(self) -> str:
        """The configured executor backend."""
        return self._executor

    @property
    def window_cache(self) -> WindowCache:
        """The cache shared by thread/serial sweeps."""
        return self._cache

    @property
    def resilience(self) -> ResiliencePolicy | None:
        """The configured resilience policy (``None`` = fast paths)."""
        return self._resilience

    @property
    def use_shared_memory(self) -> bool:
        """Whether process sweeps attempt the zero-copy transport."""
        return self._use_shm

    @property
    def store(self) -> ArtifactStore | None:
        """The persistent artifact store (``None`` when disabled)."""
        return self._store

    @property
    def warm_start_enabled(self) -> bool:
        """Whether iterative fits may warm-start from adjacent DWs."""
        return self._warm_policy is not None

    @property
    def last_fit_stats(self) -> FitStats:
        """Fit accounting of the most recent sweep on this engine."""
        return self._last_fit_stats

    @property
    def telemetry(self) -> Telemetry | None:
        """The attached telemetry collector (``None`` = disabled)."""
        return self._telemetry

    @property
    def kernel_tier(self) -> str:
        """The membership kernel tier applied to every block."""
        return self._kernel_tier

    def attach_telemetry(self, collector: Telemetry | None) -> None:
        """Attach (or detach, with ``None``) a telemetry collector."""
        self._telemetry = collector

    @contextmanager
    def _instrumented(self, kind: str) -> Iterator[None]:
        """Activate the engine's telemetry around one sweep.

        Opens the root ``sweep`` span, and on the way out — success or
        abort — emits the end-of-sweep summary counters derived from
        the engine's authoritative sources (the fit ledger and the
        engine cache's stats delta), which
        :func:`~repro.runtime.telemetry.check_trace_counters`
        cross-checks against the event counters the components emitted
        along the way.  Pass-through when no telemetry is attached.
        """
        collector = self._telemetry
        if collector is None:
            yield
            return
        cache_before = self._cache.stats
        try:
            with telemetry.activated(collector), collector.tracer.span(
                "sweep",
                kind,
                executor=self._executor,
                max_workers=self._max_workers,
            ):
                try:
                    yield
                finally:
                    self._sweep_summary(collector, cache_before)
        finally:
            collector.dump_profiles()

    def _sweep_summary(
        self, collector: Telemetry, cache_before: CacheStats
    ) -> None:
        """Emit one sweep's summary counters onto ``collector``.

        Summaries are *counted* (not overwritten) so several sweeps on
        one engine accumulate consistently with the per-event counters
        they mirror.
        """
        fit_stats = (
            self._ledger.snapshot() if self._ledger is not None else FitStats()
        )
        cache_after = self._cache.stats
        metrics = collector.metrics
        metrics.count("fits.computed", fit_stats.computed)
        metrics.count("fits.from_store", fit_stats.from_store)
        metrics.count("fits.warm", fit_stats.warm_started)
        metrics.count("cache.hits", cache_after.hits - cache_before.hits)
        metrics.count("cache.misses", cache_after.misses - cache_before.misses)
        metrics.count("sweep.count", 1)
        if self._store is not None:
            metrics.count("sweep.with_store", 1)

    def _resolve(
        self,
        detectors: Iterable[str | DetectorFactory],
        suite: EvaluationSuite,
        detector_kwargs: dict[str, object],
    ) -> list[tuple[str, str | None, DetectorFactory]]:
        """Normalize detector specs to (name, registry name, factory).

        Every spec-level validation error — including the process
        backend's registered-names-only restriction — is raised here,
        before any factory is invoked or any stream is packed into the
        window cache: a misconfigured sweep must fail fast, not after
        wasted derivations.
        """
        specs = list(detectors)
        if self._executor == "process":
            unregistered = sum(1 for spec in specs if not isinstance(spec, str))
            if unregistered:
                raise EvaluationError(
                    "the process executor requires registered detector names; "
                    f"got {unregistered} factory spec(s)"
                )
        alphabet_size = suite.training.alphabet.size
        resolved: list[tuple[str, str | None, DetectorFactory]] = []
        for spec in specs:
            if isinstance(spec, str):

                def factory(
                    window_length: int, _name: str = spec
                ) -> AnomalyDetector:
                    return create_detector(
                        _name, window_length, alphabet_size, **detector_kwargs
                    )

                resolved.append((spec, spec, factory))
            else:
                name = spec(min(suite.window_lengths)).name
                resolved.append((name, None, spec))
        if not resolved:
            raise EvaluationError("at least one detector is required")
        names = [name for name, _registry, _factory in resolved]
        if len(set(names)) != len(names):
            raise EvaluationError(
                f"duplicate detector families in sweep: {', '.join(names)}"
            )
        return resolved

    def sweep(
        self,
        detectors: Iterable[str | DetectorFactory],
        suite: EvaluationSuite,
        checkpoint: str | Path | None = None,
        resume_from: str | Path | None = None,
        **detector_kwargs: object,
    ) -> dict[str, PerformanceMap]:
        """Evaluate several families over the full grid concurrently.

        Args:
            detectors: registered names and/or window-length factories.
            suite: the evaluation corpus.
            checkpoint: JSONL file to stream completed cells to (see
                :func:`repro.io.checkpoint_append`); forces the
                resilient path.
            resume_from: a checkpoint file whose completed cells are
                loaded instead of recomputed; forces the resilient
                path.  The resumed maps are bit-identical to an
                uninterrupted run.
            **detector_kwargs: forwarded to the registry for name
                specs (ignored for factories).

        Returns:
            One full-grid map per family, keyed by name, in input
            order; bit-identical to the serial
            :func:`~repro.evaluation.performance_map.build_performance_map`
            output.
        """
        if (
            self._resilience is not None
            or checkpoint is not None
            or resume_from is not None
        ):
            maps, _report = self.sweep_with_report(
                detectors,
                suite,
                checkpoint=checkpoint,
                resume_from=resume_from,
                **detector_kwargs,
            )
            return maps
        resolved = self._resolve(detectors, suite, dict(detector_kwargs))
        self._ledger = FitLedger()
        cells: dict[str, dict[Cell, CellResult]] = {
            name: {} for name, _registry, _factory in resolved
        }
        blocks = [
            (name, registry_name, factory, window_length)
            for name, registry_name, factory in resolved
            for window_length in suite.window_lengths
        ]
        with self._instrumented("sweep"):
            if self._executor == "process":
                self._sweep_processes(cells, blocks, suite, dict(detector_kwargs))
            elif self._executor == "serial" or self._max_workers == 1:
                for name, _registry_name, factory, window_length in blocks:
                    self._collect(
                        cells,
                        name,
                        self._run_block(factory, window_length, suite, name),
                    )
            else:
                self._sweep_threads(cells, blocks, suite)
        self._last_fit_stats = self._ledger.snapshot()
        return {
            name: PerformanceMap(detector_name=name, cells=cells[name])
            for name, _registry_name, _factory in resolved
        }

    def sweep_with_report(
        self,
        detectors: Iterable[str | DetectorFactory],
        suite: EvaluationSuite,
        checkpoint: str | Path | None = None,
        resume_from: str | Path | None = None,
        **detector_kwargs: object,
    ) -> tuple[dict[str, PerformanceMap], RunReport]:
        """Resilient sweep: maps plus a per-task :class:`RunReport`.

        Always runs through the fault-tolerant scheduler (applying a
        default :class:`ResiliencePolicy` when the engine was built
        without one), streaming completed cells to ``checkpoint`` and
        skipping cells already present in ``resume_from``.

        Raises:
            SweepAbortedError: when a task fails fatally or exhausts
                its retry budget; the partial report rides on the
                exception and the checkpoint keeps every finished cell.
        """
        resolved = self._resolve(detectors, suite, dict(detector_kwargs))
        return self._sweep_resilient(
            resolved, suite, dict(detector_kwargs), checkpoint, resume_from
        )

    def build_map(
        self,
        detector: str | DetectorFactory,
        suite: EvaluationSuite,
        checkpoint: str | Path | None = None,
        resume_from: str | Path | None = None,
        **detector_kwargs: object,
    ) -> PerformanceMap:
        """Evaluate a single family (the engine-backed
        :func:`build_performance_map`)."""
        maps = self.sweep(
            [detector],
            suite,
            checkpoint=checkpoint,
            resume_from=resume_from,
            **detector_kwargs,
        )
        return next(iter(maps.values()))

    def build_map_with_report(
        self,
        detector: str | DetectorFactory,
        suite: EvaluationSuite,
        checkpoint: str | Path | None = None,
        resume_from: str | Path | None = None,
        **detector_kwargs: object,
    ) -> tuple[PerformanceMap, RunReport]:
        """Single-family :meth:`sweep_with_report`."""
        maps, report = self.sweep_with_report(
            [detector],
            suite,
            checkpoint=checkpoint,
            resume_from=resume_from,
            **detector_kwargs,
        )
        return next(iter(maps.values())), report

    # -- zero-copy transport ----------------------------------------------------

    def _share_suite(
        self, suite: EvaluationSuite
    ) -> tuple[EvaluationSuite | SharedSuite, WindowArena | None]:
        """Publish the suite's streams into a shared-memory arena.

        Returns ``(transport, arena)``: the descriptor-only
        :class:`SharedSuite` plus its owning arena, or
        ``(suite, None)`` when shared memory is disabled, unavailable
        on the platform, or publishing fails mid-way — the pickle rung
        of the degradation ladder.  On success the arena is bound to
        the engine cache so evicting a stream releases its segment.

        The transport carries the training stream's *derived* tables
        too: the unique-window decomposition at every sweep window
        length, computed once here through the engine cache's
        incremental training index and seeded zero-copy into each
        worker's cache on restore.
        """
        if not self._use_shm or not WindowArena.available():
            return suite, None
        arena = WindowArena()
        try:
            transport = share_suite(
                arena,
                suite,
                cache=self._cache,
                window_lengths=tuple(suite.window_lengths),
            )
        except Exception:
            arena.close()
            return suite, None
        self._cache.bind_arena(arena)
        return transport, arena

    def _teardown_arena(
        self, arena: WindowArena | None, suite: EvaluationSuite | None = None
    ) -> None:
        """Unbind and unlink the sweep's arena; release its streams.

        When the sweep's ``suite`` is given, its streams are also
        released from the engine cache
        (:meth:`WindowCache.release_stream`): the cache keys streams by
        identity and pins a reference to each, so a long-lived engine
        sweeping many suites would otherwise retain every suite it has
        ever seen.  Arena-backed sweeps are exactly the
        many-suites-per-engine regime, so teardown is where the
        footgun is defused.
        """
        if arena is not None:
            self._cache.unbind_arena(arena)
            arena.close()
        if suite is not None:
            self._cache.release_stream(suite.training.stream)
            for anomaly_size in suite.anomaly_sizes:
                self._cache.release_stream(suite.stream(anomaly_size).stream)

    # -- backends ---------------------------------------------------------------

    def _run_block(
        self,
        factory: DetectorFactory,
        window_length: int,
        suite: EvaluationSuite,
        name: str,
    ) -> list[CellResult]:
        with telemetry.span(
            "block", f"{name}:{window_length}"
        ), telemetry.profiled():
            detector = factory(window_length)
            results = evaluate_window_block(
                detector,
                suite,
                cache=self._cache,
                memoize=name in self._memoized,
                store=self._store,
                warm_policy=self._warm_policy,
                warm_registry=self._warm_registry,
                kernel_tier=self._kernel_tier,
            )
        ledger = self._ledger
        if ledger is not None:
            ledger.record(detector.last_fit_report, f"{name}:{window_length}")
        return results

    @staticmethod
    def _collect(
        cells: dict[str, dict[Cell, CellResult]],
        name: str,
        results: list[CellResult],
    ) -> None:
        for result in results:
            cells[name][(result.anomaly_size, result.window_length)] = result

    def _sweep_threads(self, cells, blocks, suite) -> None:
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            futures = {
                pool.submit(
                    self._run_block, factory, window_length, suite, name
                ): name
                for name, _registry_name, factory, window_length in blocks
            }
            # Collect in submission order; cells are keyed by grid
            # position, so completion order cannot affect the maps.
            for future in futures:
                self._collect(cells, futures[future], future.result())

    def _sweep_processes(self, cells, blocks, suite, detector_kwargs) -> None:
        # Factory specs were already rejected by _resolve (fail fast).
        transport, arena = self._share_suite(suite)
        try:
            store_spec = self._store.spec() if self._store is not None else None
            telemetry_spec = (
                self._telemetry.spec() if self._telemetry is not None else None
            )
            with ProcessPoolExecutor(max_workers=self._max_workers) as pool:
                futures = [
                    pool.submit(
                        _process_window_block,
                        registry_name,
                        window_length,
                        transport,
                        detector_kwargs,
                        registry_name in self._memoized,
                        store_spec,
                        self._warm_policy,
                        telemetry_spec,
                        self._kernel_tier,
                    )
                    for _name, registry_name, _factory, window_length in blocks
                ]
                for future in futures:
                    name, window_length, results, stats, record, snapshot = (
                        future.result()
                    )
                    self._cache.merge_counts(stats.hits, stats.misses)
                    if self._ledger is not None:
                        self._ledger.record(record, f"{name}:{window_length}")
                    if self._telemetry is not None:
                        self._telemetry.merge_snapshot(snapshot)
                    self._collect(cells, name, results)
        finally:
            self._teardown_arena(arena, suite if arena is not None else None)

    # -- resilient execution ----------------------------------------------

    def _block_tasks(
        self,
        resolved: list[tuple[str, str | None, DetectorFactory]],
        suite: EvaluationSuite,
        detector_kwargs: dict[str, object],
        skip: set[tuple[str, int]],
        schedule: FaultSchedule | None,
        payload_suite: EvaluationSuite | SharedSuite | None = None,
    ) -> list[SweepTask]:
        """One :class:`SweepTask` per (family, window) block not in ``skip``.

        ``payload_suite`` is the suite representation shipped inside
        each task's *process* payload — the zero-copy
        :class:`SharedSuite` descriptor under the process backend with
        an arena, the plain suite otherwise.  The in-process ``run``
        closure always uses the real ``suite``; a backend degradation
        to threads therefore never depends on the arena.
        """
        expected = len(suite.anomaly_sizes)
        tasks = []
        for name, registry_name, factory in resolved:
            for window_length in suite.window_lengths:
                if (name, window_length) in skip:
                    continue
                key = f"{name}:{window_length}"

                def run(
                    attempt: int,
                    _factory: DetectorFactory = factory,
                    _window_length: int = window_length,
                    _name: str = name,
                    _key: str = key,
                ) -> tuple[
                    list[CellResult],
                    CacheStats | None,
                    FitRecord | None,
                    dict | None,
                ]:
                    corrupt = apply_fault(schedule, _key, attempt)
                    # _run_block records its FitRecord in the engine
                    # ledger itself; only process payloads ship one back.
                    results = self._run_block(
                        _factory, _window_length, suite, _name
                    )
                    if corrupt:
                        results = corrupt_block(results)
                    return results, None, None, None

                def validate(
                    result: object,
                    _window_length: int = window_length,
                    _key: str = key,
                ) -> None:
                    results = result[0]  # type: ignore[index]
                    if len(results) != expected or any(
                        cell.window_length != _window_length for cell in results
                    ):
                        raise TransientTaskError(
                            f"block {_key} returned a corrupt result "
                            f"({len(results)}/{expected} cells)"
                        )

                payload = None
                if registry_name is not None:
                    payload = (
                        _process_resilient_block,
                        (
                            registry_name,
                            window_length,
                            suite if payload_suite is None else payload_suite,
                            detector_kwargs,
                            registry_name in self._memoized,
                            schedule,
                            self._store.spec() if self._store is not None else None,
                            self._warm_policy,
                            self._telemetry.spec()
                            if self._telemetry is not None
                            else None,
                            self._kernel_tier,
                        ),
                    )
                tasks.append(
                    SweepTask(
                        key=key,
                        name=name,
                        window_length=window_length,
                        run=run,
                        process_payload=payload,
                        validate=validate,
                    )
                )
        return tasks

    def _load_resume(
        self,
        resume_from: str | Path,
        names: list[str],
        suite: EvaluationSuite,
        cells: dict[str, dict[Cell, CellResult]],
    ) -> tuple[set[tuple[str, int]], list[TaskReport], int]:
        """Adopt checkpointed cells; report which blocks can be skipped.

        Only cells inside the suite grid are adopted, and a block is
        skipped only when *every* anomaly size of its (family, window)
        column is present — a partially checkpointed block is re-run
        in full (its recomputed cells are bit-identical, so duplicate
        checkpoint lines are harmless last-write-wins records).

        Loads are lenient: a kill can truncate the checkpoint's final
        line mid-write, and that line's block is simply recomputed.
        """
        from repro.io import checkpoint_load

        loaded = checkpoint_load(resume_from, strict=False)
        sizes = set(suite.anomaly_sizes)
        windows = set(suite.window_lengths)
        skip: set[tuple[str, int]] = set()
        resumed_reports = []
        cells_resumed = 0
        for name in names:
            for (anomaly_size, window_length), result in loaded.get(
                name, {}
            ).items():
                if anomaly_size in sizes and window_length in windows:
                    cells[name][(anomaly_size, window_length)] = result
            for window_length in suite.window_lengths:
                if all(
                    (anomaly_size, window_length) in cells[name]
                    for anomaly_size in suite.anomaly_sizes
                ):
                    skip.add((name, window_length))
                    cells_resumed += len(suite.anomaly_sizes)
                    resumed_reports.append(
                        TaskReport(
                            key=f"{name}:{window_length}",
                            name=name,
                            window_length=window_length,
                            status="resumed",
                            attempts=0,
                            elapsed=0.0,
                        )
                    )
        # Drop adopted cells of partially covered blocks: those blocks
        # re-run in full, and the map assembly must not mix sources.
        for name in names:
            cells[name] = {
                cell: result
                for cell, result in cells[name].items()
                if (name, cell[1]) in skip
            }
        return skip, resumed_reports, cells_resumed

    def _sweep_resilient(
        self,
        resolved: list[tuple[str, str | None, DetectorFactory]],
        suite: EvaluationSuite,
        detector_kwargs: dict[str, object],
        checkpoint: str | Path | None,
        resume_from: str | Path | None,
    ) -> tuple[dict[str, PerformanceMap], RunReport]:
        from repro.io import checkpoint_append

        policy = self._resilience if self._resilience is not None else ResiliencePolicy()
        schedule = policy.fault_schedule
        if schedule is not None and not isinstance(schedule, FaultSchedule):
            raise EvaluationError(
                f"fault_schedule must be a FaultSchedule, got {type(schedule).__name__}"
            )
        names = [name for name, _registry, _factory in resolved]
        self._ledger = FitLedger()
        cells: dict[str, dict[Cell, CellResult]] = {name: {} for name in names}
        skip: set[tuple[str, int]] = set()
        resumed_reports: list[TaskReport] = []
        cells_resumed = 0
        if resume_from is not None:
            skip, resumed_reports, cells_resumed = self._load_resume(
                resume_from, names, suite, cells
            )
        aborted: SweepAbortedError | None = None
        with self._instrumented("resilient"):
            payload_suite, arena = (
                self._share_suite(suite)
                if self._executor == "process"
                else (suite, None)
            )
            tasks = self._block_tasks(
                resolved, suite, detector_kwargs, skip, schedule, payload_suite
            )

            def on_result(task: SweepTask, result: object) -> None:
                results, stats, record, snapshot = result  # type: ignore[misc]
                if stats is not None:
                    self._cache.merge_counts(stats.hits, stats.misses)
                if record is not None and self._ledger is not None:
                    self._ledger.record(record, task.key)
                if snapshot is not None and self._telemetry is not None:
                    self._telemetry.merge_snapshot(snapshot)
                self._collect(cells, task.name, results)
                if checkpoint is not None:
                    checkpoint_append(checkpoint, task.name, results)

            runner = ResilientRunner(
                policy, backend=self._executor, max_workers=self._max_workers
            )
            started = time.perf_counter()
            try:
                runner.run(tasks, on_result)
            except SweepAbortedError as error:
                aborted = error
            finally:
                elapsed = time.perf_counter() - started
                # Unlink the arena whether the sweep finished, aborted,
                # or was killed by a worker timeout: segments must never
                # outlive the sweep that published them.
                self._teardown_arena(arena, suite if arena is not None else None)
        # The report (and its telemetry snapshot) is built after the
        # instrumentation context closes so the end-of-sweep summary
        # counters are part of it.
        report = self._run_report(
            runner, resumed_reports, cells, cells_resumed, elapsed, checkpoint
        )
        if aborted is not None:
            raise SweepAbortedError(str(aborted), report) from aborted.__cause__
        maps = {
            name: PerformanceMap(detector_name=name, cells=cells[name])
            for name in names
        }
        return maps, report

    def _run_report(
        self,
        runner: ResilientRunner,
        resumed_reports: list[TaskReport],
        cells: dict[str, dict[Cell, CellResult]],
        cells_resumed: int,
        elapsed: float,
        checkpoint: str | Path | None,
    ) -> RunReport:
        computed = sum(len(family) for family in cells.values()) - cells_resumed
        fit_stats = (
            self._ledger.snapshot() if self._ledger is not None else FitStats()
        )
        self._last_fit_stats = fit_stats
        return RunReport(
            requested_backend=self._executor,
            final_backend=runner.final_backend,
            degradations=runner.degradations,
            tasks=tuple(resumed_reports) + runner.task_reports(),
            cells_completed=max(0, computed),
            cells_resumed=cells_resumed,
            elapsed=elapsed,
            checkpoint_path=str(checkpoint) if checkpoint is not None else None,
            fits_computed=fit_stats.computed,
            fits_from_store=fit_stats.from_store,
            fits_warm_started=fit_stats.warm_started,
            warm_start_disabled=fit_stats.warm_disabled,
            telemetry=(
                self._telemetry.snapshot()["metrics"]
                if self._telemetry is not None
                else None
            ),
        )
