"""Zero-copy shared-memory transport for sweep suites.

Every process-backend sweep task needs the same handful of large
arrays: the training stream and one injected test stream per anomaly
size.  Pickling them into each task repeats megabytes of payload per
(family, window) block — pure serialization overhead, since the arrays
are immutable for the whole sweep.  This module materializes them
exactly once:

* :class:`WindowArena` — the parent-side owner.  ``publish`` copies an
  array into a named ``multiprocessing.shared_memory`` segment (one
  copy, ever) and returns a picklable :class:`ArrayDescriptor`;
  segments are refcounted per source array and unlinked on ``release``
  or ``close``.
* :class:`ArrayDescriptor` — the wire format.  A task ships only
  ``(name, shape, dtype)`` — tens of bytes — instead of the array.
* :func:`attach_array` — the worker side.  Attaches the named segment
  (once per process; later descriptors for the same name reuse the
  mapping) and reconstructs a read-only ``np.ndarray`` view directly
  over the shared pages: zero copies, zero pickling.
* :class:`SharedSuite` / :func:`share_suite` — an
  :class:`~repro.datagen.suite.EvaluationSuite` flattened to
  descriptors plus its small scalar metadata; ``restore`` rebuilds a
  real suite through the ordinary constructors (validation included),
  memoized per process so every task in a worker sees the *same*
  stream objects — which is what makes a worker-wide
  :class:`~repro.runtime.cache.WindowCache` (keyed by array identity)
  effective across tasks.

The degradation ladder is shm -> pickle -> serial: when shared memory
is unavailable (platform, permissions) or publishing fails, the engine
falls back to shipping the pickled suite exactly as before; the
thread/serial backends never involve the arena at all (workers share
the parent's address space already).

**Resource-tracker note.**  Attaching a segment registers it with the
``multiprocessing`` resource tracker as if the attaching process owned
it (bpo-39959).  One tracker process serves the whole fork tree and
keys segments by name, so the workers' registrations collapse into the
parent's own and the parent's explicit ``unlink`` clears the single
entry.  Workers deliberately do *not* unregister: concurrent
unregisters from several workers race inside the tracker (KeyError
noise), while the redundant registrations are harmless — and double as
a safety net that unlinks the segments if the parent dies without
cleaning up.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.datagen.injection import InjectedStream
from repro.datagen.suite import EvaluationSuite
from repro.datagen.training import TrainingData
from repro.exceptions import EvaluationError
from repro.runtime import telemetry

try:  # pragma: no cover - import succeeds on all supported platforms
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    shared_memory = None  # type: ignore[assignment]

#: Prefix of every segment this module creates.  Leak tests (and
#: operators) can audit ``/dev/shm`` for stragglers by this name.
SEGMENT_PREFIX = "repro-arena"

_SEGMENT_IDS = itertools.count()


@dataclass(frozen=True)
class ArrayDescriptor:
    """The wire format of one published array.

    What a sweep task ships instead of the array itself: the shared
    segment's ``name`` plus the ``shape`` and ``dtype`` needed to
    reconstruct the ``np.ndarray`` view on the worker side.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the described array's data in bytes."""
        count = 1
        for extent in self.shape:
            count *= int(extent)
        return count * np.dtype(self.dtype).itemsize


def _destroy_segment(segment: "shared_memory.SharedMemory") -> None:
    """Close and unlink one owned segment, swallowing teardown races."""
    try:
        segment.close()
    except Exception:  # teardown must not raise
        pass
    try:
        segment.unlink()
    except Exception:  # already unlinked is fine
        pass


_AVAILABLE: bool | None = None


class WindowArena:
    """Parent-side owner of the sweep's shared-memory segments.

    One arena serves one sweep: the engine publishes the suite's
    arrays before submitting tasks and closes the arena — unlinking
    every segment — in a ``finally`` that also covers aborted sweeps.

    Publishing is refcounted by source-array identity: publishing the
    same array again returns the existing descriptor and bumps its
    count; :meth:`release` unlinks the segment only when the count
    reaches zero (this is what lets :meth:`WindowCache.evict
    <repro.runtime.cache.WindowCache.evict>` release a stream's
    segments without tearing down co-published ones).
    """

    def __init__(self) -> None:
        if shared_memory is None:  # pragma: no cover - exotic platforms
            raise EvaluationError("shared memory is unavailable on this platform")
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._descriptors: dict[str, ArrayDescriptor] = {}
        #: id(source array) -> (segment name, refcount)
        self._published: dict[int, tuple[str, int]] = {}
        #: Pin published arrays so their id() stays valid for our life.
        self._arrays: dict[int, np.ndarray] = {}
        self._closed = False

    @staticmethod
    def available() -> bool:
        """Whether this platform supports named shared-memory segments.

        Probes by actually creating (and immediately destroying) a
        minimal segment; the verdict is cached for the process.
        """
        global _AVAILABLE
        if _AVAILABLE is None:
            if shared_memory is None:  # pragma: no cover
                _AVAILABLE = False
            else:
                try:
                    probe = shared_memory.SharedMemory(
                        name=f"{SEGMENT_PREFIX}-probe-{os.getpid()}",
                        create=True,
                        size=1,
                    )
                except Exception:  # any failure means "no"
                    _AVAILABLE = False
                else:
                    _destroy_segment(probe)
                    _AVAILABLE = True
        return _AVAILABLE

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def segment_names(self) -> tuple[str, ...]:
        """Names of the currently live segments (for tests/audits)."""
        with self._lock:
            return tuple(self._segments)

    def publish(self, array: np.ndarray) -> ArrayDescriptor:
        """Copy ``array`` into a shared segment (once) and describe it.

        Repeat publications of the same array (by identity) return the
        existing descriptor with its refcount bumped.

        Raises:
            EvaluationError: when the arena is already closed.
        """
        with self._lock:
            if self._closed:
                raise EvaluationError("cannot publish into a closed arena")
            key = id(array)
            held = self._published.get(key)
            if held is not None:
                name, refs = held
                self._published[key] = (name, refs + 1)
                return self._descriptors[name]
            data = np.ascontiguousarray(array)
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEGMENT_IDS)}"
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, data.nbytes)
            )
            try:
                view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
                view[...] = data
                del view  # drop the buffer export before any later close()
            except Exception:
                _destroy_segment(segment)
                raise
            descriptor = ArrayDescriptor(
                name=name, shape=tuple(data.shape), dtype=str(data.dtype)
            )
            self._segments[name] = segment
            self._descriptors[name] = descriptor
            self._published[key] = (name, 1)
            self._arrays[key] = array
            return descriptor

    def release(self, array: np.ndarray) -> bool:
        """Drop one reference to ``array``'s segment; unlink at zero.

        Returns:
            ``True`` when the segment was actually destroyed.  Unknown
            arrays are a no-op (``False``) — callers like the window
            cache release unconditionally on evict.
        """
        with self._lock:
            key = id(array)
            held = self._published.get(key)
            if held is None:
                return False
            name, refs = held
            if refs > 1:
                self._published[key] = (name, refs - 1)
                return False
            del self._published[key]
            del self._arrays[key]
            segment = self._segments.pop(name)
            del self._descriptors[name]
        _destroy_segment(segment)
        return True

    def close(self) -> None:
        """Unlink every live segment.  Idempotent; never raises."""
        with self._lock:
            self._closed = True
            segments = list(self._segments.values())
            self._segments.clear()
            self._descriptors.clear()
            self._published.clear()
            self._arrays.clear()
        for segment in segments:
            _destroy_segment(segment)


# -- worker side -------------------------------------------------------------

_ATTACH_LOCK = threading.Lock()
#: segment name -> (mapping, reconstructed view); one attach per process.
_ATTACHED: dict[str, tuple["shared_memory.SharedMemory", np.ndarray]] = {}
#: restore() memo: segment-name tuple -> the reconstructed suite.
_RESTORED: dict[tuple[str, ...], EvaluationSuite] = {}


def attach_array(descriptor: ArrayDescriptor) -> np.ndarray:
    """A zero-copy, read-only view of a published array.

    The named segment is mapped at most once per process; every later
    descriptor naming it reuses the same ``np.ndarray`` object, giving
    the arrays stable identity across tasks (which the worker-wide
    window cache keys on).
    """
    if shared_memory is None:  # pragma: no cover - exotic platforms
        raise EvaluationError("shared memory is unavailable on this platform")
    with _ATTACH_LOCK:
        held = _ATTACHED.get(descriptor.name)
        if held is not None:
            return held[1]
        segment = shared_memory.SharedMemory(name=descriptor.name)
        array: np.ndarray = np.ndarray(
            descriptor.shape, dtype=np.dtype(descriptor.dtype), buffer=segment.buf
        )
        array.flags.writeable = False
        _ATTACHED[descriptor.name] = (segment, array)
        return array


def detach_all() -> None:
    """Drop every attachment and restored suite in this process.

    Registered via ``atexit`` so worker shutdown closes its mappings;
    also the test hook for simulating a fresh worker.  Close failures
    (live buffer exports at interpreter teardown) are swallowed — the
    mappings die with the process either way, and the segments
    themselves are the parent's to unlink.
    """
    with _ATTACH_LOCK:
        held = list(_ATTACHED.values())
        _ATTACHED.clear()
        _RESTORED.clear()
    for segment, _array in held:
        try:
            segment.close()
        except Exception:  # teardown must not raise
            pass


atexit.register(detach_all)


# -- suite transport ---------------------------------------------------------


@dataclass(frozen=True)
class SharedCase:
    """One injected test stream, flattened to a descriptor + scalars."""

    anomaly_size: int
    stream: ArrayDescriptor
    anomaly: tuple[int, ...]
    position: int
    left_phase: int
    right_phase: int


@dataclass(frozen=True)
class SharedTable:
    """One derived training decomposition, flattened to descriptors.

    The (rows, inverse, counts) unique-window decomposition of the
    training stream at one window length — the table every detector
    family's fit reduces to.  Publishing the *derived* tables, not
    just the raw streams, means process workers never redo the
    training sort: they attach the parent's arrays and seed their
    worker-global cache (see :meth:`SharedSuite.restore`).
    """

    window_length: int
    rows: ArrayDescriptor
    inverse: ArrayDescriptor
    counts: ArrayDescriptor


@dataclass(frozen=True)
class SharedSuite:
    """An :class:`EvaluationSuite` flattened for descriptor transport.

    The wire format of a zero-copy sweep task: the large arrays (the
    training stream, each injected test stream, and optionally the
    training stream's derived unique-window tables) travel as
    :class:`ArrayDescriptor` names; everything else — alphabet,
    generating source, parameters, synthesized anomalies, injection
    scalars — is small and pickles as-is.
    """

    alphabet: object
    source: object
    params: object
    training_stream: ArrayDescriptor
    anomalies: dict[int, object] = field(repr=False)
    cases: tuple[SharedCase, ...] = ()
    training_tables: tuple[SharedTable, ...] = ()

    def descriptors(self) -> tuple[ArrayDescriptor, ...]:
        """Every array descriptor the transport references."""
        described = [self.training_stream]
        described.extend(case.stream for case in self.cases)
        for table in self.training_tables:
            described.extend((table.rows, table.inverse, table.counts))
        return tuple(described)

    def restore(self, cache: "object | None" = None) -> EvaluationSuite:
        """Rebuild a real suite over zero-copy shared views.

        Reconstruction goes through the ordinary
        :class:`TrainingData`/:class:`InjectedStream`/:class:`EvaluationSuite`
        constructors, so their validation applies unchanged.  The
        result is memoized per process: every task of a worker sees
        the same suite object, hence the same stream identities.

        Args:
            cache: a :class:`~repro.runtime.cache.WindowCache` to
                credit — each descriptor served from the arena counts
                as a cache *hit* (the artifact existed and was reused;
                nothing was recomputed).
        """
        with telemetry.span("arena", "restore"):
            return self._restore(cache)

    def _restore(self, cache: "object | None") -> EvaluationSuite:
        key = tuple(descriptor.name for descriptor in self.descriptors())
        with _ATTACH_LOCK:
            suite = _RESTORED.get(key)
        if suite is None:
            training = TrainingData(
                stream=attach_array(self.training_stream),
                alphabet=self.alphabet,
                source=self.source,
                params=self.params,
            )
            streams = {
                case.anomaly_size: InjectedStream(
                    stream=attach_array(case.stream),
                    anomaly=case.anomaly,
                    position=case.position,
                    left_phase=case.left_phase,
                    right_phase=case.right_phase,
                )
                for case in self.cases
            }
            suite = EvaluationSuite(
                training=training,
                anomalies=dict(self.anomalies),
                streams=streams,
            )
            with _ATTACH_LOCK:
                suite = _RESTORED.setdefault(key, suite)
        if cache is not None:
            if self.training_tables:
                training_stream = suite.training.stream
                for table in self.training_tables:
                    cache.seed_decomposition(  # type: ignore[attr-defined]
                        training_stream,
                        table.window_length,
                        attach_array(table.rows),
                        attach_array(table.inverse),
                        attach_array(table.counts),
                    )
            cache.credit(len(key))  # type: ignore[attr-defined]
        return suite


def share_suite(
    arena: WindowArena,
    suite: EvaluationSuite,
    cache: "object | None" = None,
    window_lengths: tuple[int, ...] = (),
) -> SharedSuite:
    """Publish a suite's arrays into ``arena`` and build its transport.

    Args:
        arena: the parent-side segment owner.
        suite: the suite to flatten.
        cache: a :class:`~repro.runtime.cache.WindowCache` through
            which to derive the training stream's unique-window
            decompositions (they come from its incremental training
            index, one sort for the whole DW axis).
        window_lengths: the sweep's window lengths; with ``cache``
            given, each length's (rows, inverse, counts) tables are
            published as :class:`SharedTable` entries so workers skip
            the training sort entirely.
    """
    with telemetry.span("arena", "publish"):
        return _share_suite(arena, suite, cache, window_lengths)


def _share_suite(
    arena: WindowArena,
    suite: EvaluationSuite,
    cache: "object | None",
    window_lengths: tuple[int, ...],
) -> SharedSuite:
    cases = []
    for anomaly_size in suite.anomaly_sizes:
        injected = suite.stream(anomaly_size)
        cases.append(
            SharedCase(
                anomaly_size=anomaly_size,
                stream=arena.publish(injected.stream),
                anomaly=injected.anomaly,
                position=injected.position,
                left_phase=injected.left_phase,
                right_phase=injected.right_phase,
            )
        )
    training_stream = suite.training.stream
    tables = []
    if cache is not None:
        for window_length in sorted(set(window_lengths)):
            if window_length > len(training_stream):
                continue
            rows, inverse = cache.unique(  # type: ignore[attr-defined]
                training_stream, window_length
            )
            _rows, counts = cache.unique_counts(  # type: ignore[attr-defined]
                training_stream, window_length
            )
            tables.append(
                SharedTable(
                    window_length=window_length,
                    rows=arena.publish(rows),
                    inverse=arena.publish(inverse),
                    counts=arena.publish(counts),
                )
            )
    return SharedSuite(
        alphabet=suite.training.alphabet,
        source=suite.training.source,
        params=suite.training.params,
        training_stream=arena.publish(training_stream),
        anomalies={size: suite.anomaly(size) for size in suite.anomaly_sizes},
        cases=tuple(cases),
        training_tables=tuple(tables),
    )
