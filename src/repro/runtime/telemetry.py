"""Zero-dependency runtime telemetry: spans, metrics, profiling hooks.

When a 448-cell atlas sweep is slow, retries, or misses its artifact
store, the single ``fits:`` summary line cannot say *why*.  This module
is the observability layer the rest of :mod:`repro.runtime` reports
into:

* :class:`Tracer` — nested spans over the sweep's phases (``sweep``,
  ``block``, ``fit``, ``score``, ``cache``, ``store``, ``arena``,
  ``retry``, ``fitindex``, ``kernel``), each carrying wall-clock and
  per-thread CPU time plus free-form attributes;
* :class:`Metrics` — counters (cache/store hits, retries, timeouts)
  and histograms (kernel batch sizes, per-cell wall/CPU time);
* an opt-in :mod:`cProfile` hook — per worker thread in the parent and
  per worker process under the process backend, dumped as ``.pstats``
  files into a caller-chosen directory.

**Activation model.**  Instrumentation sites never hold a telemetry
reference; they call the module-level helpers (:func:`span`,
:func:`event`, :func:`count`, :func:`observe`), which consult one
module-global active :class:`Telemetry`.  With none active — the
default — every helper is a single global read plus a ``None`` check,
which is what keeps the disabled-path overhead inside the sweep
benchmark's 5% budget (``benchmarks/bench_sweep.py``).  The sweep
engine activates its telemetry for exactly the duration of a sweep via
:func:`activated`.

**Cross-process merge.**  A :class:`Telemetry` cannot cross a process
boundary (locks, profilers), but its :meth:`~Telemetry.spec` can: the
worker rebuilds a private instance, activates it for one task, and
ships :meth:`~Telemetry.snapshot` — plain dicts — back with the task's
results, exactly how :class:`~repro.runtime.cache.CacheStats` deltas
already travel.  The parent folds snapshots in with
:meth:`~Telemetry.merge_snapshot`; span ids are namespaced by pid so
merged traces never collide.

**Trace format.**  :meth:`Telemetry.write_trace` emits schema-versioned
JSONL: one ``trace`` header line, one line per span, one line per
counter/histogram.  :func:`validate_trace_line`,
:func:`check_trace_counters` and :func:`summarize_trace` are the
zero-dependency readers behind the ``repro trace`` subcommand and the
CI ``telemetry-smoke`` job.
"""

from __future__ import annotations

import atexit
import cProfile
import itertools
import json
import os
import threading
import time
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import TelemetryError

#: Bump when the trace line layout changes: readers reject newer (or
#: older) schemas instead of misinterpreting them.
TRACE_SCHEMA_VERSION = 1

#: The span phase vocabulary; the schema validator rejects others.
SPAN_PHASES: frozenset[str] = frozenset(
    {
        "sweep",
        "block",
        "fit",
        "score",
        "cache",
        "store",
        "arena",
        "retry",
        "fitindex",
        "kernel",
        "serve",
        "plan",
    }
)

#: Record types a trace file may contain.
_RECORD_TYPES: frozenset[str] = frozenset(
    {"trace", "span", "counter", "histogram"}
)


def _scalar(value: object) -> object:
    """A JSON-serializable view of one span attribute value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


class _SpanHandle:
    """One live span: a context manager that records itself on exit.

    After ``__exit__`` the handle exposes ``wall`` and ``cpu`` (seconds)
    so call sites can feed the same measurement into a histogram
    without timing twice.
    """

    __slots__ = (
        "_tracer",
        "span_id",
        "parent_id",
        "phase",
        "name",
        "attrs",
        "_start",
        "_wall0",
        "_cpu0",
        "wall",
        "cpu",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: str,
        parent_id: str | None,
        phase: str,
        name: str,
        attrs: dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.phase = phase
        self.name = name
        self.attrs = attrs
        self.wall = 0.0
        self.cpu = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._start = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.wall = time.perf_counter() - self._wall0
        self.cpu = time.thread_time() - self._cpu0
        self._tracer._finish(self)


class _NoopSpan:
    """The disabled path's span: enter/exit do nothing, times read 0."""

    __slots__ = ()
    wall = 0.0
    cpu = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects nested spans; thread-safe, per-thread nesting stacks.

    Span ids are ``"<pid hex>-<seq>"`` so spans merged from worker
    processes can never collide with the parent's; parenthood follows
    each thread's own enter/exit stack.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[dict[str, object]] = []
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._pid = os.getpid()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, phase: str, name: str = "", **attrs: object) -> _SpanHandle:
        """Open a span; use as a context manager.

        Args:
            phase: one of :data:`SPAN_PHASES`.
            name: free-form label (detector family, block key, ...).
            **attrs: JSON-scalar attributes recorded on the span.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        handle = _SpanHandle(
            tracer=self,
            span_id=f"{self._pid:x}-{next(self._ids)}",
            parent_id=parent,
            phase=phase,
            name=name,
            attrs={key: _scalar(value) for key, value in attrs.items()},
        )
        stack.append(handle.span_id)
        return handle

    def event(self, phase: str, name: str = "", **attrs: object) -> None:
        """Record an instantaneous (zero-duration) span."""
        with self.span(phase, name, **attrs):
            pass

    def _finish(self, handle: _SpanHandle) -> None:
        stack = self._stack()
        if stack and stack[-1] == handle.span_id:
            stack.pop()
        record: dict[str, object] = {
            "type": "span",
            "schema": TRACE_SCHEMA_VERSION,
            "pid": self._pid,
            "id": handle.span_id,
            "parent": handle.parent_id,
            "phase": handle.phase,
            "name": handle.name,
            "start": handle._start,
            "wall": handle.wall,
            "cpu": handle.cpu,
        }
        if handle.attrs:
            record["attrs"] = handle.attrs
        with self._lock:
            self._records.append(record)

    def records(self) -> list[dict[str, object]]:
        """A copy of every finished span record, completion order."""
        with self._lock:
            return list(self._records)

    def extend(self, records: Iterable[dict[str, object]]) -> None:
        """Adopt spans recorded elsewhere (a worker's snapshot)."""
        with self._lock:
            self._records.extend(records)


class Metrics:
    """Thread-safe counters and histograms.

    Histograms are four-number summaries ``(count, total, min, max)``
    — enough for rates and means without per-observation storage, and
    trivially mergeable across processes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}
        self._updates = 0

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._updates += 1
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Fold one observation into histogram ``name``."""
        value = float(value)
        with self._lock:
            self._updates += 1
            entry = self._histograms.get(name)
            if entry is None:
                self._histograms[name] = [1, value, value, value]
            else:
                entry[0] += 1
                entry[1] += value
                entry[2] = min(entry[2], value)
                entry[3] = max(entry[3], value)

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never counted)."""
        with self._lock:
            return self._counters.get(name, 0)

    @property
    def updates(self) -> int:
        """In-process ``count()``/``observe()`` calls folded so far.

        One hook invocation is one update regardless of the value it
        credits, so this is the exact number of disabled-path calls an
        identical uninstrumented run would make.  :meth:`merge` does
        not contribute — merged snapshots arrive from other processes
        whose hook calls never ran here.
        """
        with self._lock:
            return self._updates

    def snapshot(self) -> dict[str, dict[str, object]]:
        """A picklable copy: ``{"counters": ..., "histograms": ...}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    name: list(entry)
                    for name, entry in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict[str, dict[str, object]]) -> None:
        """Fold another :meth:`snapshot` into this instance."""
        counters = snapshot.get("counters", {})
        histograms = snapshot.get("histograms", {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, other in histograms.items():
                entry = self._histograms.get(name)
                if entry is None:
                    self._histograms[name] = list(other)
                else:
                    entry[0] += other[0]
                    entry[1] += other[1]
                    entry[2] = min(entry[2], other[2])
                    entry[3] = max(entry[3], other[3])


@dataclass(frozen=True)
class TelemetryConfig:
    """The picklable description a worker process rebuilds from.

    Args:
        profile_dir: directory ``.pstats`` profiles are dumped into;
            ``None`` disables profiling (spans/metrics still collect).
    """

    profile_dir: str | None = None


class Telemetry:
    """One run's tracer + metrics + optional profiler registry.

    Args:
        profile_dir: enable the :mod:`cProfile` hook, dumping
            ``.pstats`` files into this directory (created on demand).
    """

    def __init__(self, profile_dir: str | Path | None = None) -> None:
        self.tracer = Tracer()
        self.metrics = Metrics()
        self.profile_dir = (
            str(profile_dir) if profile_dir is not None else None
        )
        self._profilers: list[cProfile.Profile] = []
        self._profiler_lock = threading.Lock()
        self._tlocal = threading.local()

    # -- cross-process transport ------------------------------------------------

    def spec(self) -> TelemetryConfig:
        """The picklable config shipped inside process-worker payloads."""
        return TelemetryConfig(profile_dir=self.profile_dir)

    @classmethod
    def from_spec(
        cls, spec: TelemetryConfig | None
    ) -> "Telemetry | None":
        """Rebuild a worker-side instance (identity on ``None``)."""
        if spec is None:
            return None
        return cls(profile_dir=spec.profile_dir)

    def snapshot(self) -> dict[str, object]:
        """Everything collected so far, as plain picklable data."""
        return {
            "spans": self.tracer.records(),
            "metrics": self.metrics.snapshot(),
        }

    def merge_snapshot(self, snapshot: dict[str, object] | None) -> None:
        """Fold a worker's :meth:`snapshot` into this instance."""
        if snapshot is None:
            return
        self.tracer.extend(snapshot.get("spans", ()))
        self.metrics.merge(snapshot.get("metrics", {}))

    # -- profiling --------------------------------------------------------------

    @contextmanager
    def profiled(self) -> Iterator[None]:
        """Profile the calling thread for the duration of the block.

        Each thread accumulates into its own :class:`cProfile.Profile`
        across every block it runs (profilers are per-thread because
        Python's profile hook is); re-entrant calls nest without
        re-enabling.  No-op unless ``profile_dir`` is configured.
        """
        if self.profile_dir is None:
            yield
            return
        profiler = getattr(self._tlocal, "profiler", None)
        if profiler is None:
            profiler = cProfile.Profile()
            self._tlocal.profiler = profiler
            self._tlocal.depth = 0
            with self._profiler_lock:
                self._profilers.append(profiler)
        self._tlocal.depth += 1
        if self._tlocal.depth == 1:
            profiler.enable()
        try:
            yield
        finally:
            self._tlocal.depth -= 1
            if self._tlocal.depth == 0:
                profiler.disable()

    def dump_profiles(self) -> list[Path]:
        """Write each thread's accumulated profile as a ``.pstats`` file.

        Files are ``profile-<pid>-t<n>.pstats`` under ``profile_dir``;
        repeated calls overwrite with the cumulative statistics.
        Failures are swallowed — profiling must never fail a sweep.
        """
        if self.profile_dir is None:
            return []
        directory = Path(self.profile_dir)
        written = []
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            return []
        with self._profiler_lock:
            profilers = list(self._profilers)
        for index, profiler in enumerate(profilers):
            path = directory / f"profile-{os.getpid()}-t{index}.pstats"
            try:
                profiler.dump_stats(str(path))
            except (OSError, TypeError, ValueError):
                continue
            written.append(path)
        return written

    # -- trace output -----------------------------------------------------------

    def trace_records(self) -> list[dict[str, object]]:
        """Header + spans + metric lines, ready for JSONL emission."""
        spans = self.tracer.records()
        metrics = self.metrics.snapshot()
        counters = metrics["counters"]
        histograms = metrics["histograms"]
        records: list[dict[str, object]] = [
            {
                "type": "trace",
                "schema": TRACE_SCHEMA_VERSION,
                "created": time.time(),
                "pid": os.getpid(),
                "spans": len(spans),
                "counters": len(counters),
                "histograms": len(histograms),
            }
        ]
        records.extend(spans)
        records.extend(
            {
                "type": "counter",
                "schema": TRACE_SCHEMA_VERSION,
                "name": name,
                "value": counters[name],
            }
            for name in sorted(counters)
        )
        for name in sorted(histograms):
            count, total, low, high = histograms[name]
            records.append(
                {
                    "type": "histogram",
                    "schema": TRACE_SCHEMA_VERSION,
                    "name": name,
                    "count": count,
                    "total": total,
                    "min": low,
                    "max": high,
                }
            )
        return records

    def write_trace(self, path: str | Path) -> Path:
        """Emit the schema-versioned JSONL trace file."""
        destination = Path(path)
        if destination.parent != Path(""):
            destination.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(record, sort_keys=True)
            for record in self.trace_records()
        ]
        destination.write_text("\n".join(lines) + "\n")
        return destination


# -- activation ------------------------------------------------------------------

#: The telemetry instance instrumentation sites report into, if any.
_ACTIVE: Telemetry | None = None


def active() -> Telemetry | None:
    """The currently active :class:`Telemetry` (``None`` = disabled)."""
    return _ACTIVE


@contextmanager
def activated(telemetry: Telemetry | None) -> Iterator[Telemetry | None]:
    """Make ``telemetry`` the active instance for the ``with`` block.

    ``None`` leaves whatever is active untouched, so nested sweeps and
    engines without telemetry compose without special cases.
    """
    global _ACTIVE
    if telemetry is None:
        yield _ACTIVE
        return
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous


def span(phase: str, name: str = "", **attrs: object):
    """A span on the active tracer, or the shared no-op handle."""
    telemetry = _ACTIVE
    if telemetry is None:
        return _NOOP_SPAN
    return telemetry.tracer.span(phase, name, **attrs)


def event(phase: str, name: str = "", **attrs: object) -> None:
    """An instantaneous span on the active tracer, if any."""
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.tracer.event(phase, name, **attrs)


def count(name: str, value: float = 1) -> None:
    """Increment a counter on the active metrics, if any."""
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.metrics.count(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active metrics, if any."""
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.metrics.observe(name, value)


def profiled():
    """The active telemetry's per-thread profiler context (or no-op)."""
    telemetry = _ACTIVE
    if telemetry is None or telemetry.profile_dir is None:
        return _NOOP_SPAN
    return telemetry.profiled()


# -- per-process worker profiler --------------------------------------------------

_WORKER_PROFILER: cProfile.Profile | None = None


def _dump_worker_profile(directory: str) -> None:
    profiler = _WORKER_PROFILER
    if profiler is None:
        return
    try:
        profiler.disable()
        path = Path(directory) / f"profile-worker-{os.getpid()}.pstats"
        path.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(path))
    except (OSError, TypeError, ValueError):
        pass


def ensure_worker_profiler(directory: str) -> None:
    """Arm the per-process profiler inside a pool worker (idempotent).

    The profiler stays enabled for the worker's lifetime and its
    statistics are dumped at interpreter exit — workers terminated
    mid-task (a timeout kill) lose their profile, which is the honest
    outcome for a task that never finished.
    """
    global _WORKER_PROFILER
    if _WORKER_PROFILER is not None:
        return
    _WORKER_PROFILER = cProfile.Profile()
    atexit.register(_dump_worker_profile, directory)
    _WORKER_PROFILER.enable()


# -- trace reading & validation ---------------------------------------------------


def _require(condition: bool, line_number: int, message: str) -> None:
    if not condition:
        raise TelemetryError(f"trace line {line_number}: {message}")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_trace_line(
    record: object, line_number: int = 0
) -> dict[str, object]:
    """Validate one parsed trace record against the JSONL schema.

    Hand-rolled (the telemetry layer is dependency-free by design);
    checks types, the schema version, the span phase vocabulary and
    numeric sanity.  Returns the record on success.

    Raises:
        TelemetryError: describing the first violation found.
    """
    _require(isinstance(record, dict), line_number, "record is not an object")
    kind = record.get("type")
    _require(
        kind in _RECORD_TYPES,
        line_number,
        f"unknown record type {kind!r}",
    )
    _require(
        record.get("schema") == TRACE_SCHEMA_VERSION,
        line_number,
        f"schema {record.get('schema')!r} != {TRACE_SCHEMA_VERSION}",
    )
    if kind == "trace":
        for key in ("created", "pid", "spans", "counters", "histograms"):
            _require(
                _is_number(record.get(key)), line_number, f"bad header {key!r}"
            )
    elif kind == "span":
        _require(
            record.get("phase") in SPAN_PHASES,
            line_number,
            f"unknown span phase {record.get('phase')!r}",
        )
        _require(
            isinstance(record.get("name"), str), line_number, "bad span name"
        )
        _require(
            isinstance(record.get("id"), str) and record["id"] != "",
            line_number,
            "bad span id",
        )
        parent = record.get("parent")
        _require(
            parent is None or isinstance(parent, str),
            line_number,
            "bad span parent",
        )
        _require(
            isinstance(record.get("pid"), int), line_number, "bad span pid"
        )
        for key in ("start", "wall", "cpu"):
            _require(
                _is_number(record.get(key)) and record[key] >= 0,
                line_number,
                f"bad span {key!r}",
            )
        attrs = record.get("attrs", {})
        _require(isinstance(attrs, dict), line_number, "bad span attrs")
        for key, value in attrs.items():
            _require(
                isinstance(key, str)
                and (
                    value is None
                    or isinstance(value, (bool, int, float, str))
                ),
                line_number,
                f"non-scalar span attribute {key!r}",
            )
    else:  # counter | histogram
        _require(
            isinstance(record.get("name"), str) and record["name"] != "",
            line_number,
            "bad metric name",
        )
        if kind == "counter":
            _require(
                _is_number(record.get("value")), line_number, "bad counter value"
            )
        else:
            for key in ("count", "total", "min", "max"):
                _require(
                    _is_number(record.get(key)),
                    line_number,
                    f"bad histogram {key!r}",
                )
            _require(
                record["count"] >= 0 and record["min"] <= record["max"],
                line_number,
                "inconsistent histogram bounds",
            )
    return record


def iter_trace(path: str | Path) -> Iterator[dict[str, object]]:
    """Yield validated records from a JSONL trace file.

    Raises:
        TelemetryError: on unparsable lines or schema violations.
    """
    trace_path = Path(path)
    try:
        text = trace_path.read_text()
    except OSError as error:
        raise TelemetryError(f"cannot read trace {trace_path}: {error}") from error
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            raise TelemetryError(
                f"trace line {line_number}: not valid JSON ({error})"
            ) from error
        yield validate_trace_line(record, line_number)


def read_trace(
    path: str | Path,
) -> tuple[list[dict], list[dict], dict[str, float], dict[str, dict]]:
    """Load a trace file into ``(headers, spans, counters, histograms)``.

    Counter records collapse to a name -> value mapping and histogram
    records to name -> ``{count, total, min, max}``; every line is
    schema-validated on the way in.
    """
    headers: list[dict] = []
    spans: list[dict] = []
    counters: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for record in iter_trace(path):
        kind = record["type"]
        if kind == "trace":
            headers.append(record)
        elif kind == "span":
            spans.append(record)
        elif kind == "counter":
            counters[record["name"]] = (
                counters.get(record["name"], 0) + record["value"]
            )
        else:
            histograms[record["name"]] = {
                "count": record["count"],
                "total": record["total"],
                "min": record["min"],
                "max": record["max"],
            }
    return headers, spans, counters, histograms


def check_trace_counters(
    counters: dict[str, float], spans: list[dict] | None = None
) -> list[str]:
    """Cross-check a trace's event counters against the sweep summaries.

    The sweep engine emits, per sweep, summary counters derived from
    its authoritative sources — the :class:`~repro.runtime.fitindex.FitLedger`
    (``fits.*``) and the engine cache's stats delta (``cache.hits``/
    ``cache.misses``).  Those must agree exactly with the event
    counters the instrumented components emitted along the way:

    * ``cache.hit``/``cache.miss`` events == the cache stats delta;
    * ``store.hit`` events == ``fits.from_store`` (every store-served
      fit is exactly one store hit);
    * when every sweep ran with a store, ``store.miss`` events ==
      ``fits.computed + fits.warm`` (every non-store fit paid exactly
      one store miss first);
    * the kernel-tier split is lossless: every membership window (and
      cell) a sequence detector scored was dispatched to exactly one
      of the automaton or bisect tiers, so ``kernel.automaton.* +
      kernel.bisect.* == kernel.membership.*`` — the audit that both
      tiers saw identical traffic;
    * the serving fleet store's accounting balances: hot-tier inserts
      minus evictions minus removals equals the resident-entry
      counter, the resident byte gauges never go negative, and
      ``serve.delta.diverged`` is zero (a delta-fit that diverged from
      its cold refit is a correctness bug, not an operational event);
    * the micro-batch scheduler's ledger balances: every job admitted
      (``serve.batch.jobs_in``) settled as exactly one of
      ``serve.batch.jobs_out`` or ``serve.batch.refused``, and the
      per-reason flush counters (``serve.batch.flush.solo`` /
      ``.full`` / ``.timeout`` / ``.drain``) sum to
      ``serve.batch.flush``;
    * the plan runner's stage ledger balances: every stage visited
      (``plan.stage.visited``) settled as exactly one of
      ``plan.stage.run``, ``plan.stage.cached`` or
      ``plan.stage.failed``;
    * the dispatcher's lease protocol holds: releases never exceed
      claims (a crashed worker may die holding a lease, never the
      reverse), and takeovers never exceed claims (every takeover is
      followed by a fresh claim in the same worker).

    Returns a list of human-readable problems (empty = consistent).
    When ``spans`` is given, parent references are checked to resolve.
    """
    problems = []

    def counter(name: str) -> float:
        return counters.get(name, 0)

    if counter("sweep.count"):
        problems.extend(
            f"{event_name} events ({counter(event_name):g}) != "
            f"engine {summary_name} ({counter(summary_name):g})"
            for event_name, summary_name in (
                ("cache.hit", "cache.hits"),
                ("cache.miss", "cache.misses"),
            )
            if counter(event_name) != counter(summary_name)
        )
        if counter("store.hit") != counter("fits.from_store"):
            problems.append(
                f"store.hit events ({counter('store.hit'):g}) != "
                f"fits.from_store ({counter('fits.from_store'):g})"
            )
        if counter("sweep.with_store") == counter("sweep.count"):
            fitted = counter("fits.computed") + counter("fits.warm")
            if counter("store.miss") != fitted:
                problems.append(
                    f"store.miss events ({counter('store.miss'):g}) != "
                    f"fits.computed + fits.warm ({fitted:g})"
                )
    for unit in ("windows", "cells"):
        total = counter(f"kernel.membership.{unit}")
        if total:
            split = counter(f"kernel.automaton.{unit}") + counter(
                f"kernel.bisect.{unit}"
            )
            if split != total:
                problems.append(
                    f"kernel tier split ({split:g} {unit}) != "
                    f"membership traffic ({total:g} {unit})"
                )
    if "serve.hot.insert" in counters or "serve.hot.resident_entries" in counters:
        flow = (
            counter("serve.hot.insert")
            - counter("serve.hot.evict")
            - counter("serve.hot.remove")
        )
        if flow != counter("serve.hot.resident_entries"):
            problems.append(
                f"hot-tier flow (inserts - evictions - removals = {flow:g}) "
                f"!= serve.hot.resident_entries "
                f"({counter('serve.hot.resident_entries'):g})"
            )
    for gauge in ("serve.hot.resident_bytes", "serve.tenants.resident_bytes"):
        if counter(gauge) < 0:
            problems.append(f"{gauge} is negative ({counter(gauge):g})")
    if counter("serve.delta.diverged"):
        problems.append(
            f"serve.delta.diverged is {counter('serve.delta.diverged'):g} "
            "(delta-fits must be bit-identical to cold refits)"
        )
    if counter("serve.batch.jobs_in"):
        settled = counter("serve.batch.jobs_out") + counter(
            "serve.batch.refused"
        )
        if settled != counter("serve.batch.jobs_in"):
            problems.append(
                f"micro-batch jobs settled (out + refused = {settled:g}) "
                f"!= jobs admitted ({counter('serve.batch.jobs_in'):g}) — "
                "a job entered the scheduler and never resolved"
            )
        reasons = sum(
            counter(f"serve.batch.flush.{reason}")
            for reason in ("solo", "full", "timeout", "drain")
        )
        if reasons != counter("serve.batch.flush"):
            problems.append(
                f"micro-batch flush reasons sum to {reasons:g} "
                f"!= serve.batch.flush ({counter('serve.batch.flush'):g}) — "
                "every flush must record exactly one reason"
            )
    if counter("plan.stage.visited"):
        settled = (
            counter("plan.stage.run")
            + counter("plan.stage.cached")
            + counter("plan.stage.failed")
        )
        if settled != counter("plan.stage.visited"):
            problems.append(
                f"plan stages settled (run + cached + failed = {settled:g}) "
                f"!= stages visited ({counter('plan.stage.visited'):g}) — "
                "a stage was visited and never resolved"
            )
    if counter("plan.lease.released") > counter("plan.lease.claim"):
        problems.append(
            f"plan.lease.released ({counter('plan.lease.released'):g}) > "
            f"plan.lease.claim ({counter('plan.lease.claim'):g}) — "
            "a worker released a lease it never claimed"
        )
    if counter("plan.lease.takeover") > counter("plan.lease.claim"):
        problems.append(
            f"plan.lease.takeover ({counter('plan.lease.takeover'):g}) > "
            f"plan.lease.claim ({counter('plan.lease.claim'):g}) — "
            "every takeover must be followed by a fresh claim"
        )
    if spans:
        known = {record["id"] for record in spans}
        for record in spans:
            parent = record.get("parent")
            if parent is not None and parent not in known:
                problems.append(
                    f"span {record['id']} references unknown parent {parent}"
                )
                break  # one dangling parent is enough to report
    return problems


def summarize_trace(path: str | Path) -> str:
    """Render a per-phase time table plus the headline rates.

    The human entry point behind ``repro trace summarize``: total wall
    and CPU seconds per span phase, then cache/store hit rates, fit
    provenance and retry counts from the metric lines.
    """
    from repro.analysis.report import format_table

    _headers, spans, counters, histograms = read_trace(path)
    by_phase: dict[str, list[float]] = {}
    for record in spans:
        entry = by_phase.setdefault(record["phase"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record["wall"]
        entry[2] += record["cpu"]
    rows = [
        (
            phase,
            by_phase[phase][0],
            f"{by_phase[phase][1]:.3f}",
            f"{by_phase[phase][2]:.3f}",
        )
        for phase in sorted(
            by_phase, key=lambda name: by_phase[name][1], reverse=True
        )
    ]
    blocks = [
        format_table(
            ("phase", "spans", "wall s", "cpu s"),
            rows or [("(none)", 0, "-", "-")],
            title=f"Trace summary — {Path(path).name}",
        )
    ]

    def rate(hit: str, miss: str) -> str:
        total = counters.get(hit, 0) + counters.get(miss, 0)
        if not total:
            return "n/a"
        return f"{counters.get(hit, 0) / total:.1%} of {total:g}"

    lines = [
        f"cache hit rate: {rate('cache.hit', 'cache.miss')}",
        f"store hit rate: {rate('store.hit', 'store.miss')}",
        f"fits: {counters.get('fits.computed', 0):g} computed / "
        f"{counters.get('fits.from_store', 0):g} from store / "
        f"{counters.get('fits.warm', 0):g} warm",
        f"retries: {counters.get('task.retries', 0):g} "
        f"({counters.get('task.timeouts', 0):g} timeouts)",
    ]
    membership = counters.get("kernel.membership.cells", 0)
    if membership:
        lines.append(
            f"membership cells: {membership:g} "
            f"({counters.get('kernel.automaton.cells', 0):g} automaton / "
            f"{counters.get('kernel.bisect.cells', 0):g} bisect)"
        )
    batch = histograms.get("kernel.batch_size")
    if batch and batch["count"]:
        lines.append(
            f"kernel batches: {batch['count']:g} "
            f"(mean size {batch['total'] / batch['count']:.0f}, "
            f"max {batch['max']:g})"
        )
    cell = histograms.get("cell.wall")
    if cell and cell["count"]:
        lines.append(
            f"cells scored: {cell['count']:g} "
            f"(mean {cell['total'] / cell['count'] * 1e3:.2f} ms, "
            f"max {cell['max'] * 1e3:.2f} ms)"
        )
    blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
