"""Delta-fit verification: streaming updates audited against cold refits.

The count-based families (Stide, t-Stide, Markov) support
:meth:`~repro.detectors.base.AnomalyDetector.update_batch`: appended
training events are folded into the packed tables through the
:class:`~repro.runtime.fitindex.TrainingIndex` DW-1→DW refinement at a
cost proportional to the batch.  The whole design rests on one claim —
the merged state is *bit-identical* to refitting cold on the full
stream — and this module is the audit for that claim.

:func:`verify_delta` fits a fresh clone of the detector on the full
accumulated stream and compares serialized states array for array.
The serving layer calls it periodically (``delta_verify_every``) and
the fleet benchmark samples it across the run; any divergence is
charged to the ``serve.delta.diverged`` counter, which both
``repro trace validate`` and the benchmark regression gate hold to
zero.  Verification costs one cold refit, which is exactly why it is a
sampled hook rather than a per-batch check.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import AnomalyDetector

__all__ = ["fit_states_equal", "verify_delta"]


def fit_states_equal(
    left: dict[str, np.ndarray] | None,
    right: dict[str, np.ndarray] | None,
) -> bool:
    """Whether two serialized fit states are bit-identical.

    Equality is strict: same keys, and per array same dtype, shape and
    values.  ``None`` states (families without a serializable state)
    only equal ``None``.
    """
    if left is None or right is None:
        return left is None and right is None
    if set(left) != set(right):
        return False
    for name, array in left.items():
        a = np.asarray(array)
        b = np.asarray(right[name])
        if a.dtype != b.dtype or a.shape != b.shape:
            return False
        if not np.array_equal(a, b):
            return False
    return True


def verify_delta(
    detector: AnomalyDetector,
    full_stream: np.ndarray,
) -> bool:
    """Audit a delta-updated detector against a cold refit.

    Args:
        detector: a fitted detector whose state accumulated through
            :meth:`~repro.detectors.base.AnomalyDetector.update_batch`.
        full_stream: the complete training stream those updates
            reconstruct — the original fit stream plus every appended
            batch, in order.

    Returns:
        ``True`` when the detector's serialized state is bit-identical
        to fitting an unfitted clone on ``full_stream``.
    """
    twin = detector.clone_unfitted()
    twin.fit(np.asarray(full_stream))
    return fit_states_equal(detector.export_fit_state(), twin.export_fit_state())
