"""Persistent content-addressed store for fitted detector state.

The sweep engine's :class:`~repro.runtime.cache.WindowCache` removes
redundant work *within* one run; atlas builds, shape-replication seeds
and checkpoint-resumed sweeps repeat the identical fits *across* runs.
:class:`ArtifactStore` closes that gap: a fitted detector's state is
written once under a content-addressed key and every later run — any
process, any machine sharing the directory — loads it instead of
fitting.

**Key schema.**  A key is the SHA-256 hex digest of a canonical
recipe string::

    repro-fit/<schema version>
    stream=<sha256 of each training stream's bytes + shape + dtype>
    config=<detector fingerprint: family, DW, AS, family hyperparams>

Anything that could change the fitted state is in the recipe: the
exact training bytes, the full detector configuration, and
:data:`STORE_SCHEMA_VERSION`, which is bumped whenever the serialized
state layout (or fitting semantics) changes so stale entries from
older code are unreachable rather than wrongly loaded.

**Value format.**  Each entry is a single uncompressed ``.npz`` file
(``root/<key[:2]>/<key>.npz``) holding the detector's
``_fit_state()`` arrays.  Uncompressed npz keeps values
``np.load``-cheap — the zip member is a plain ``.npy`` image read
lazily per array — at a small disk-size cost.  Loads use
``allow_pickle=False``: values are arrays only, so a store directory
is data, never code.

**Failure containment.**  The store is an optimization layer and must
never turn a cache problem into a run failure: a torn write, truncated
file, zip corruption or permission error on read is treated as a miss
(the bad entry is unlinked best-effort) and the caller simply fits.
Writes are atomic (temp file + ``os.replace``) so concurrent writers
of the same key are idempotent and readers never observe a partial
entry.

**Eviction.**  With a byte cap configured, least-recently-used entries
(mtime order; hits refresh mtime) are unlinked after each put until
the store fits the cap.  The entry just written is always protected so
a put can never evict itself.
"""

from __future__ import annotations

import hashlib
import io
import os
import threading
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.runtime import telemetry

#: Bump when the serialized fit-state layout or fitting semantics
#: change: old entries become unreachable (a miss), never misread.
#: v2: packed databases switched from base-AS to bit-width packing,
#: which changes the stored key values for non-power-of-two alphabets.
#: v3: t-stide states gained the full (value, count) table behind the
#: common filter so reloaded fits keep their delta-fit capability.
STORE_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class StoreStats:
    """Store traffic counters for observability and benchmarks."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0


def stream_digest(stream: np.ndarray) -> str:
    """Content digest of one training stream.

    Hashes the canonical int64 little-endian bytes plus the shape, so
    equal-content streams digest identically regardless of the layout
    or byte order they happen to arrive in.
    """
    data = np.ascontiguousarray(np.asarray(stream, dtype="<i8"))
    hasher = hashlib.sha256()
    hasher.update(str(data.shape).encode("ascii"))
    hasher.update(data.tobytes())
    return hasher.hexdigest()


def streams_digest(streams: tuple[np.ndarray, ...] | list[np.ndarray]) -> str:
    """Combined digest of an ordered collection of training streams."""
    hasher = hashlib.sha256()
    hasher.update(f"streams/{len(streams)}".encode("ascii"))
    for stream in streams:
        hasher.update(stream_digest(stream).encode("ascii"))
    return hasher.hexdigest()


def fit_key(digest: str, fingerprint: str) -> str:
    """The content-addressed key for (training content, detector config).

    Args:
        digest: :func:`streams_digest` of the training streams.
        fingerprint: the detector's configuration fingerprint (see
            :meth:`repro.detectors.base.AnomalyDetector.config_fingerprint`).
    """
    recipe = (
        f"repro-fit/{STORE_SCHEMA_VERSION}\n"
        f"stream={digest}\n"
        f"config={fingerprint}\n"
    )
    return hashlib.sha256(recipe.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Content-addressed, corruption-tolerant on-disk artifact store.

    Thread-safe within a process; safe across processes by atomicity
    of ``os.replace`` (the worst cross-process race is two writers
    producing the same bytes for the same key).

    Args:
        root: store directory; created on first use.
        cap_bytes: optional LRU size cap.  ``None`` disables eviction.
    """

    def __init__(self, root: str | Path, cap_bytes: int | None = None) -> None:
        if cap_bytes is not None and cap_bytes <= 0:
            raise ValueError(f"cap_bytes must be positive, got {cap_bytes}")
        self._root = Path(root)
        self._cap = cap_bytes
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    @property
    def cap_bytes(self) -> int | None:
        """The LRU size cap (``None`` when uncapped)."""
        return self._cap

    @property
    def stats(self) -> StoreStats:
        """A snapshot of the traffic counters."""
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                evictions=self._evictions,
            )

    def spec(self) -> tuple[str, int | None]:
        """A picklable ``(root, cap)`` description for process workers.

        Workers reconstruct an equivalent store from the spec; the
        directory is the shared state, so separate instances in
        separate processes see each other's entries.
        """
        return str(self._root), self._cap

    @classmethod
    def from_spec(cls, spec: "tuple[str, int | None] | None") -> "ArtifactStore | None":
        """Inverse of :meth:`spec` (identity on ``None``)."""
        if spec is None:
            return None
        root, cap = spec
        return cls(root, cap_bytes=cap)

    def _path(self, key: str) -> Path:
        return self._root / key[:2] / f"{key}.npz"

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1

    def get(self, key: str, kind: str = "fit") -> dict[str, np.ndarray] | None:
        """Load the arrays stored under ``key``, or ``None`` on a miss.

        Any read failure — missing file, torn write, zip or npy
        corruption — is a miss; a corrupt entry is unlinked so it
        cannot poison later lookups.  Never raises.

        Args:
            key: the content address (see :func:`fit_key`).
            kind: telemetry tag — ``"fit"`` for the per-block fit
                lookup (the traffic the ``fits:`` provenance counters
                mirror), ``"donor"`` for warm-start donor hunting.
                Kinds count under separate telemetry names so the
                ``store.hit == fits.from_store`` trace invariant holds
                exactly even when donor probing adds lookups.
        """
        prefix = "store" if kind == "fit" else f"store.{kind}"
        path = self._path(key)
        with telemetry.span("store", "get", kind=kind):
            try:
                with np.load(path, allow_pickle=False) as archive:
                    arrays = {name: archive[name] for name in archive.files}
            except FileNotFoundError:
                self._count(hit=False)
                telemetry.count(f"{prefix}.miss")
                return None
            except Exception:
                # Corrupt or unreadable: demote to a miss and clear the slot.
                try:
                    path.unlink()
                except OSError:
                    pass
                self._count(hit=False)
                telemetry.count(f"{prefix}.corrupt")
                telemetry.count(f"{prefix}.miss")
                return None
            try:
                now = None  # current time
                os.utime(path, times=now)
            except OSError:
                pass  # LRU freshness is best-effort
            self._count(hit=True)
            telemetry.count(f"{prefix}.hit")
        return arrays

    def put(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        """Store ``arrays`` under ``key`` atomically.

        Failures (disk full, permissions) are swallowed: the store is
        an optimization, and a failed put only means a future miss.
        """
        path = self._path(key)
        with telemetry.span("store", "put"):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                buffer = io.BytesIO()
                # Uncompressed: members are raw .npy images, cheap to load.
                np.savez(buffer, **arrays)
                tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
                with open(tmp, "wb") as handle:
                    handle.write(buffer.getbuffer())
                os.replace(tmp, path)
            except Exception:
                try:
                    tmp.unlink()
                except (OSError, UnboundLocalError):
                    pass
                return
            with self._lock:
                self._puts += 1
            telemetry.count("store.put")
            if self._cap is not None:
                self._evict_over_cap(protect=path)

    def entries(self) -> list[Path]:
        """Every entry file currently in the store (unordered)."""
        if not self._root.is_dir():
            return []
        return [
            path
            for path in self._root.glob("??/*.npz")
            if path.is_file()
        ]

    def size_bytes(self) -> int:
        """Total bytes of all entries currently on disk."""
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def _evict_over_cap(self, protect: Path) -> None:
        """Unlink LRU entries until the store fits the cap.

        ``protect`` (the entry just written) is never evicted, so a
        put always leaves its own value readable even when the single
        entry exceeds the cap.
        """
        survey = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            survey.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in survey)
        if total <= self._cap:
            return
        survey.sort(key=lambda item: item[0])  # oldest first
        evicted = 0
        for _mtime, size, path in survey:
            if total <= self._cap:
                break
            if path == protect:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            with self._lock:
                self._evictions += evicted
            telemetry.count("store.eviction", evicted)

    def verify(self) -> tuple[int, int]:
        """Scrub the store: ``(readable entries, purged corrupt entries)``.

        Opens every entry; unreadable ones are unlinked.  Useful for
        tests and operational checks, not required for correctness
        (reads already demote corruption to misses).
        """
        good = 0
        purged = 0
        for path in self.entries():
            try:
                with zipfile.ZipFile(path) as archive:
                    bad = archive.testzip()
                if bad is not None:
                    raise OSError(f"corrupt member {bad}")
                good += 1
            except Exception:
                try:
                    path.unlink()
                    purged += 1
                except OSError:
                    pass
        return good, purged
