"""Tenant-sharded tiered model storage: hot LRU → mmap shards → cold store.

The content-addressed :class:`~repro.runtime.store.ArtifactStore` is
the right durability layer but the wrong serving layer at fleet scale:
one ``.npz`` per model means a directory entry, an open, and a zip
parse per cold tenant touch.  :class:`ShardedStore` puts three tiers
in front of it:

* **hot** — an in-process, byte-accounted LRU of *live objects*
  (fitted detectors).  Pure cache: eviction is a drop, because every
  mutation also lands in the warm tier first.
* **warm** — one read-only shard file per tenant-hash bucket, packing
  many tenants' bit-packed databases with a JSON offset index at the
  head.  A cold tenant score is one mmap page-in plus a ``frombuffer``
  view — no parse, no copy.  Freshly put entries sit in a per-shard
  pending overlay until :meth:`ShardedStore.compact` folds them into a
  rewritten shard file (temp + ``os.replace``, so readers of the old
  file keep a consistent mapping and a crash leaves one of the two
  complete files).
* **cold** — the existing :class:`ArtifactStore`, written on demand
  (``cold=True`` puts, e.g. at snapshot cadence) and consulted on a
  warm miss; a cold hit is promoted back into the pending overlay.

**Corruption containment.**  Every array in a shard carries a CRC-32,
verified on the entry's first access; a mismatch (or any short/garbled
slice) demotes that entry — and only that entry — to a miss, exactly
the ArtifactStore containment rule.  An unreadable shard *file* makes
every entry in it a miss; the next compaction rewrites it from the
pending overlay and whatever the cold tier still holds.

**Sharding.**  ``shard_of`` hashes the entry key (BLAKE2b) modulo the
shard count, so tenants spread uniformly and one tenant's churn only
ever rewrites one shard.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.runtime import telemetry
from repro.runtime.store import ArtifactStore

__all__ = [
    "SHARD_SCHEMA_VERSION",
    "HotTier",
    "HotTierStats",
    "ShardFile",
    "ShardStoreStats",
    "ShardedStore",
    "write_shard",
]

#: Bump when the shard file layout changes; old shards read as empty
#: (every entry a miss) rather than misread.
SHARD_SCHEMA_VERSION = 1

_MAGIC = b"RSHD"
_HEADER = struct.Struct("<4sBxxxQ")  # magic, version, pad, index length


# -- hot tier -----------------------------------------------------------------


@dataclass(frozen=True)
class HotTierStats:
    """Hot-tier traffic and occupancy snapshot."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    removals: int = 0
    resident_entries: int = 0
    resident_bytes: int = 0
    cap_bytes: int = 0


class HotTier:
    """Byte-accounted LRU of live objects (fitted detectors).

    Thread-safe.  Eviction is silent object drop — correct only
    because callers persist every mutation to the warm tier before
    (or at) the hot put, which :class:`ShardedStore` arranges.

    Args:
        cap_bytes: eviction threshold over the caller-declared sizes.
    """

    def __init__(self, cap_bytes: int) -> None:
        if cap_bytes <= 0:
            raise ValueError(f"cap_bytes must be positive, got {cap_bytes}")
        self._cap = int(cap_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[object, int]] = OrderedDict()
        # Secondary index: key prefix up to the first "|" (the tenant
        # id under the serving key scheme) -> resident keys.  Keeps
        # per-tenant key listing O(tenant's keys) instead of a scan of
        # the whole tier — the difference between O(n) and O(n^2)
        # total when provisioning a 100k-tenant fleet.
        self._groups: dict[str, set[str]] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._inserts = 0
        self._evictions = 0
        self._removals = 0

    @property
    def cap_bytes(self) -> int:
        """The eviction threshold."""
        return self._cap

    @property
    def resident_bytes(self) -> int:
        """Declared bytes currently resident."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> object | None:
        """The cached object, freshened to most-recently-used."""
        with self._lock:
            held = self._entries.get(key)
            if held is None:
                self._misses += 1
                telemetry.count("serve.hot.miss")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        telemetry.count("serve.hot.hit")
        return held[0]

    def put(self, key: str, value: object, nbytes: int) -> int:
        """Insert (or refresh) ``key``; returns entries evicted.

        Replacing an existing key re-accounts its bytes without
        charging an eviction.
        """
        size = max(0, int(nbytes))
        evicted = 0
        with self._lock:
            held = self._entries.pop(key, None)
            if held is not None:
                self._bytes -= held[1]
            self._entries[key] = (value, size)
            if held is None:
                self._groups.setdefault(self._group_of(key), set()).add(key)
            self._bytes += size
            self._inserts += held is None
            if held is None:
                telemetry.count("serve.hot.insert")
                telemetry.count("serve.hot.resident_entries")
            telemetry.count("serve.hot.resident_bytes", size - (held[1] if held else 0))
            while self._bytes > self._cap and len(self._entries) > 1:
                victim, (_, victim_size) = self._entries.popitem(last=False)
                if victim == key:
                    # Never evict the entry just written.
                    self._entries[victim] = (value, size)
                    self._entries.move_to_end(victim, last=False)
                    break
                self._drop_from_group(victim)
                self._bytes -= victim_size
                self._evictions += 1
                evicted += 1
                telemetry.count("serve.hot.evict")
                telemetry.count("serve.hot.resident_entries", -1)
                telemetry.count("serve.hot.resident_bytes", -victim_size)
        return evicted

    @staticmethod
    def _group_of(key: str) -> str:
        return key.split("|", 1)[0]

    def _drop_from_group(self, key: str) -> None:
        group = self._groups.get(self._group_of(key))
        if group is not None:
            group.discard(key)
            if not group:
                del self._groups[self._group_of(key)]

    def remove(self, key: str) -> bool:
        """Drop ``key`` (invalidation, not eviction); ``True`` if held."""
        with self._lock:
            held = self._entries.pop(key, None)
            if held is None:
                return False
            self._drop_from_group(key)
            self._bytes -= held[1]
            self._removals += 1
        telemetry.count("serve.hot.remove")
        telemetry.count("serve.hot.resident_entries", -1)
        telemetry.count("serve.hot.resident_bytes", -held[1])
        return True

    def keys_with_prefix(self, prefix: str) -> list[str]:
        """Snapshot of resident keys starting with ``prefix``.

        A ``tenant|`` prefix (one trailing separator, none inside) is
        answered from the group index in O(that tenant's keys); any
        other shape falls back to a scan of the tier.
        """
        with self._lock:
            head = prefix[:-1]
            if prefix.endswith("|") and "|" not in head:
                return sorted(self._groups.get(head, ()))
            return [key for key in self._entries if key.startswith(prefix)]

    @property
    def stats(self) -> HotTierStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return HotTierStats(
                hits=self._hits,
                misses=self._misses,
                inserts=self._inserts,
                evictions=self._evictions,
                removals=self._removals,
                resident_entries=len(self._entries),
                resident_bytes=self._bytes,
                cap_bytes=self._cap,
            )


# -- warm tier: shard files ---------------------------------------------------


def write_shard(
    path: Path, entries: dict[str, dict[str, np.ndarray]]
) -> None:
    """Atomically write one shard file holding ``entries``.

    Layout: 16-byte header (magic, version, index length), UTF-8 JSON
    index, zero padding to an 8-byte boundary, then each array's raw
    bytes 8-byte aligned.  The index maps ``key -> name -> [offset,
    nbytes, dtype, shape, crc32]`` with offsets *relative to the
    payload start* (the reader derives the base from the header), so a
    reader touches only the pages of the entry it wants.
    """
    index: dict[str, dict[str, list]] = {}
    blobs: list[bytes] = []
    offset = 0  # relative to the 8-aligned payload start
    for key, arrays in entries.items():
        named = {}
        for name, array in arrays.items():
            source = np.asarray(array)
            # ascontiguousarray promotes 0-d to 1-d; keep the true shape.
            data = np.ascontiguousarray(source)
            if data.dtype.hasobject:
                raise ValueError(f"shard entry {key!r}/{name!r} is not plain data")
            blob = data.tobytes()
            pad = (-offset) % 8
            offset += pad
            blobs.append(b"\x00" * pad + blob)
            named[name] = [
                offset,
                len(blob),
                data.dtype.str,
                list(source.shape),
                zlib.crc32(blob),
            ]
            offset += len(blob)
        index[key] = named
    body = json.dumps(
        {"schema": SHARD_SCHEMA_VERSION, "entries": index}, sort_keys=True
    ).encode("utf-8")
    head_pad = (-(_HEADER.size + len(body))) % 8
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, SHARD_SCHEMA_VERSION, len(body)))
        handle.write(body)
        handle.write(b"\x00" * head_pad)
        for blob in blobs:
            handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ShardFile:
    """Read-only mmap view over one shard file.

    Raises:
        OSError, ValueError: on an unreadable or malformed file — the
            caller treats the whole shard as empty.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        with open(self._path, "rb") as handle:
            self._mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        if len(self._mm) < _HEADER.size:
            raise ValueError(f"shard {self._path} is shorter than its header")
        magic, version, index_len = _HEADER.unpack_from(self._mm, 0)
        if magic != _MAGIC or version != SHARD_SCHEMA_VERSION:
            raise ValueError(
                f"shard {self._path} has magic/version {magic!r}/{version}"
            )
        head = _HEADER.size
        raw = bytes(self._mm[head : head + index_len])
        if len(raw) != index_len:
            raise ValueError(f"shard {self._path} index is truncated")
        payload = json.loads(raw.decode("utf-8"))
        if payload.get("schema") != SHARD_SCHEMA_VERSION:
            raise ValueError(f"shard {self._path} index schema mismatch")
        base = head + index_len
        self._payload_base = base + ((-base) % 8)
        self._entries: dict[str, dict[str, list]] = payload["entries"]
        self._verified: set[str] = set()
        self._bad: set[str] = set()
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        """The shard file path."""
        return self._path

    def keys(self) -> list[str]:
        """Every entry key the index declares."""
        return list(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """Zero-copy read-only arrays for ``key``, or ``None``.

        CRC verification runs once per entry; a mismatch marks the
        entry bad (a permanent miss for this mapping) without
        affecting its neighbors.
        """
        named = self._entries.get(key)
        if named is None:
            return None
        with self._lock:
            if key in self._bad:
                return None
            verify = key not in self._verified
        arrays: dict[str, np.ndarray] = {}
        for name, spec in named.items():
            try:
                offset, nbytes, dtype_str, shape, crc = spec
                offset = self._payload_base + int(offset)
                nbytes = int(nbytes)
                if offset < 0 or offset + nbytes > len(self._mm):
                    raise ValueError("slice out of bounds")
                if verify:
                    actual = zlib.crc32(self._mm[offset : offset + nbytes])
                    if actual != int(crc):
                        raise ValueError("crc mismatch")
                dtype = np.dtype(str(dtype_str))
                if dtype.hasobject:
                    raise ValueError("object dtype")
                count = nbytes // dtype.itemsize if dtype.itemsize else 0
                array = np.frombuffer(
                    self._mm, dtype=dtype, count=count, offset=offset
                ).reshape([int(n) for n in shape])
            except Exception:
                with self._lock:
                    self._bad.add(key)
                telemetry.count("serve.shard.corrupt")
                return None
            arrays[name] = array
        with self._lock:
            self._verified.add(key)
        return arrays


# -- the tiered store ---------------------------------------------------------


@dataclass(frozen=True)
class ShardStoreStats:
    """Cross-tier traffic snapshot for ``/stats`` and the benchmarks."""

    hot: HotTierStats
    warm_hits: int = 0
    warm_misses: int = 0
    cold_hits: int = 0
    cold_misses: int = 0
    promotions: int = 0
    compactions: int = 0
    pending_entries: int = 0
    shard_entries: int = 0
    shards: int = 0


class ShardedStore:
    """Hot/warm/cold tiered model store sharded by key hash.

    Keys are opaque strings — the serving layer uses
    ``"<tenant>|<family>|<dw>"`` so one tenant's models share a hash
    bucket prefix-searchably in the hot tier.

    Tier rules (see DESIGN.md S47):

    * ``put`` lands in the owning shard's pending overlay (and,
      with ``cold=True``, in the cold store as well) — the warm tier
      is therefore always current even before compaction.
    * ``get`` consults pending, then the mmap'd shard file, then the
      cold store; a cold hit is *promoted* into pending.
    * ``compact`` folds pending into an atomically rewritten shard
      file and reopens the mapping; it runs automatically every
      ``compact_every`` puts per shard (0 disables auto-compaction).
    * ``invalidate`` tombstones a key across pending and shard file
      (cold is content-keyed by the same name and rewritten on the
      next cold put).

    Args:
        root: directory for shard files; created on first use.
        shards: number of hash buckets (fixed for the store's life —
            changing it reshuffles keys, so pick once per deployment).
        hot_cap_bytes: hot-tier eviction threshold.
        cold: optional cold-tier :class:`ArtifactStore`.
        compact_every: pending puts per shard before auto-compaction.
    """

    def __init__(
        self,
        root: str | Path,
        shards: int = 64,
        hot_cap_bytes: int = 64 * 1024 * 1024,
        cold: ArtifactStore | None = None,
        compact_every: int = 4096,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        self._root = Path(root)
        self._shards = int(shards)
        self._cold = cold
        self._compact_every = int(compact_every)
        self.hot = HotTier(hot_cap_bytes)
        self._locks = [threading.RLock() for _ in range(self._shards)]
        self._pending: list[dict[str, dict[str, np.ndarray]]] = [
            {} for _ in range(self._shards)
        ]
        self._tombstones: list[set[str]] = [set() for _ in range(self._shards)]
        self._files: list[ShardFile | None] = [None] * self._shards
        self._opened = [False] * self._shards
        self._puts_since_compact = [0] * self._shards
        self._stats_lock = threading.Lock()
        self._warm_hits = 0
        self._warm_misses = 0
        self._cold_hits = 0
        self._cold_misses = 0
        self._promotions = 0
        self._compactions = 0

    @property
    def root(self) -> Path:
        """The shard directory."""
        return self._root

    @property
    def shards(self) -> int:
        """Number of hash buckets."""
        return self._shards

    @property
    def cold(self) -> ArtifactStore | None:
        """The cold-tier store, if attached."""
        return self._cold

    def shard_of(self, key: str) -> int:
        """The owning shard: BLAKE2b of the key modulo the bucket count."""
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self._shards

    def shard_path(self, shard: int) -> Path:
        """The shard file for bucket ``shard``."""
        return self._root / f"shard-{shard:04d}.bin"

    def cold_key(self, key: str) -> str:
        """The cold-tier content address for ``key``."""
        recipe = f"repro-shard/{SHARD_SCHEMA_VERSION}\n{key}\n"
        return hashlib.sha256(recipe.encode("utf-8")).hexdigest()

    def _file(self, shard: int) -> ShardFile | None:
        """The shard's mmap, opened lazily; unreadable files read empty."""
        if not self._opened[shard]:
            path = self.shard_path(shard)
            if path.exists():
                try:
                    self._files[shard] = ShardFile(path)
                except (OSError, ValueError):
                    telemetry.count("serve.shard.unreadable")
                    self._files[shard] = None
            self._opened[shard] = True
        return self._files[shard]

    # -- tiered access ----------------------------------------------------

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """Arrays for ``key`` from the warmest tier holding them."""
        shard = self.shard_of(key)
        with self._locks[shard]:
            if key in self._tombstones[shard]:
                return None
            held = self._pending[shard].get(key)
            if held is None:
                mapped = self._file(shard)
                if mapped is not None:
                    held = mapped.get(key)
            if held is not None:
                with self._stats_lock:
                    self._warm_hits += 1
                telemetry.count("serve.shard.hit")
                return held
            with self._stats_lock:
                self._warm_misses += 1
            telemetry.count("serve.shard.miss")
            if self._cold is None:
                return None
            held = self._cold.get(self.cold_key(key), kind="shard")
            if held is None:
                with self._stats_lock:
                    self._cold_misses += 1
                return None
            # Promote: the next compaction folds it into the shard file.
            self._pending[shard][key] = dict(held)
            with self._stats_lock:
                self._cold_hits += 1
                self._promotions += 1
            telemetry.count("serve.shard.promote")
            return held

    def put(
        self,
        key: str,
        arrays: dict[str, np.ndarray],
        cold: bool = False,
    ) -> None:
        """Stage ``arrays`` under ``key`` in the owning shard's overlay.

        Args:
            cold: also write through to the cold store (demotion /
                durability — e.g. at the serving snapshot cadence).
        """
        shard = self.shard_of(key)
        staged = {
            # reshape undoes ascontiguousarray's 0-d -> 1-d promotion
            name: np.ascontiguousarray(np.asarray(value)).reshape(
                np.asarray(value).shape
            )
            for name, value in arrays.items()
        }
        compact_now = False
        with self._locks[shard]:
            self._tombstones[shard].discard(key)
            self._pending[shard][key] = staged
            self._puts_since_compact[shard] += 1
            if (
                self._compact_every
                and self._puts_since_compact[shard] >= self._compact_every
            ):
                compact_now = True
        telemetry.count("serve.shard.put")
        if cold and self._cold is not None:
            self._cold.put(self.cold_key(key), staged)
        if compact_now:
            self.compact(shard)

    def invalidate(self, key: str) -> None:
        """Make ``key`` a miss in the hot and warm tiers (tombstone)."""
        shard = self.shard_of(key)
        with self._locks[shard]:
            self._pending[shard].pop(key, None)
            mapped = self._file(shard)
            if mapped is not None and key in mapped:
                self._tombstones[shard].add(key)
        self.hot.remove(key)
        telemetry.count("serve.shard.invalidate")

    # -- compaction -------------------------------------------------------

    def compact(self, shard: int) -> int:
        """Fold the shard's pending overlay into a rewritten file.

        Atomic: the merged entries are written to a temp file and
        ``os.replace``d over the shard, then the mmap is reopened.
        Readers holding arrays from the old mapping keep it alive via
        their buffer references; a crash leaves either the old or the
        new complete file.

        Returns:
            The number of entries in the rewritten shard.
        """
        with self._locks[shard]:
            pending = self._pending[shard]
            tombstones = self._tombstones[shard]
            mapped = self._file(shard)
            if not pending and not tombstones:
                return len(mapped.keys()) if mapped is not None else 0
            merged: dict[str, dict[str, np.ndarray]] = {}
            if mapped is not None:
                for key in mapped.keys():
                    if key in tombstones or key in pending:
                        continue
                    held = mapped.get(key)
                    if held is not None:
                        merged[key] = held
            merged.update(pending)
            with telemetry.span("store", "shard_compact", shard=shard):
                write_shard(self.shard_path(shard), merged)
                self._files[shard] = ShardFile(self.shard_path(shard))
                self._opened[shard] = True
            self._pending[shard] = {}
            self._tombstones[shard] = set()
            self._puts_since_compact[shard] = 0
            with self._stats_lock:
                self._compactions += 1
            telemetry.count("serve.shard.compact")
            return len(merged)

    def compact_all(self) -> int:
        """Compact every shard; returns total entries across shards."""
        return sum(self.compact(shard) for shard in range(self._shards))

    # -- observability ----------------------------------------------------

    @property
    def stats(self) -> ShardStoreStats:
        """A cross-tier snapshot (hot counters included)."""
        pending = sum(len(overlay) for overlay in self._pending)
        shard_entries = 0
        for shard in range(self._shards):
            with self._locks[shard]:
                mapped = self._file(shard)
            if mapped is not None:
                shard_entries += len(mapped.keys())
        with self._stats_lock:
            return ShardStoreStats(
                hot=self.hot.stats,
                warm_hits=self._warm_hits,
                warm_misses=self._warm_misses,
                cold_hits=self._cold_hits,
                cold_misses=self._cold_misses,
                promotions=self._promotions,
                compactions=self._compactions,
                pending_entries=pending,
                shard_entries=shard_entries,
                shards=self._shards,
            )
